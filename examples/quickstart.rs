//! Quickstart: run one workload under every page-management policy and
//! compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oasis::prelude::*;

fn main() {
    // The paper's 4-GPU baseline platform (Table I).
    let config = SystemConfig::default();

    // Matrix Transpose with its Table II footprint (64 MB, 3 objects).
    let trace = generate(App::Mt, &WorkloadParams::paper(App::Mt, 4));
    println!(
        "MT: {} objects, {:.0} MB, {} memory transactions\n",
        trace.objects.len(),
        trace.footprint_bytes() as f64 / (1024.0 * 1024.0),
        trace.total_accesses()
    );

    let policies = [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
        Policy::oasis_inmem(),
        Policy::grit(),
        Policy::Ideal,
    ];
    let baseline = simulate(&config, Policy::OnTouch, &trace);
    println!(
        "{:<16} {:>10} {:>9} {:>11} {:>11}",
        "policy", "time(ms)", "speedup", "page-faults", "migrations"
    );
    for policy in policies {
        let report = simulate(&config, policy, &trace);
        println!(
            "{:<16} {:>10.2} {:>8.2}x {:>11} {:>11}",
            report.policy,
            report.total_time.as_us() / 1000.0,
            report.speedup_over(&baseline),
            report.uvm.total_faults(),
            report.uvm.migrations + report.uvm.counter_migrations,
        );
    }
}
