//! Building your own workload and platform with the public API.
//!
//! Shows the three extension points a downstream user needs:
//!
//! 1. authoring a trace with [`TraceBuilder`] (a producer/consumer
//!    pipeline with a read-shared lookup table),
//! 2. customizing the platform ([`SystemConfig`]: GPU count, page size,
//!    interconnect, oversubscription),
//! 3. comparing hardware OASIS against OASIS-InMem (the software-only
//!    variant for applications with many objects or reserved pointer
//!    bits).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use oasis::prelude::*;
use oasis::workloads::trace::block;

/// A two-stage pipeline: stage 1 writes per-GPU shards of `frames` while
/// everyone reads a shared `lut`; stage 2 hands each shard to the next GPU
/// (adjacent sharing) for post-processing into `out`.
fn build_pipeline(gpus: usize, mb: u64) -> Trace {
    let mut b = TraceBuilder::new("pipeline", gpus);
    let lut = b.alloc("lut", mb << 20 >> 2);
    let frames = b.alloc("frames", (mb << 20) * 3 / 8);
    let out = b.alloc("out", (mb << 20) * 3 / 8);
    let lut_pages = b.pages_of(lut);
    let frame_pages = b.pages_of(frames);
    let out_pages = b.pages_of(out);

    b.begin_phase("produce");
    for g in 0..gpus {
        b.seq(g, lut, 0..lut_pages, AccessKind::Read, 6);
        b.seq(g, frames, block(frame_pages, gpus, g), AccessKind::Write, 8);
    }
    b.begin_phase("post-process");
    for g in 0..gpus {
        let neighbor = (g + 1) % gpus;
        b.seq(g, lut, 0..lut_pages, AccessKind::Read, 6);
        b.seq(
            g,
            frames,
            block(frame_pages, gpus, neighbor),
            AccessKind::Read,
            4,
        );
        b.seq(
            g,
            out,
            block(out_pages, gpus, neighbor),
            AccessKind::Write,
            8,
        );
    }
    b.finish()
}

fn main() {
    let trace = build_pipeline(4, 64);
    println!(
        "custom pipeline: {} objects, {} MB, {} phases\n",
        trace.objects.len(),
        trace.footprint_bytes() >> 20,
        trace.phases.len()
    );

    // A custom platform: 4 GPUs with a slower interconnect than Table I.
    let mut config = SystemConfig::default();
    config.fabric.nvlink_bytes_per_sec = 100_000_000_000; // 100 GB/s

    let baseline = simulate(&config, Policy::OnTouch, &trace);
    println!("{:<16} {:>10} {:>9}", "policy", "time(ms)", "speedup");
    for policy in [
        Policy::OnTouch,
        Policy::Duplication,
        Policy::oasis(),
        Policy::oasis_inmem(),
    ] {
        let r = simulate(&config, policy, &trace);
        println!(
            "{:<16} {:>10.2} {:>8.2}x",
            r.policy,
            r.total_time.as_us() / 1000.0,
            r.speedup_over(&baseline)
        );
    }

    // The same pipeline under 150% memory oversubscription.
    let oversub = config
        .clone()
        .with_oversubscription(trace.footprint_bytes(), 150);
    let base = simulate(&oversub, Policy::OnTouch, &trace);
    let oasis = simulate(&oversub, Policy::oasis(), &trace);
    println!(
        "\nwith 150% oversubscription: OASIS {:.2}x over on-touch ({} evictions)",
        oasis.speedup_over(&base),
        oasis.uvm.evictions
    );
}
