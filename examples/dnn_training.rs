//! Data-parallel DNN training over UVM: the explicit-phase stress test.
//!
//! LeNet launches 129 kernels (8 batches x 8 layers, forward + backward,
//! plus the weight update); every launch is an explicit phase boundary
//! where OASIS resets its PF counts and relearns per-object policies.
//! Weights are shared-read (duplication), activations private (on-touch),
//! weight gradients shared-write (access-counter) — no uniform policy fits
//! all three.
//!
//! ```sh
//! cargo run --release --example dnn_training
//! ```

use oasis::mgpu::characterize::{profile, Scope};
use oasis::prelude::*;

fn main() {
    let config = SystemConfig::default();
    for app in [App::LeNet, App::Vgg16, App::ResNet18] {
        let trace = generate(app, &WorkloadParams::paper(app, 4));
        println!(
            "=== {} === {} objects, {} kernel launches, {} MB",
            app.abbr(),
            trace.objects.len(),
            trace.phases.len(),
            trace.footprint_bytes() >> 20
        );

        // Characterize the first forward layer's tensors.
        let profiles = profile(&trace, PageSize::Small4K, Scope::Whole);
        for name in ["W0", "A0", "dW0"] {
            if let Some(p) = profiles.iter().find(|p| p.name == name) {
                println!(
                    "  {:<4} {:>6} pages, shared={:?}, rw={:?}",
                    p.name,
                    p.pages,
                    p.share_pattern(),
                    p.rw_pattern()
                );
            }
        }

        let baseline = simulate(&config, Policy::OnTouch, &trace);
        let oasis = simulate(&config, Policy::oasis(), &trace);
        let dup = simulate(&config, Policy::Duplication, &trace);
        let acctr = simulate(&config, Policy::AccessCounter, &trace);
        println!(
            "  on-touch {:.1} ms | duplication {:.2}x | access-counter {:.2}x | OASIS {:.2}x\n",
            baseline.total_time.as_us() / 1000.0,
            dup.speedup_over(&baseline),
            acctr.speedup_over(&baseline),
            oasis.speedup_over(&baseline),
        );
    }
}
