//! Graph analytics on UVM multi-GPU: BFS and PageRank.
//!
//! The random sharing pattern of graph workloads is where static
//! partitioning fails and UVM's dynamic policies matter most. This example
//! contrasts the uniform policies with OASIS on both graph apps and uses
//! the characterization pass to show *why*: the CSR structure is
//! shared-read-only (duplication territory) while the rank/cost arrays are
//! shared-rw-mix (access-counter territory).
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use oasis::mgpu::characterize::{profile, Scope};
use oasis::prelude::*;

fn main() {
    let config = SystemConfig::default();
    for app in [App::Bfs, App::Pr] {
        let trace = generate(app, &WorkloadParams::paper(app, 4));
        println!(
            "=== {} === {} objects, {} MB, {} transactions",
            app.abbr(),
            trace.objects.len(),
            trace.footprint_bytes() >> 20,
            trace.total_accesses()
        );

        // Why no uniform policy fits: per-object patterns.
        let profiles = profile(&trace, PageSize::Small4K, Scope::Whole);
        for p in profiles.iter().filter(|p| p.accesses > 0) {
            println!(
                "  {:<14} {:>6} pages  shared={:<12} rw={:?}",
                p.name,
                p.pages,
                format!("{:?}", p.share_pattern()),
                p.rw_pattern()
            );
        }

        let baseline = simulate(&config, Policy::OnTouch, &trace);
        for policy in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::oasis(),
        ] {
            let r = simulate(&config, policy, &trace);
            println!(
                "  {:<15} {:>8.2} ms  ({:.2}x)  faults={:<7} remote-accesses={}",
                r.policy,
                r.total_time.as_us() / 1000.0,
                r.speedup_over(&baseline),
                r.uvm.total_faults(),
                r.remote_accesses,
            );
        }
        println!();
    }
}
