#!/usr/bin/env bash
# The repository's full offline quality gate. Run from the workspace root:
#
#     ./scripts/ci.sh              # developer mode: missing tools skip
#     CI_STRICT=1 ./scripts/ci.sh  # CI mode: missing tools fail
#
# Everything here works without network access; there are no external
# dependencies to download. Steps mirror what reviewers run by hand:
# formatting, lints (warnings are errors), a release build, the full test
# suite (unit + property-style + integration, including the
# fault-injection campaign and the sim-guard consistency sweeps), the
# bench-smoke throughput gate, three determinism audits (checkpoint
# replay, byte-identical trace files, and byte-identical fuzz reports
# at any --jobs count), a parallel corpus replay with skip-hardening and
# failure-propagation probes, and — in strict mode — the pinned
# golden-digest gate (two fixed-seed scenarios cmp'd against fixtures in
# tests/golden/, catching cross-version semantic drift), the
# graceful-degradation matrix (every core policy must finish a run under
# a fixed hardware-fault plan and report its recovery counters), a
# bounded property-fuzz smoke over the differential policy oracle, the
# crash-durability gate (SIGKILL a journaled fuzz sweep partway, resume
# it, and cmp the report against an uninterrupted run), the sweep
# server smoke (duplicate batches served from the result cache, typed
# overload rejections under a saturated queue, and a SIGKILLed server
# restarted on the same state directory with byte-identical results),
# and the storage chaos matrix (every failpoint site x fault kind, each
# cell holding the no-panic/no-corruption/typed-recovery triad).

set -euo pipefail
cd "$(dirname "$0")/.."

STRICT="${CI_STRICT:-0}"

step() { printf '\n==> %s\n' "$*"; }

missing() {
    if [ "$STRICT" = "1" ]; then
        echo "CI_STRICT=1: $1 is required but not installed" >&2
        exit 1
    fi
    echo "$1 not installed; skipping"
}

step "cargo fmt --check"
if command -v rustfmt >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    missing rustfmt
fi

step "cargo clippy (warnings are errors)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    missing clippy
fi

step "cargo build --release"
cargo build --release --workspace

step "cargo check --examples"
cargo check -q --workspace --examples

step "cargo test"
cargo test -q --workspace

step "bench harness smoke (compile only)"
cargo check -q --workspace --benches --features oasis-bench/bench-harness

step "checkpoint/resume determinism (verify-replay)"
cargo run -q --release -p oasis-cli -- verify-replay --app C2D --footprint-mb 4

step "trace determinism (same seed, byte-identical chrome trace)"
T1="$(mktemp)" T2="$(mktemp)"
trap 'rm -f "$T1" "$T2"' EXIT
./target/release/oasis-sim run --app C2D --policy oasis --footprint-mb 4 \
    --trace-out "$T1" >/dev/null
./target/release/oasis-sim run --app C2D --policy oasis --footprint-mb 4 \
    --trace-out "$T2" >/dev/null
cmp "$T1" "$T2"
echo "traces are byte-identical ($(wc -c <"$T1") bytes)"

step "golden digest trails (pinned cross-version determinism fixtures)"
if [ "$STRICT" = "1" ]; then
    # Two fixed-seed scenarios re-run from scratch; their per-epoch FNV-1a
    # digest trails must cmp byte-identical against fixtures pinned in
    # tests/golden/. Unlike the same-binary determinism audits above, this
    # gate spans versions: any semantic drift in the access pipeline —
    # however subtle — shows up here even when the run still agrees with
    # itself. Refreshing a fixture is a deliberate, reviewed act.
    D1="$(mktemp)" D2="$(mktemp)"
    ./target/release/oasis-sim run --app C2D --policy oasis --footprint-mb 4 \
        --digest-out "$D1" >/dev/null
    cmp "$D1" tests/golden/c2d-oasis.digests
    ./target/release/oasis-sim run --app MM --policy duplication --footprint-mb 4 \
        --digest-out "$D2" >/dev/null
    cmp "$D2" tests/golden/mm-duplication.digests
    rm -f "$D1" "$D2"
    echo "digest trails match the pinned fixtures (C2D/oasis, MM/duplication)"
else
    echo "developer mode (CI_STRICT unset); skipping the golden digest gate"
fi

step "graceful degradation under a fixed fault plan (all four policies)"
if [ "$STRICT" = "1" ]; then
    PLAN="seed:7,down:0-1@2,flaky:2-3@1-6:1/8,ecc:0@3x2"
    for POLICY in on-touch access-counter duplication oasis; do
        OUT="$(./target/release/oasis-sim run --app C2D --footprint-mb 4 \
            --policy "$POLICY" --fault-plan "$PLAN" --json)"
        echo "$OUT" | grep -q '"link_faults": 1' || {
            echo "degradation: $POLICY did not register the link fault" >&2
            exit 1
        }
        echo "$OUT" | grep -q '"reroutes": 0,' && {
            echo "degradation: $POLICY never took the PCIe fallback" >&2
            exit 1
        }
        echo "  $POLICY survived the degraded run (plan: $PLAN)"
    done
else
    echo "developer mode (CI_STRICT unset); skipping the degradation matrix"
fi

step "property fuzz smoke (differential policy oracle, bounded)"
if [ "$STRICT" = "1" ]; then
    # 200 random scenarios through the 8-oracle differential check, hard
    # 60s wall-clock bound, fanned out over the supervised pool. A
    # violation (or a job lost to panic/deadline) exits nonzero and
    # prints the shrunk repro seed plus the corpus file it was saved to.
    FUZZ_CORPUS="$(mktemp -d)"
    ./target/release/oasis-sim fuzz --seed 1 --cases 200 \
        --time-budget-secs 60 --corpus-dir "$FUZZ_CORPUS" --jobs "$(nproc)"
    rm -rf "$FUZZ_CORPUS"
else
    echo "developer mode (CI_STRICT unset); skipping the fuzz smoke"
fi

step "corpus replay via the supervised pool (parallel, skip-hardened)"
# Replays every committed repro through the differential oracle in
# parallel, and proves the corpus loader's skip hardening: a planted
# garbage file must produce a warning, not a failure.
CORPUS_DIR="$(mktemp -d)"
cp tests/corpus/*.json "$CORPUS_DIR/"
echo 'this is not a repro' > "$CORPUS_DIR/garbage.json"
OUT="$(./target/release/oasis-sim fuzz --replay "$CORPUS_DIR" --jobs "$(nproc)")"
echo "$OUT"
echo "$OUT" | grep -q 'warning: skipped .*garbage.json' || {
    echo "corpus replay: planted garbage file did not produce a skip warning" >&2
    exit 1
}

step "sweep determinism (same seed, byte-identical report at any --jobs)"
# The supervised pool adjudicates and reports jobs in submission order,
# so a fuzz report must be byte-identical at any worker count once the
# elapsed-time line is dropped. Mirrors the trace-determinism cmp above.
R1="$(mktemp)" R2="$(mktemp)"
./target/release/oasis-sim fuzz --seed 3 --cases 40 --jobs 1 --json \
    | grep -v '"elapsed_secs"' > "$R1"
./target/release/oasis-sim fuzz --seed 3 --cases 40 --jobs "$(nproc)" --json \
    | grep -v '"elapsed_secs"' > "$R2"
cmp "$R1" "$R2"
echo "fuzz reports are byte-identical at --jobs 1 and --jobs $(nproc)"
rm -f "$R1" "$R2"

step "crash-durable sweeps (SIGKILL mid-sweep, resume, byte-identical)"
if [ "$STRICT" = "1" ]; then
    # A journaled fuzz sweep is SIGKILLed (uncatchable — no drain, the
    # journal tail may even be torn mid-append) partway through, then
    # resumed with --resume-sweep. The resumed report must be
    # byte-identical to an uninterrupted run of the same sweep once the
    # wall-clock line is dropped; journal warnings go to stderr and so
    # never perturb the comparison.
    JNL_DIR="$(mktemp -d)"
    REF="$JNL_DIR/straight.json" RES="$JNL_DIR/resumed.json"
    ./target/release/oasis-sim fuzz --seed 11 --cases 24 --jobs 4 --json \
        --corpus-dir "$JNL_DIR" | grep -v '"elapsed_secs"' > "$REF"
    ./target/release/oasis-sim fuzz --seed 11 --cases 24 --jobs 4 --json \
        --corpus-dir "$JNL_DIR" --journal "$JNL_DIR/sweep.jnl" \
        > "$JNL_DIR/killed.json" 2>/dev/null &
    SWEEP_PID=$!
    sleep 0.7
    kill -9 "$SWEEP_PID" 2>/dev/null || true
    wait "$SWEEP_PID" 2>/dev/null || true
    [ -f "$JNL_DIR/sweep.jnl" ] || {
        echo "kill/resume: the journal file was never created" >&2
        exit 1
    }
    ./target/release/oasis-sim fuzz --seed 11 --cases 24 --jobs 4 --json \
        --corpus-dir "$JNL_DIR" --journal "$JNL_DIR/sweep.jnl" --resume-sweep \
        | grep -v '"elapsed_secs"' > "$RES"
    cmp "$REF" "$RES"
    echo "SIGKILL + --resume-sweep reproduced the straight report byte-for-byte"
    rm -rf "$JNL_DIR"
else
    echo "developer mode (CI_STRICT unset); skipping the kill/resume gate"
fi

step "sweep server smoke (cache, admission control, SIGKILL + restart)"
if [ "$STRICT" = "1" ]; then
    # The crash-durable job server, end to end against the release
    # binary: duplicate submissions are answered from the result cache
    # (byte-identical output, serve.cache_hits > 0), a saturated queue
    # produces typed `overloaded` rejections instead of hanging, and a
    # server SIGKILLed mid-batch resumes from its journal after a
    # restart with results byte-identical to an uninterrupted server's.
    SRV_DIR="$(mktemp -d)"
    start_server() { # args: state-dir [serve flags...]; sets SRV_PID and PORT
        local state="$1"; shift
        ./target/release/oasis-sim serve --port 0 --serve-state "$state" "$@" \
            >"$SRV_DIR/announce.txt" 2>>"$SRV_DIR/server.err" &
        SRV_PID=$!
        PORT=""
        for _ in $(seq 1 100); do
            PORT="$(sed -n 's/^serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
                "$SRV_DIR/announce.txt")"
            [ -n "$PORT" ] && return 0
            sleep 0.1
        done
        echo "serve smoke: server never announced its port" >&2
        exit 1
    }

    # Result cache: the same batch twice; the rerun must cmp equal and
    # come from the cache, not recompute.
    start_server "$SRV_DIR/cache-state" --jobs 2
    ./target/release/oasis-sim submit --port "$PORT" --seed 21 --cases 6 \
        >"$SRV_DIR/ref.txt"
    ./target/release/oasis-sim submit --port "$PORT" --seed 21 --cases 6 \
        --submit-stats >"$SRV_DIR/rerun.txt" 2>"$SRV_DIR/rerun.err"
    cmp "$SRV_DIR/ref.txt" "$SRV_DIR/rerun.txt"
    grep -q 'serve\.cache_hits = [1-9]' "$SRV_DIR/rerun.err" || {
        echo "serve smoke: rerun was not served from the cache" >&2
        exit 1
    }
    kill -9 "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true

    # Admission control: a burst against a one-slot queue must produce
    # typed `overloaded` rejections — and the client must still exit.
    start_server "$SRV_DIR/tiny-state" --jobs 1 --queue-depth 1
    if ./target/release/oasis-sim submit --port "$PORT" --seed 5 --cases 8 \
        >"$SRV_DIR/burst.txt" 2>&1; then
        echo "serve smoke: an overloaded burst should exit nonzero" >&2
        exit 1
    fi
    grep -q 'rejected: overloaded' "$SRV_DIR/burst.txt" || {
        echo "serve smoke: no typed overload rejection in the burst output" >&2
        exit 1
    }
    kill -9 "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true

    # Crash durability: SIGKILL mid-batch, restart on the same state
    # directory, resubmit; the output must cmp equal to the reference
    # from the uninterrupted server above.
    start_server "$SRV_DIR/crash-state" --jobs 2
    ./target/release/oasis-sim submit --port "$PORT" --seed 21 --cases 6 \
        >/dev/null 2>&1 &
    SUBMIT_PID=$!
    sleep 0.7
    kill -9 "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
    wait "$SUBMIT_PID" 2>/dev/null || true
    [ -f "$SRV_DIR/crash-state/serve.jnl" ] || {
        echo "serve smoke: the server journal was never created" >&2
        exit 1
    }
    start_server "$SRV_DIR/crash-state" --jobs 2
    ./target/release/oasis-sim submit --port "$PORT" --seed 21 --cases 6 \
        >"$SRV_DIR/resumed.txt"
    cmp "$SRV_DIR/ref.txt" "$SRV_DIR/resumed.txt"

    # Graceful drain: SIGTERM must exit 75 (EX_TEMPFAIL, resumable).
    kill -TERM "$SRV_PID" 2>/dev/null || true
    RC=0
    wait "$SRV_PID" || RC=$?
    [ "$RC" = "75" ] || {
        echo "serve smoke: drained server exited $RC, want 75" >&2
        exit 1
    }
    echo "serve smoke passed (cache hits, typed overload, SIGKILL + restart cmp, drain rc=75)"
    rm -rf "$SRV_DIR"
else
    echo "developer mode (CI_STRICT unset); skipping the sweep server smoke"
fi

step "storage chaos (failpoint matrix: every site x fault kind)"
if [ "$STRICT" = "1" ]; then
    # The full deterministic fault-injection audit against the release
    # binary: every registered failpoint site crossed with every
    # applicable fault kind (EIO, ENOSPC, short write, fsync failure,
    # rename failure, torn append) across the checkpoint, journal,
    # corpus, and serve surfaces. Each cell must hold the invariant
    # triad — no panic, no corrupt artifact read back as valid, and
    # recovery either byte-identical or a typed error naming the site.
    ./target/release/oasis-sim chaos --jobs "$(nproc)"
else
    echo "developer mode (CI_STRICT unset); skipping the storage chaos matrix"
fi

step "supervised failures exit nonzero (inject/fuzz gate)"
# Failure paths must reach the exit code, even under --json: a direct
# replay of a malformed repro file is a hard error (only directory
# loads skip), and a missing replay path is too. Then prove a healthy
# parallel inject campaign still exits zero.
if ./target/release/oasis-sim fuzz --replay "$CORPUS_DIR/garbage.json" --json \
    >/dev/null 2>&1; then
    echo "fuzz: direct replay of a malformed repro should exit nonzero" >&2
    exit 1
fi
if ./target/release/oasis-sim fuzz --replay "$CORPUS_DIR/no-such-file.json" \
    >/dev/null 2>&1; then
    echo "fuzz: replay of a missing path should exit nonzero" >&2
    exit 1
fi
rm -rf "$CORPUS_DIR"
./target/release/oasis-sim inject --seed 42 --jobs "$(nproc)" >/dev/null
echo "failure propagation verified (bad replays nonzero, inject campaign clean)"

step "bench-smoke throughput gate (quick matrix; the CI bench job runs full)"
# The quick spot-check gates against the committed full-matrix result
# without overwriting it (the result goes to a scratch file); the
# dedicated CI bench job is what refreshes and uploads BENCH_pr8.json.
BENCH_SCRATCH="$(mktemp)"
BENCH_MATRIX="${BENCH_MATRIX:-quick}" BENCH_OUT="$BENCH_SCRATCH" \
    BENCH_BASELINE="${BENCH_BASELINE:-BENCH_pr8.json}" ./scripts/bench_smoke.sh
rm -f "$BENCH_SCRATCH"

printf '\nCI: all gates passed.\n'
