#!/usr/bin/env bash
# The repository's full offline quality gate. Run from the workspace root:
#
#     ./scripts/ci.sh
#
# Everything here works without network access; there are no external
# dependencies to download. Steps mirror what reviewers run by hand:
# formatting, lints (warnings are errors), a release build, and the full
# test suite (unit + property-style + integration, including the
# fault-injection campaign and the sim-guard consistency sweeps).

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
if command -v rustfmt >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "rustfmt not installed; skipping"
fi

step "cargo clippy (warnings are errors)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test -q --workspace

step "bench harness smoke (compile only)"
cargo check -q --workspace --benches --features oasis-bench/bench-harness

step "checkpoint/resume determinism (verify-replay)"
cargo run -q --release -p oasis-cli -- verify-replay --app C2D --footprint-mb 4

printf '\nCI: all gates passed.\n'
