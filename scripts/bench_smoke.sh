#!/usr/bin/env bash
# Throughput smoke gate. Runs the fixed benchmark matrix (C2D and MM under
# on-touch and oasis, 4 MB footprints) best-of-N, writes BENCH_pr4.json at
# the repo root, and fails if any cell's retired-steps/sec regressed more
# than the tolerance against the previous committed result (or an explicit
# --baseline). Fully offline.
#
#     ./scripts/bench_smoke.sh                  # defaults: 3 runs, 25%
#     ./scripts/bench_smoke.sh --runs 5 --tolerance 10
#     BENCH_RUNS=1 ./scripts/bench_smoke.sh     # quick local check

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p oasis-cli
exec ./target/release/oasis-sim bench-smoke --runs "${BENCH_RUNS:-3}" "$@"
