#!/usr/bin/env bash
# Throughput smoke gate. Runs the benchmark matrix best-of-N, writes the
# result JSON at the repo root, and fails if any cell's retired-steps/sec
# regressed more than the tolerance against the previous committed result
# (or an explicit baseline). Fully offline.
#
# Every knob is an environment variable, so CI jobs and local runs tune
# the sweep without editing this file; explicit flags still win because
# they are appended last.
#
#     BENCH_RUNS=<N>        runs per cell, best kept          [default: 3]
#     BENCH_MATRIX=<NAME>   full | quick                      [default: full]
#     BENCH_OUT=<FILE>      result file            [default: BENCH_pr8.json]
#     BENCH_BASELINE=<FILE> baseline to gate against
#                           [default: the previous BENCH_OUT file]
#     BENCH_TOLERANCE=<PCT> allowed steps/sec regression      [default: 25]
#
#     ./scripts/bench_smoke.sh                   # full matrix, 3 runs, 25%
#     BENCH_RUNS=1 BENCH_MATRIX=quick ./scripts/bench_smoke.sh  # fast check
#     ./scripts/bench_smoke.sh --runs 5 --tolerance 10          # flags win

set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=(
    --runs "${BENCH_RUNS:-3}"
    --matrix "${BENCH_MATRIX:-full}"
    --bench-out "${BENCH_OUT:-BENCH_pr8.json}"
    --tolerance "${BENCH_TOLERANCE:-25}"
)
if [ -n "${BENCH_BASELINE:-}" ]; then
    ARGS+=(--baseline "$BENCH_BASELINE")
fi

cargo build -q --release -p oasis-cli
exec ./target/release/oasis-sim bench-smoke "${ARGS[@]}" "$@"
