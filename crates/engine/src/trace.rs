//! Typed event tracing with simulated timestamps.
//!
//! The simulator emits [`TraceEvent`]s at significant points (fault
//! serviced, page migrated, TLB shot down, link transfer scheduled, walk
//! finished). A [`Tracer`] decides what to keep: [`NullTracer`] keeps
//! nothing and compiles down to a dead branch, [`RingTracer`] keeps the
//! most recent N events in a bounded ring.
//!
//! Two invariants matter here:
//!
//! 1. **Determinism** — events carry only simulated time ([`Time`]) and a
//!    monotonically increasing sequence number assigned at record time.
//!    No wall-clock, no pointers, no iteration over unordered maps. Two
//!    runs with the same seed and config produce byte-identical exports.
//! 2. **Non-interference** — tracer state lives outside every `Snapshot`
//!    impl and state digest. Turning tracing on or off cannot change a
//!    single simulated outcome, which `verify-replay` checks end to end.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::{Duration, Time};

/// One side of a data movement: the host or a GPU by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Host (CPU) memory.
    Host,
    /// GPU with the given device index.
    Gpu(u8),
}

impl Endpoint {
    /// Short stable label used in exports (`host`, `gpu0`, ...).
    pub fn label(&self) -> String {
        match self {
            Endpoint::Host => "host".to_string(),
            Endpoint::Gpu(g) => format!("gpu{g}"),
        }
    }
}

/// A typed simulation event. Fields are primitives so events are `Copy`
/// and recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A far-fault (or protection fault) finished servicing on `gpu`.
    /// `queue` is time spent waiting for the serialized fault pipeline,
    /// `service` the total latency charged to the access.
    FarFault {
        /// Faulting GPU index.
        gpu: u8,
        /// Faulting virtual page number.
        vpn: u64,
        /// Whether the access was a write.
        write: bool,
        /// Time spent queued behind earlier faults.
        queue: Duration,
        /// Total service latency for this fault.
        service: Duration,
    },
    /// A page moved from `from` to `to`.
    Migration {
        /// Migrated virtual page number.
        vpn: u64,
        /// Source of the page data.
        from: Endpoint,
        /// New owner of the page.
        to: Endpoint,
    },
    /// A read-only replica of `vpn` was created on GPU `to`.
    Duplication {
        /// Duplicated virtual page number.
        vpn: u64,
        /// Source of the page data.
        from: Endpoint,
        /// GPU receiving the replica.
        to: u8,
    },
    /// A TLB shootdown invalidated `vpn` on `gpu`.
    Shootdown {
        /// GPU whose TLBs were invalidated.
        gpu: u8,
        /// Invalidated virtual page number.
        vpn: u64,
    },
    /// A resident page was evicted from `gpu` to make room.
    Eviction {
        /// GPU that lost the page.
        gpu: u8,
        /// Evicted virtual page number.
        vpn: u64,
    },
    /// The per-page policy bits changed (O-Table relearn / reset).
    PolicySwitch {
        /// Affected virtual page number.
        vpn: u64,
        /// Previous policy bits.
        from: u8,
        /// New policy bits.
        to: u8,
    },
    /// Bytes were scheduled across a fabric link.
    LinkTransfer {
        /// Transfer source.
        from: Endpoint,
        /// Transfer destination.
        to: Endpoint,
        /// Payload size in bytes.
        bytes: u64,
        /// Serialization + queueing time the transfer occupied the link.
        busy: Duration,
    },
    /// A page-table walk completed after an L2 TLB miss on `gpu`.
    WalkComplete {
        /// Walking GPU index.
        gpu: u8,
        /// Translated virtual page number.
        vpn: u64,
        /// Walk latency.
        latency: Duration,
    },
    /// A fabric link between two GPUs changed health (permanent link-down).
    LinkFault {
        /// One endpoint of the failed NVLink pair.
        a: u8,
        /// The other endpoint.
        b: u8,
    },
    /// A physical frame on `gpu` was poisoned by ECC and quarantined.
    FrameQuarantine {
        /// GPU whose frame was quarantined.
        gpu: u8,
        /// The virtual page that was resident in the poisoned frame.
        vpn: u64,
    },
    /// The UVM driver re-serviced (or retried re-servicing) a fault for a
    /// page lost to hardware degradation.
    FaultRetry {
        /// GPU whose page is being re-serviced.
        gpu: u8,
        /// The page being re-serviced.
        vpn: u64,
        /// Zero-based attempt number within the retry budget.
        attempt: u32,
    },
}

impl TraceEvent {
    /// Short stable name for exports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::FarFault { .. } => "far_fault",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::Duplication { .. } => "duplication",
            TraceEvent::Shootdown { .. } => "shootdown",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::PolicySwitch { .. } => "policy_switch",
            TraceEvent::LinkTransfer { .. } => "link_transfer",
            TraceEvent::WalkComplete { .. } => "walk_complete",
            TraceEvent::LinkFault { .. } => "link_fault",
            TraceEvent::FrameQuarantine { .. } => "frame_quarantine",
            TraceEvent::FaultRetry { .. } => "fault_retry",
        }
    }
}

/// An event stamped with its simulated time and record order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulated time the event was recorded at.
    pub at: Time,
    /// Monotonic sequence number (record order, ties broken stably).
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// Sink for simulation events.
///
/// `enabled` lets call sites skip event construction entirely; callers
/// should check it (or cache it) before building a [`TraceEvent`].
pub trait Tracer {
    /// Whether this tracer keeps events at all.
    fn enabled(&self) -> bool;

    /// Records `event` at simulated time `at`.
    fn record(&mut self, at: Time, event: TraceEvent);

    /// All retained events in record order.
    fn events(&self) -> Vec<TimedEvent> {
        Vec::new()
    }

    /// Number of events dropped because the buffer was full.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A tracer that discards everything. `enabled()` is `false`, so
/// instrumented call sites never even construct the event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: Time, _event: TraceEvent) {}
}

/// A bounded tracer keeping the most recent `capacity` events.
///
/// When full, the oldest event is dropped and counted in [`Tracer::dropped`].
/// Everything about it is deterministic: same event stream in, same ring
/// contents out.
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    ring: VecDeque<TimedEvent>,
    dropped: u64,
    seq: u64,
}

impl RingTracer {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingTracer {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            seq: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: Time, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TimedEvent {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    fn events(&self) -> Vec<TimedEvent> {
        self.ring.iter().copied().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Microseconds with fixed 3-decimal formatting (`ts` fields in the
/// Chrome trace format are µs; our base unit is ps).
fn ps_as_us_fixed(ps: u64) -> String {
    let us = ps / 1_000_000;
    let frac_ns = (ps % 1_000_000) / 1_000;
    format!("{us}.{frac_ns:03}")
}

fn push_common(out: &mut String, name: &str, phase: &str, ts_ps: u64, tid: u64) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"{phase}\",\"ts\":{},\"pid\":0,\"tid\":{tid}",
        ps_as_us_fixed(ts_ps)
    );
}

/// Renders events as a Chrome `trace_event` JSON array, loadable in
/// `chrome://tracing` or Perfetto.
///
/// Durationful events (`far_fault`, `link_transfer`, `walk_complete`)
/// become complete (`"X"`) slices; the rest are instants (`"i"`). The
/// `tid` lane is the GPU index where one applies (host = lane 255).
/// Output is a pure function of the event list: same events, same bytes.
pub fn chrome_trace_json(events: &[TimedEvent]) -> String {
    fn lane(e: &Endpoint) -> u64 {
        match e {
            Endpoint::Host => 255,
            Endpoint::Gpu(g) => u64::from(*g),
        }
    }

    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, te) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let ts = te.at.as_ps();
        match &te.event {
            TraceEvent::FarFault {
                gpu,
                vpn,
                write,
                queue,
                service,
            } => {
                push_common(&mut out, "far_fault", "X", ts, u64::from(*gpu));
                let _ = write!(
                    out,
                    ",\"dur\":{},\"args\":{{\"vpn\":{vpn},\"write\":{write},\"queue_ns\":{}}}}}",
                    ps_as_us_fixed(service.as_ps()),
                    queue.as_ps() / 1000,
                );
            }
            TraceEvent::Migration { vpn, from, to } => {
                push_common(&mut out, "migration", "i", ts, lane(to));
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn},\"from\":\"{}\",\"to\":\"{}\"}}}}",
                    from.label(),
                    to.label(),
                );
            }
            TraceEvent::Duplication { vpn, from, to } => {
                push_common(&mut out, "duplication", "i", ts, u64::from(*to));
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn},\"from\":\"{}\",\"to\":\"gpu{to}\"}}}}",
                    from.label(),
                );
            }
            TraceEvent::Shootdown { gpu, vpn } => {
                push_common(&mut out, "shootdown", "i", ts, u64::from(*gpu));
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn}}}}}");
            }
            TraceEvent::Eviction { gpu, vpn } => {
                push_common(&mut out, "eviction", "i", ts, u64::from(*gpu));
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn}}}}}");
            }
            TraceEvent::PolicySwitch { vpn, from, to } => {
                push_common(&mut out, "policy_switch", "i", ts, 0);
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn},\"from\":{from},\"to\":{to}}}}}"
                );
            }
            TraceEvent::LinkTransfer {
                from,
                to,
                bytes,
                busy,
            } => {
                push_common(&mut out, "link_transfer", "X", ts, lane(from));
                let _ = write!(
                    out,
                    ",\"dur\":{},\"args\":{{\"from\":\"{}\",\"to\":\"{}\",\"bytes\":{bytes}}}}}",
                    ps_as_us_fixed(busy.as_ps()),
                    from.label(),
                    to.label(),
                );
            }
            TraceEvent::WalkComplete { gpu, vpn, latency } => {
                push_common(&mut out, "walk_complete", "X", ts, u64::from(*gpu));
                let _ = write!(
                    out,
                    ",\"dur\":{},\"args\":{{\"vpn\":{vpn}}}}}",
                    ps_as_us_fixed(latency.as_ps()),
                );
            }
            TraceEvent::LinkFault { a, b } => {
                push_common(&mut out, "link_fault", "i", ts, u64::from(*a));
                let _ = write!(out, ",\"s\":\"g\",\"args\":{{\"a\":{a},\"b\":{b}}}}}");
            }
            TraceEvent::FrameQuarantine { gpu, vpn } => {
                push_common(&mut out, "frame_quarantine", "i", ts, u64::from(*gpu));
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn}}}}}");
            }
            TraceEvent::FaultRetry { gpu, vpn, attempt } => {
                push_common(&mut out, "fault_retry", "i", ts, u64::from(*gpu));
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"vpn\":{vpn},\"attempt\":{attempt}}}}}"
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vpn: u64) -> TraceEvent {
        TraceEvent::Shootdown { gpu: 1, vpn }
    }

    #[test]
    fn null_tracer_is_disabled_and_keeps_nothing() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(Time::from_ps(10), ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_tracer_is_bounded_and_drops_oldest() {
        let mut t = RingTracer::new(3);
        for i in 0..5 {
            t.record(Time::from_ps(i * 100), ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t
            .events()
            .iter()
            .map(|te| match te.event {
                TraceEvent::Shootdown { vpn, .. } => vpn,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, [2, 3, 4]);
        // Sequence numbers keep counting across drops.
        assert_eq!(t.events()[0].seq, 2);
        assert_eq!(t.events()[2].seq, 4);
    }

    #[test]
    fn identical_event_streams_export_identical_bytes() {
        let mut a = RingTracer::new(16);
        let mut b = RingTracer::new(16);
        for t in [&mut a, &mut b] {
            t.record(
                Time::from_ps(1_500_000),
                TraceEvent::FarFault {
                    gpu: 0,
                    vpn: 42,
                    write: true,
                    queue: Duration::from_ns(3),
                    service: Duration::from_us(2),
                },
            );
            t.record(
                Time::from_ps(2_000_000),
                TraceEvent::LinkTransfer {
                    from: Endpoint::Gpu(0),
                    to: Endpoint::Gpu(1),
                    bytes: 4096,
                    busy: Duration::from_ns(500),
                },
            );
            t.record(
                Time::from_ps(2_000_000),
                TraceEvent::Migration {
                    vpn: 42,
                    from: Endpoint::Host,
                    to: Endpoint::Gpu(1),
                },
            );
        }
        let ja = chrome_trace_json(&a.events());
        let jb = chrome_trace_json(&b.events());
        assert_eq!(ja, jb);
        assert!(ja.starts_with('['));
        assert!(ja.trim_end().ends_with(']'));
        assert!(ja.contains("\"ph\":\"X\""));
        assert!(ja.contains("\"ph\":\"i\""));
        assert!(ja.contains("\"ts\":1.500"));
        assert!(ja.contains("\"from\":\"host\""));
        // One object per event: balanced outer braces per line.
        assert_eq!(ja.lines().count(), 3 + 2); // "[", 3 events, "]"
    }

    #[test]
    fn timestamps_format_ps_to_us_with_fixed_decimals() {
        assert_eq!(ps_as_us_fixed(0), "0.000");
        assert_eq!(ps_as_us_fixed(1_000), "0.001"); // 1 ns
        assert_eq!(ps_as_us_fixed(999_999), "0.999"); // sub-ns truncates
        assert_eq!(ps_as_us_fixed(1_000_000), "1.000");
        assert_eq!(ps_as_us_fixed(1_234_567), "1.234");
    }

    #[test]
    fn empty_event_list_is_a_valid_empty_array() {
        assert_eq!(chrome_trace_json(&[]), "[\n]\n");
    }

    #[test]
    fn hardware_fault_events_export_as_instants() {
        let mut t = RingTracer::new(8);
        t.record(Time::from_ps(100), TraceEvent::LinkFault { a: 0, b: 2 });
        t.record(
            Time::from_ps(200),
            TraceEvent::FrameQuarantine { gpu: 1, vpn: 9 },
        );
        t.record(
            Time::from_ps(300),
            TraceEvent::FaultRetry {
                gpu: 1,
                vpn: 9,
                attempt: 2,
            },
        );
        assert_eq!(t.events()[0].event.name(), "link_fault");
        assert_eq!(t.events()[1].event.name(), "frame_quarantine");
        assert_eq!(t.events()[2].event.name(), "fault_retry");
        let j = chrome_trace_json(&t.events());
        assert!(j.contains("\"link_fault\""), "{j}");
        assert!(j.contains("\"frame_quarantine\""), "{j}");
        assert!(j.contains("\"fault_retry\""), "{j}");
        assert!(j.contains("\"attempt\":2"), "{j}");
        assert_eq!(j.lines().count(), 3 + 2);
    }
}
