//! Simulated time in picosecond resolution.
//!
//! All latencies and bandwidth computations in the simulator bottom out in
//! these two newtypes. Picoseconds give enough headroom to express both a
//! single 1 GHz cycle (1000 ps) and multi-second simulations (`u64` holds
//! ~213 days of picoseconds) without floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, measured in picoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The beginning of the simulation.
    pub const ZERO: Time = Time(0);

    /// Constructs a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds (lossy).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds (lossy).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Constructs a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000_000)
    }

    /// Constructs a duration from a cycle count at the given clock frequency
    /// in gigahertz. One cycle at 1 GHz is exactly 1 ns.
    pub fn from_cycles(cycles: u64, ghz: f64) -> Self {
        debug_assert!(ghz > 0.0, "clock frequency must be positive");
        Duration(((cycles as f64) * 1e3 / ghz).round() as u64)
    }

    /// The time it takes to move `bytes` over a link sustaining
    /// `bytes_per_sec` of bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // ps = bytes / (bytes/s) * 1e12, computed in u128 to avoid overflow.
        let ps = (bytes as u128 * 1_000_000_000_000u128) / bytes_per_sec as u128;
        Duration(ps as u64)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds (lossy).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Duration::from_ns(1).as_ps(), 1_000);
        assert_eq!(Duration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Duration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_ps(42).as_ps(), 42);
    }

    #[test]
    fn cycles_at_one_ghz_are_nanoseconds() {
        assert_eq!(Duration::from_cycles(10, 1.0), Duration::from_ns(10));
        assert_eq!(Duration::from_cycles(4, 2.0), Duration::from_ns(2));
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 300 GB/s moving 4 KiB: 4096 / 300e9 s = 13.653 ns.
        let d = Duration::for_transfer(4096, 300_000_000_000);
        assert!((d.as_ns() - 13.653).abs() < 0.01, "{}", d.as_ns());
    }

    #[test]
    fn transfer_time_zero_bytes_is_zero() {
        assert_eq!(Duration::for_transfer(0, 1_000_000), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_time_zero_bandwidth_panics() {
        let _ = Duration::for_transfer(1, 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Duration::from_ns(5);
        let u = t + Duration::from_ns(3);
        assert_eq!(u - t, Duration::from_ns(3));
        assert_eq!(t.max(u), u);
        assert_eq!(t.min(u), t);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_ns(10);
        let b = Duration::from_ns(4);
        assert_eq!(a + b, Duration::from_ns(14));
        assert_eq!(a - b, Duration::from_ns(6));
        assert_eq!(a * 3, Duration::from_ns(30));
        assert_eq!(a / 2, Duration::from_ns(5));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        let total: Duration = [a, b, b].into_iter().sum();
        assert_eq!(total, Duration::from_ns(18));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", Time::ZERO).is_empty());
        assert!(!format!("{}", Duration::from_us(3)).is_empty());
    }
}
