//! Deterministic storage-fault injection: named failpoint sites with a
//! seed-driven [`FailPlan`].
//!
//! PRs 7 and 9 made sweeps and the serve daemon crash-durable, but every
//! recovery guarantee was only exercised against process kills — the
//! filesystem itself was assumed perfect. Real services die to ENOSPC,
//! EIO, and failing fsyncs far more often than to SIGKILL. This module
//! lets tests and the `chaos` CLI subcommand inject exactly those faults
//! at named sites threaded through the persistence surface
//! ([`atomic_write`](crate::fsio::atomic_write) legs, journal appends and
//! `Begin` publication, checkpoint emission, the serve result cache,
//! corpus/trace/bench artifact writes), deterministically and replayably.
//!
//! # Design
//!
//! - **Sites** are static string names (the [`SITES`] registry). A site
//!   calls [`on_io`] (immediate-failure legs: create, fsync, rename) or
//!   [`on_write`] (payload legs, where a short write or torn append needs
//!   a byte count) and otherwise behaves normally.
//! - **Zero cost when disabled**: every check opens with one relaxed
//!   atomic load of a scope counter; with no plan armed anywhere in the
//!   process that load is the entire cost, so production and bench runs
//!   are unaffected.
//! - **Thread-scoped activation** ([`arm_thread`]) arms a plan for the
//!   calling thread only — parallel pool workers inject independently and
//!   concurrent tests never see each other's faults. **Process-scoped
//!   activation** ([`arm_process`]) arms every thread, which is what the
//!   `chaos` serve cells need (journal and cache writes happen on the
//!   server's scheduler and connection threads); process scopes are
//!   serialized against each other so two cannot interleave.
//! - **Deterministic and replayable**: the plan is pure configuration
//!   (spec grammar below); every firing is recorded with its site, kind,
//!   hit index, and cut, and the seed drives all derived choices through
//!   [`SimRng`], so a failure reproduces from its rendered plan alone.
//!
//! # Spec grammar
//!
//! Mirrors the PR 4 `FaultPlan` clause grammar: comma-separated
//! `key:value` clauses.
//!
//! ```text
//! seed:<n>,site:<name>,kind:<fault>[,after:<k>][,count:<n>|*][,cut:<bytes>][,path:<substr>]
//! ```
//!
//! - `site:` — a registered site name, or a `prefix.*` wildcard.
//! - `kind:` — `eio` | `enospc` | `short-write` | `fsync` | `rename` |
//!   `torn-append`.
//! - `after:` — matching hits to let through before firing (default:
//!   derived from the seed, so a bare seeded plan varies its strike
//!   point deterministically).
//! - `count:` — firings before the plan disarms (default 1; `*` = every
//!   matching hit).
//! - `cut:` — for `short-write`/`torn-append`: bytes actually persisted
//!   before the failure (default: seed-derived per firing).
//! - `path:` — only fire when the artifact path contains this substring
//!   (lets a process-scoped plan target one server's state directory).

use std::cell::RefCell;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::rng::SimRng;

/// Every failpoint site threaded through the workspace. The `chaos`
/// subcommand enumerates this registry; checks `debug_assert` membership
/// so a typo'd site name fails tests instead of silently never firing.
pub const SITES: &[&str] = &[
    "fsio.create",
    "fsio.write",
    "fsio.fsync",
    "fsio.rename",
    "journal.begin",
    "journal.append.write",
    "journal.append.fsync",
    "codec.checkpoint",
    "serve.cache.read",
    "serve.cache.write",
    "corpus.write",
];

/// True when `site` is in the [`SITES`] registry.
pub fn site_registered(site: &str) -> bool {
    SITES.contains(&site)
}

/// The storage-fault flavors a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (`EIO`): the operation fails, nothing persists.
    Eio,
    /// Device full (`ENOSPC`).
    Enospc,
    /// The write persists only a prefix of the payload, then errors.
    ShortWrite,
    /// `fsync`/`sync_data` reports failure (the lying-fsync case).
    FsyncFail,
    /// The rename leg of an atomic publish fails.
    RenameFail,
    /// A journal append persists a prefix of the record — a torn tail the
    /// recovery scan must drop — then errors.
    TornAppend,
}

impl FaultKind {
    /// All kinds, for matrix enumeration.
    pub const ALL: &'static [FaultKind] = &[
        FaultKind::Eio,
        FaultKind::Enospc,
        FaultKind::ShortWrite,
        FaultKind::FsyncFail,
        FaultKind::RenameFail,
        FaultKind::TornAppend,
    ];

    /// The spec-grammar token for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short-write",
            FaultKind::FsyncFail => "fsync",
            FaultKind::RenameFail => "rename",
            FaultKind::TornAppend => "torn-append",
        }
    }

    fn parse(token: &str) -> Option<FaultKind> {
        Some(match token {
            "eio" => FaultKind::Eio,
            "enospc" => FaultKind::Enospc,
            "short-write" => FaultKind::ShortWrite,
            "fsync" => FaultKind::FsyncFail,
            "rename" => FaultKind::RenameFail,
            "torn-append" => FaultKind::TornAppend,
            _ => return None,
        })
    }

    /// Whether this kind truncates the payload (vs failing outright).
    pub fn is_truncating(self) -> bool {
        matches!(self, FaultKind::ShortWrite | FaultKind::TornAppend)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed failplan spec failure, naming the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailSpecError {
    /// A clause is missing its `key:value` separator.
    MissingSeparator {
        /// The clause as written.
        clause: String,
    },
    /// A numeric token failed to parse.
    BadNumber {
        /// The clause as written.
        clause: String,
        /// The offending token.
        token: String,
    },
    /// The clause key is not part of the grammar.
    UnknownKey {
        /// The clause as written.
        clause: String,
        /// The unrecognized key.
        key: String,
    },
    /// `kind:` names no known fault kind.
    UnknownKind {
        /// The unrecognized kind token.
        kind: String,
    },
    /// The plan never named a site.
    MissingSite,
    /// The plan never named a kind.
    MissingKind,
}

impl fmt::Display for FailSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailSpecError::MissingSeparator { clause } => {
                write!(f, "clause '{clause}' needs 'key:value'")
            }
            FailSpecError::BadNumber { clause, token } => {
                write!(f, "bad number '{token}' in clause '{clause}'")
            }
            FailSpecError::UnknownKey { clause, key } => {
                write!(f, "unknown failplan key '{key}' in clause '{clause}'")
            }
            FailSpecError::UnknownKind { kind } => write!(
                f,
                "unknown fault kind '{kind}' (expected eio, enospc, short-write, \
                 fsync, rename, or torn-append)"
            ),
            FailSpecError::MissingSite => write!(f, "failplan needs a 'site:' clause"),
            FailSpecError::MissingKind => write!(f, "failplan needs a 'kind:' clause"),
        }
    }
}

impl std::error::Error for FailSpecError {}

/// A declarative injection plan: which site, which fault, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPlan {
    /// Seed for every derived draw (`after` when unset, `cut` per firing).
    pub seed: u64,
    /// Target site name, or a `prefix.*` wildcard.
    pub site: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Matching hits to let through before the first firing; `None`
    /// derives a small strike point from the seed.
    pub after: Option<u64>,
    /// Firings before the plan disarms (`u64::MAX` = unbounded).
    pub count: u64,
    /// Persisted-prefix length for truncating kinds; `None` derives it
    /// from the seed per firing.
    pub cut: Option<usize>,
    /// Only fire when the artifact path contains this substring.
    pub path: Option<String>,
}

impl FailPlan {
    /// A single-shot plan: fire `kind` at `site` on the first hit.
    pub fn once(site: &str, kind: FaultKind) -> FailPlan {
        FailPlan {
            seed: 0,
            site: site.to_string(),
            kind,
            after: Some(0),
            count: 1,
            cut: None,
            path: None,
        }
    }

    /// Parses the spec grammar (see module docs).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FailSpecError`] naming the offending clause.
    pub fn parse(spec: &str) -> Result<FailPlan, FailSpecError> {
        let mut seed = 0u64;
        let mut site: Option<String> = None;
        let mut kind: Option<FaultKind> = None;
        let mut after: Option<u64> = None;
        let mut count = 1u64;
        let mut cut: Option<usize> = None;
        let mut path: Option<String> = None;
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (key, body) =
                clause
                    .split_once(':')
                    .ok_or_else(|| FailSpecError::MissingSeparator {
                        clause: clause.to_string(),
                    })?;
            let num = |token: &str| -> Result<u64, FailSpecError> {
                token.parse().map_err(|_| FailSpecError::BadNumber {
                    clause: clause.to_string(),
                    token: token.to_string(),
                })
            };
            match key {
                "seed" => seed = num(body)?,
                "site" => site = Some(body.to_string()),
                "kind" => {
                    kind =
                        Some(
                            FaultKind::parse(body).ok_or_else(|| FailSpecError::UnknownKind {
                                kind: body.to_string(),
                            })?,
                        )
                }
                "after" => after = Some(num(body)?),
                "count" => count = if body == "*" { u64::MAX } else { num(body)? },
                "cut" => cut = Some(num(body)? as usize),
                "path" => path = Some(body.to_string()),
                other => {
                    return Err(FailSpecError::UnknownKey {
                        clause: clause.to_string(),
                        key: other.to_string(),
                    })
                }
            }
        }
        Ok(FailPlan {
            seed,
            site: site.ok_or(FailSpecError::MissingSite)?,
            kind: kind.ok_or(FailSpecError::MissingKind)?,
            after,
            count,
            cut,
            path,
        })
    }

    /// Re-renders the plan in spec grammar — paste this back into
    /// `FailPlan::parse` (or a future CLI flag) to replay a firing.
    pub fn render(&self) -> String {
        let mut out = format!("seed:{},site:{},kind:{}", self.seed, self.site, self.kind);
        if let Some(after) = self.after {
            out.push_str(&format!(",after:{after}"));
        }
        if self.count == u64::MAX {
            out.push_str(",count:*");
        } else if self.count != 1 {
            out.push_str(&format!(",count:{}", self.count));
        }
        if let Some(cut) = self.cut {
            out.push_str(&format!(",cut:{cut}"));
        }
        if let Some(path) = &self.path {
            out.push_str(&format!(",path:{path}"));
        }
        out
    }

    fn matches(&self, site: &str, path: &Path) -> bool {
        let site_ok = match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        };
        site_ok
            && self
                .path
                .as_ref()
                .is_none_or(|filter| path.to_string_lossy().contains(filter.as_str()))
    }
}

/// One recorded firing: everything needed to explain (and replay) why an
/// operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The site that fired.
    pub site: String,
    /// The fault injected.
    pub kind: FaultKind,
    /// The matching-hit index (0-based) the plan struck at.
    pub hit: u64,
    /// Bytes actually persisted, for truncating kinds.
    pub cut: Option<usize>,
}

struct ActiveState {
    plan: FailPlan,
    rng: SimRng,
    effective_after: u64,
    hits: u64,
    fired: u64,
    firings: Vec<Firing>,
}

impl ActiveState {
    fn new(plan: FailPlan) -> ActiveState {
        let mut rng = SimRng::seed_from_u64(plan.seed);
        // A bare seeded plan strikes at a seed-derived hit in [0, 8) —
        // deterministic variety for seed-sweep chaos campaigns.
        let effective_after = plan.after.unwrap_or_else(|| rng.next_u64() % 8);
        ActiveState {
            plan,
            rng,
            effective_after,
            hits: 0,
            fired: 0,
            firings: Vec::new(),
        }
    }

    /// Advances the hit counter for a matching site and decides whether
    /// this hit fires. Returns the fault and cut when it does.
    fn strike(&mut self, site: &str, len: Option<usize>) -> Option<(FaultKind, Option<usize>)> {
        if self.fired >= self.plan.count {
            return None;
        }
        let hit = self.hits;
        self.hits += 1;
        if hit < self.effective_after {
            return None;
        }
        self.fired += 1;
        let cut = if self.plan.kind.is_truncating() {
            let len = len.unwrap_or(0);
            Some(match self.plan.cut {
                Some(c) => c.min(len),
                // Derived cut: strictly short of the payload so the
                // truncation is real whenever there is anything to cut.
                None => (self.rng.next_u64() as usize) % len.max(1),
            })
        } else {
            None
        };
        self.firings.push(Firing {
            site: site.to_string(),
            kind: self.plan.kind,
            hit,
            cut,
        });
        Some((self.plan.kind, cut))
    }
}

/// Count of live scopes (thread + process). The single relaxed load of
/// this counter is the only cost a disabled failpoint adds to any I/O
/// path.
static ARMED_SCOPES: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_PLAN: RefCell<Option<ActiveState>> = const { RefCell::new(None) };
}

static PROCESS_PLAN: Mutex<Option<ActiveState>> = Mutex::new(None);
/// Serializes process-scoped arming: a second [`arm_process`] blocks
/// until the first scope drops, so concurrent tests cannot interleave
/// process-wide plans.
static PROCESS_TOKEN: Mutex<()> = Mutex::new(());

#[inline]
fn disabled() -> bool {
    ARMED_SCOPES.load(Ordering::Relaxed) == 0
}

/// Arms `plan` for the calling thread only. Dropping the returned scope
/// disarms it. Panics if this thread already has an armed plan (scopes do
/// not nest — a chaos cell is one plan).
pub fn arm_thread(plan: FailPlan) -> ThreadScope {
    debug_assert!(
        plan.site.ends_with('*') || site_registered(&plan.site),
        "failplan targets unregistered site '{}'",
        plan.site
    );
    THREAD_PLAN.with(|slot| {
        let mut slot = slot.borrow_mut();
        assert!(
            slot.is_none(),
            "failpoint: this thread already has an armed plan"
        );
        *slot = Some(ActiveState::new(plan));
    });
    ARMED_SCOPES.fetch_add(1, Ordering::Relaxed);
    ThreadScope { _priv: () }
}

/// Arms `plan` for every thread in the process — what the `chaos` serve
/// cells use, since journal and cache writes happen on the server's own
/// threads. Blocks until any other process scope has dropped; pair with a
/// `path:` filter to confine the blast radius to one state directory.
pub fn arm_process(plan: FailPlan) -> ProcessScope {
    debug_assert!(
        plan.site.ends_with('*') || site_registered(&plan.site),
        "failplan targets unregistered site '{}'",
        plan.site
    );
    let token = PROCESS_TOKEN
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    *PROCESS_PLAN
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(ActiveState::new(plan));
    ARMED_SCOPES.fetch_add(1, Ordering::Relaxed);
    ProcessScope { _token: token }
}

/// A thread-scoped armed plan; disarms on drop.
pub struct ThreadScope {
    _priv: (),
}

impl ThreadScope {
    /// Every firing so far, in order.
    pub fn firings(&self) -> Vec<Firing> {
        THREAD_PLAN.with(|slot| {
            slot.borrow()
                .as_ref()
                .map(|s| s.firings.clone())
                .unwrap_or_default()
        })
    }

    /// How many times the plan has fired.
    pub fn fired(&self) -> u64 {
        THREAD_PLAN.with(|slot| slot.borrow().as_ref().map_or(0, |s| s.fired))
    }
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        THREAD_PLAN.with(|slot| slot.borrow_mut().take());
        ARMED_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A process-scoped armed plan; disarms on drop and releases the
/// process-scope serialization token.
pub struct ProcessScope {
    _token: MutexGuard<'static, ()>,
}

impl ProcessScope {
    /// Every firing so far, in order.
    pub fn firings(&self) -> Vec<Firing> {
        PROCESS_PLAN
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
            .map(|s| s.firings.clone())
            .unwrap_or_default()
    }

    /// How many times the plan has fired.
    pub fn fired(&self) -> u64 {
        PROCESS_PLAN
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
            .map_or(0, |s| s.fired)
    }
}

impl Drop for ProcessScope {
    fn drop(&mut self) {
        *PROCESS_PLAN
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        ARMED_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

fn injected_error(site: &str, kind: FaultKind) -> io::Error {
    let msg = format!("failpoint {site}: injected {kind}");
    match kind {
        FaultKind::Enospc => io::Error::new(io::ErrorKind::StorageFull, msg),
        _ => io::Error::other(msg),
    }
}

/// Consults the armed plan (thread scope first, then process scope) for
/// one hit at `site`.
fn consult(site: &str, path: &Path, len: Option<usize>) -> Option<(FaultKind, Option<usize>)> {
    debug_assert!(
        site_registered(site),
        "unregistered failpoint site '{site}'"
    );
    let thread_hit = THREAD_PLAN.with(|slot| {
        let mut slot = slot.borrow_mut();
        match slot.as_mut() {
            Some(state) if state.plan.matches(site, path) => Some(state.strike(site, len)),
            Some(_) => Some(None), // armed on this thread, different site
            None => None,          // not armed on this thread at all
        }
    });
    match thread_hit {
        Some(outcome) => outcome,
        None => {
            let mut guard = PROCESS_PLAN
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match guard.as_mut() {
                Some(state) if state.plan.matches(site, path) => state.strike(site, len),
                _ => None,
            }
        }
    }
}

/// Failpoint check for immediate-failure legs (create, fsync, rename,
/// reads). Returns the injected error when the armed plan fires at
/// `site`; truncating kinds degrade to an immediate error here since
/// there is no payload to cut.
#[inline]
pub fn on_io(site: &str, path: &Path) -> io::Result<()> {
    if disabled() {
        return Ok(());
    }
    match consult(site, path, None) {
        Some((kind, _)) => Err(injected_error(site, kind)),
        None => Ok(()),
    }
}

/// What [`on_write`] tells a payload-writing site to do.
#[derive(Debug)]
pub enum WriteFault {
    /// No fault: write the full payload normally.
    Clear,
    /// Fail without persisting anything.
    Fail(io::Error),
    /// Persist exactly `cut` bytes of the payload, then report `error` —
    /// the short-write / torn-append shape.
    Torn {
        /// Bytes to actually persist.
        cut: usize,
        /// The error to report after the truncated write.
        error: io::Error,
    },
}

/// Failpoint check for payload-writing legs. `len` is the payload size;
/// truncating kinds return [`WriteFault::Torn`] with a cut strictly
/// inside the payload (explicit `cut:` clamped to it).
#[inline]
pub fn on_write(site: &str, path: &Path, len: usize) -> WriteFault {
    if disabled() {
        return WriteFault::Clear;
    }
    match consult(site, path, Some(len)) {
        None => WriteFault::Clear,
        Some((kind, Some(cut))) => WriteFault::Torn {
            cut,
            error: injected_error(site, kind),
        },
        Some((kind, None)) => WriteFault::Fail(injected_error(site, kind)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_errors_are_typed() {
        let plan =
            FailPlan::parse("seed:7,site:journal.append.write,kind:torn-append,after:2,cut:3")
                .expect("parse");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.site, "journal.append.write");
        assert_eq!(plan.kind, FaultKind::TornAppend);
        assert_eq!(plan.after, Some(2));
        assert_eq!(plan.cut, Some(3));
        assert_eq!(FailPlan::parse(&plan.render()).expect("re-parse"), plan);

        let unbounded = FailPlan::parse("site:fsio.write,kind:eio,count:*").expect("parse");
        assert_eq!(unbounded.count, u64::MAX);
        assert_eq!(
            FailPlan::parse(&unbounded.render()).expect("re-parse"),
            unbounded
        );

        assert!(matches!(
            FailPlan::parse("site:fsio.write"),
            Err(FailSpecError::MissingKind)
        ));
        assert!(matches!(
            FailPlan::parse("kind:eio"),
            Err(FailSpecError::MissingSite)
        ));
        assert!(matches!(
            FailPlan::parse("site:fsio.write,kind:exotic"),
            Err(FailSpecError::UnknownKind { .. })
        ));
        assert!(matches!(
            FailPlan::parse("site:fsio.write,kind:eio,after:x"),
            Err(FailSpecError::BadNumber { .. })
        ));
        assert!(matches!(
            FailPlan::parse("site:fsio.write,kind:eio,color:red"),
            Err(FailSpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            FailPlan::parse("garbage"),
            Err(FailSpecError::MissingSeparator { .. })
        ));
    }

    #[test]
    fn disabled_checks_are_clear() {
        assert!(on_io("fsio.create", Path::new("/tmp/x")).is_ok());
        assert!(matches!(
            on_write("fsio.write", Path::new("/tmp/x"), 64),
            WriteFault::Clear
        ));
    }

    #[test]
    fn thread_scope_fires_after_n_hits_then_disarms() {
        let mut plan = FailPlan::once("fsio.write", FaultKind::Eio);
        plan.after = Some(2);
        let scope = arm_thread(plan);
        let p = Path::new("/tmp/artifact");
        assert!(matches!(on_write("fsio.write", p, 10), WriteFault::Clear));
        assert!(matches!(on_write("fsio.write", p, 10), WriteFault::Clear));
        match on_write("fsio.write", p, 10) {
            WriteFault::Fail(e) => {
                let msg = e.to_string();
                assert!(msg.contains("fsio.write"), "{msg}");
                assert!(msg.contains("eio"), "{msg}");
            }
            other => panic!("expected Fail, got {other:?}"),
        }
        // count:1 — the plan is spent.
        assert!(matches!(on_write("fsio.write", p, 10), WriteFault::Clear));
        let firings = scope.firings();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].hit, 2);
        assert_eq!(firings[0].kind, FaultKind::Eio);
        drop(scope);
        assert!(matches!(on_write("fsio.write", p, 10), WriteFault::Clear));
    }

    #[test]
    fn truncating_kinds_carry_a_cut_and_explicit_cut_is_clamped() {
        let mut plan = FailPlan::once("journal.append.write", FaultKind::TornAppend);
        plan.cut = Some(1000);
        let scope = arm_thread(plan);
        match on_write("journal.append.write", Path::new("j"), 16) {
            WriteFault::Torn { cut, error } => {
                assert_eq!(cut, 16, "explicit cut clamps to the payload");
                assert!(error.to_string().contains("torn-append"));
            }
            other => panic!("expected Torn, got {other:?}"),
        }
        assert_eq!(scope.firings()[0].cut, Some(16));
        drop(scope);

        // Derived cut: strictly short of the payload, seed-deterministic.
        let mut plan = FailPlan::once("fsio.write", FaultKind::ShortWrite);
        plan.seed = 11;
        let scope = arm_thread(plan.clone());
        let first = match on_write("fsio.write", Path::new("a"), 64) {
            WriteFault::Torn { cut, .. } => cut,
            other => panic!("expected Torn, got {other:?}"),
        };
        assert!(first < 64);
        drop(scope);
        let scope = arm_thread(plan);
        let second = match on_write("fsio.write", Path::new("a"), 64) {
            WriteFault::Torn { cut, .. } => cut,
            other => panic!("expected Torn, got {other:?}"),
        };
        assert_eq!(first, second, "same seed, same derived cut");
        drop(scope);
    }

    #[test]
    fn site_wildcards_and_path_filters_select_matches() {
        let mut plan = FailPlan::once("fsio.*", FaultKind::Eio);
        plan.count = u64::MAX;
        plan.path = Some("state-a".to_string());
        let scope = arm_thread(plan);
        assert!(on_io("fsio.create", Path::new("/tmp/state-b/f")).is_ok());
        assert!(on_io("journal.begin", Path::new("/tmp/state-a/f")).is_ok());
        assert!(on_io("fsio.rename", Path::new("/tmp/state-a/f")).is_err());
        assert!(on_io("fsio.fsync", Path::new("/tmp/state-a/g")).is_err());
        assert_eq!(scope.fired(), 2);
        drop(scope);
    }

    #[test]
    fn enospc_maps_to_storage_full() {
        let scope = arm_thread(FailPlan::once("fsio.create", FaultKind::Enospc));
        let err = on_io("fsio.create", Path::new("x")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(scope);
    }

    #[test]
    fn thread_scopes_do_not_leak_across_threads() {
        let mut plan = FailPlan::once("fsio.write", FaultKind::Eio);
        plan.count = u64::MAX;
        let scope = arm_thread(plan);
        // Another thread sees no thread plan (and no process plan here).
        let other = std::thread::spawn(|| {
            matches!(on_write("fsio.write", Path::new("x"), 8), WriteFault::Clear)
        })
        .join()
        .expect("thread");
        assert!(other, "sibling thread must not inherit a thread scope");
        assert!(matches!(
            on_write("fsio.write", Path::new("x"), 8),
            WriteFault::Fail(_)
        ));
        drop(scope);
    }

    #[test]
    fn process_scope_reaches_other_threads() {
        let mut plan = FailPlan::once("serve.cache.write", FaultKind::Eio);
        plan.count = u64::MAX;
        let scope = arm_process(plan);
        let hit = std::thread::spawn(|| {
            on_io("serve.cache.write", Path::new("cache/entry.res")).is_err()
        })
        .join()
        .expect("thread");
        assert!(hit, "process scope must reach sibling threads");
        assert!(scope.fired() >= 1);
        drop(scope);
        assert!(on_io("serve.cache.write", Path::new("cache/entry.res")).is_ok());
    }

    #[test]
    fn every_registered_site_is_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for site in SITES {
            assert!(seen.insert(site), "duplicate site {site}");
        }
    }
}
