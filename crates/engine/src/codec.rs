//! Versioned binary checkpoint codec.
//!
//! Checkpoints make multi-hour simulations crash-recoverable: a run can be
//! serialized at an epoch boundary, the process killed, and a new process
//! can resume from the bytes and continue *bit-identically*. The format is
//! deliberately hand-rolled (the workspace has no external dependencies)
//! and deliberately boring:
//!
//! ```text
//! +--------+---------+---------------------+----------+
//! | magic  | version |  named sections ... | checksum |
//! | 8 B    | u32     |                     | u64      |
//! +--------+---------+---------------------+----------+
//!
//! section := name_len:u16 | name:utf8 | payload_len:u64 | payload
//! ```
//!
//! All integers are little-endian. The trailing checksum is FNV-1a 64 over
//! every preceding byte (magic and version included). Sections are read
//! back in writing order by *expected name*, so a reader that asks for
//! `"driver"` but finds `"fabric"` fails with a typed
//! [`CodecError::SectionMismatch`] instead of silently misinterpreting
//! bytes; a truncated file fails with [`CodecError::Truncated`] naming the
//! section that ran dry.
//!
//! Components participate through the [`Snapshot`] / [`Restore`] traits.
//! `Restore` mutates a freshly constructed value in place rather than
//! building one from scratch, so geometry that comes from configuration
//! (TLB shape, channel bandwidth, frame capacity) never needs to be
//! serialized — only mutable state does.

use std::fmt;
use std::io::Write;

use crate::error::SimError;
use crate::failpoint;

/// File magic: identifies an OASIS checkpoint.
pub const MAGIC: [u8; 8] = *b"OASISCKP";

/// Current checkpoint format version. Bump on any layout change; readers
/// reject other versions with [`CodecError::UnsupportedVersion`].
/// v3 added the hardware-fault section (link health, fault-plan RNG,
/// quarantine state) and the fault-plan fields in the config section.
pub const FORMAT_VERSION: u32 = 3;

// The checksum hash lives in `crate::hash` (one FNV-1a implementation for
// the whole workspace); re-exported here because the codec is where every
// historical call-site imported it from.
pub use crate::hash::{fnv1a, Fnv1a};

/// A typed checkpoint-codec failure. Every variant that concerns file
/// content names the section (or header region) where decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with the OASIS checkpoint magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The file ended before the named section's bytes did.
    Truncated {
        /// The section (or `"header"` / `"checksum"`) that ran dry.
        section: String,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing FNV-1a checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recomputed over the file body.
        expected: u64,
        /// Checksum stored in the trailer.
        got: u64,
    },
    /// The reader asked for one section but the file held another —
    /// writer and reader disagree about layout.
    SectionMismatch {
        /// Section the reader expected next.
        expected: String,
        /// Section actually present.
        found: String,
    },
    /// Section bytes decoded but the values are not usable (bad enum tag,
    /// geometry mismatch with the running configuration, ...).
    Malformed {
        /// The section holding the bad value.
        section: String,
        /// What was wrong.
        detail: String,
    },
    /// An underlying I/O read or write failed.
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an OASIS checkpoint (bad magic)"),
            CodecError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {expected})"
            ),
            CodecError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "checkpoint truncated in section '{section}': needed {needed} bytes, {available} available"
            ),
            CodecError::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: computed {expected:#018x}, trailer says {got:#018x}"
            ),
            CodecError::SectionMismatch { expected, found } => write!(
                f,
                "expected checkpoint section '{expected}' but found '{found}'"
            ),
            CodecError::Malformed { section, detail } => {
                write!(f, "malformed checkpoint section '{section}': {detail}")
            }
            CodecError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for SimError {
    fn from(e: CodecError) -> Self {
        SimError::Codec(e)
    }
}

/// Serializes a component's mutable state into a section payload.
pub trait Snapshot {
    /// Appends this component's state to `w`.
    fn snapshot(&self, w: &mut ByteWriter);
}

/// Restores a component's mutable state from a section payload, in place.
///
/// Implementations overwrite the receiver's mutable state entirely; the
/// receiver supplies configuration-derived geometry (capacities, set
/// counts, bandwidths) that the payload intentionally omits.
pub trait Restore {
    /// Replaces this component's state with the payload at `r`.
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError>;
}

/// Little-endian primitive writer used for section payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed (u16) UTF-8 string.
    pub fn str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("checkpoint string longer than 64 KiB");
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian primitive reader over one section's payload. Carries the
/// section name so every failure is attributable.
#[derive(Debug)]
pub struct ByteReader<'a> {
    section: String,
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, reporting failures against `section`.
    pub fn new(section: impl Into<String>, data: &'a [u8]) -> Self {
        ByteReader {
            section: section.into(),
            data,
            pos: 0,
        }
    }

    /// The section this reader decodes.
    pub fn section(&self) -> &str {
        &self.section
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// A [`CodecError::Malformed`] against this reader's section.
    pub fn malformed(&self, detail: impl Into<String>) -> CodecError {
        CodecError::Malformed {
            section: self.section.clone(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                section: self.section.clone(),
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.malformed(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and converts it to `usize`, failing on overflow.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("count {v} exceeds usize")))
    }

    /// Reads a length-prefixed (u16) UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("string payload is not UTF-8"))
    }
}

/// Writes a whole checkpoint: header, named sections, trailing checksum.
#[derive(Debug)]
pub struct CheckpointWriter {
    buf: Vec<u8>,
}

impl Default for CheckpointWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl CheckpointWriter {
    /// Starts a checkpoint: writes the magic and format version.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        CheckpointWriter { buf }
    }

    /// Appends one named section whose payload is produced by `fill`.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut ByteWriter)) {
        let mut w = ByteWriter::new();
        fill(&mut w);
        let payload = w.into_vec();
        let name_len = u16::try_from(name.len()).expect("section name longer than 64 KiB");
        self.buf.extend_from_slice(&name_len.to_le_bytes());
        self.buf.extend_from_slice(name.as_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&payload);
    }

    /// Appends one named section holding a [`Snapshot`] component's state.
    pub fn snapshot(&mut self, name: &str, component: &impl Snapshot) {
        self.section(name, |w| component.snapshot(w));
    }

    /// Seals the checkpoint: appends the FNV-1a checksum and returns the
    /// complete byte image.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Writes a sealed checkpoint image to `sink`, routed through the
/// `codec.checkpoint` failpoint site so chaos campaigns can fail or
/// truncate the emission. A truncating fault writes the short prefix to
/// the sink for real — the resulting image must then fail validation on
/// read-back, never parse as a valid checkpoint.
///
/// # Errors
///
/// Returns [`CodecError::Io`] naming the failure (the failpoint site when
/// injected, the OS error otherwise).
pub fn emit_checkpoint(sink: &mut dyn Write, bytes: &[u8]) -> Result<(), CodecError> {
    match failpoint::on_write(
        "codec.checkpoint",
        std::path::Path::new("checkpoint"),
        bytes.len(),
    ) {
        failpoint::WriteFault::Clear => {}
        failpoint::WriteFault::Fail(e) => return Err(CodecError::Io(e.to_string())),
        failpoint::WriteFault::Torn { cut, error } => {
            let _ = sink.write_all(&bytes[..cut]);
            return Err(CodecError::Io(error.to_string()));
        }
    }
    sink.write_all(bytes)
        .map_err(|e| CodecError::Io(e.to_string()))
}

/// Reads a checkpoint produced by [`CheckpointWriter`].
///
/// Construction validates the header; [`CheckpointReader::section`] walks
/// named sections in order; [`CheckpointReader::finish`] verifies the
/// trailing checksum once every section has been consumed. Verifying the
/// checksum *last* keeps truncation errors attributable to the section
/// that actually ran dry.
#[derive(Debug)]
pub struct CheckpointReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> CheckpointReader<'a> {
    /// Opens `data` as a checkpoint, validating magic and version.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < MAGIC.len() + 4 {
            return Err(CodecError::Truncated {
                section: "header".into(),
                needed: MAGIC.len() + 4,
                available: data.len(),
            });
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u32::from_le_bytes(data[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(CheckpointReader {
            data,
            pos: MAGIC.len() + 4,
        })
    }

    fn take(&mut self, n: usize, section: &str) -> Result<&'a [u8], CodecError> {
        // The final 8 bytes are the checksum trailer, never section content.
        let body_end = self.data.len().saturating_sub(8);
        let available = body_end.saturating_sub(self.pos);
        if available < n {
            return Err(CodecError::Truncated {
                section: section.into(),
                needed: n,
                available,
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads the next section, requiring its name to be `expect`.
    pub fn section(&mut self, expect: &str) -> Result<ByteReader<'a>, CodecError> {
        let name_len = u16::from_le_bytes(self.take(2, expect)?.try_into().unwrap()) as usize;
        let name_bytes = self.take(name_len, expect)?;
        let found = String::from_utf8(name_bytes.to_vec()).map_err(|_| CodecError::Malformed {
            section: expect.into(),
            detail: "section name is not UTF-8".into(),
        })?;
        if found != expect {
            return Err(CodecError::SectionMismatch {
                expected: expect.into(),
                found,
            });
        }
        let payload_len = u64::from_le_bytes(self.take(8, expect)?.try_into().unwrap());
        let payload_len = usize::try_from(payload_len).map_err(|_| CodecError::Malformed {
            section: expect.into(),
            detail: format!("section length {payload_len} exceeds usize"),
        })?;
        let payload = self.take(payload_len, expect)?;
        Ok(ByteReader::new(expect, payload))
    }

    /// Reads the next section directly into a [`Restore`] component,
    /// requiring the payload to be fully consumed.
    pub fn restore(
        &mut self,
        expect: &str,
        component: &mut impl Restore,
    ) -> Result<(), CodecError> {
        let mut r = self.section(expect)?;
        component.restore(&mut r)?;
        if !r.is_empty() {
            return Err(r.malformed(format!("{} unconsumed payload bytes", r.remaining())));
        }
        Ok(())
    }

    /// Verifies the trailing checksum. Call after the last section.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.data.len() < self.pos + 8 {
            return Err(CodecError::Truncated {
                section: "checksum".into(),
                needed: 8,
                available: self.data.len() - self.pos,
            });
        }
        let body = &self.data[..self.data.len() - 8];
        let trailer = &self.data[self.data.len() - 8..];
        let got = u64::from_le_bytes(trailer.try_into().unwrap());
        let expected = fnv1a(body);
        if got != expected {
            return Err(CodecError::ChecksumMismatch { expected, got });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The FNV-1a reference vectors are pinned in `crate::hash`; the codec
    // checksum tests below exercise the re-export end to end.

    #[test]
    fn round_trip_preserves_primitives() {
        let mut cw = CheckpointWriter::new();
        cw.section("prims", |w| {
            w.u8(0xAB);
            w.bool(true);
            w.u16(0xBEEF);
            w.u32(0xDEAD_BEEF);
            w.u64(0x0123_4567_89AB_CDEF);
            w.f64(1.5);
            w.str("hello");
        });
        let bytes = cw.finish();

        let mut cr = CheckpointReader::new(&bytes).expect("valid header");
        let mut r = cr.section("prims").expect("section present");
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.is_empty());
        cr.finish().expect("checksum intact");
    }

    #[test]
    fn truncated_file_names_the_dry_section() {
        let mut cw = CheckpointWriter::new();
        cw.section("alpha", |w| w.u64(1));
        cw.section("beta", |w| {
            for i in 0..16u64 {
                w.u64(i);
            }
        });
        let bytes = cw.finish();
        // Cut deep into the beta payload.
        let cut = &bytes[..bytes.len() - 64];

        let mut cr = CheckpointReader::new(cut).expect("header survives the cut");
        cr.section("alpha").expect("alpha is intact");
        let err = cr.section("beta").expect_err("beta must be truncated");
        match err {
            CodecError::Truncated { section, .. } => assert_eq!(section, "beta"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn flipped_checksum_byte_is_detected() {
        let mut cw = CheckpointWriter::new();
        cw.section("data", |w| w.u64(42));
        let mut bytes = cw.finish();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;

        let mut cr = CheckpointReader::new(&bytes).expect("header unaffected");
        cr.section("data").expect("sections decode");
        assert!(matches!(
            cr.finish(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn flipped_body_byte_is_detected() {
        let mut cw = CheckpointWriter::new();
        cw.section("data", |w| w.u64(42));
        let mut bytes = cw.finish();
        // Flip a payload byte: the section still decodes (it is just a
        // different u64) but the trailer no longer matches.
        let idx = bytes.len() - 10;
        bytes[idx] ^= 0xFF;
        let mut cr = CheckpointReader::new(&bytes).expect("header unaffected");
        let _ = cr.section("data");
        assert!(matches!(
            cr.finish(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let mut cw = CheckpointWriter::new();
        cw.section("data", |w| w.u64(7));
        let mut bytes = cw.finish();
        bytes[8] = 0x7F; // low byte of the version field
        match CheckpointReader::new(&bytes) {
            Err(CodecError::UnsupportedVersion { found, expected }) => {
                assert_eq!(found, 0x7F);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOTACKPT\x01\x00\x00\x00more".to_vec();
        assert!(matches!(
            CheckpointReader::new(&bytes),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn section_order_is_enforced() {
        let mut cw = CheckpointWriter::new();
        cw.section("first", |w| w.u8(1));
        cw.section("second", |w| w.u8(2));
        let bytes = cw.finish();
        let mut cr = CheckpointReader::new(&bytes).unwrap();
        match cr.section("second") {
            Err(CodecError::SectionMismatch { expected, found }) => {
                assert_eq!(expected, "second");
                assert_eq!(found, "first");
            }
            other => panic!("expected SectionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_the_section_name() {
        let e = CodecError::Truncated {
            section: "driver".into(),
            needed: 8,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("driver"), "{s}");
        let e = CodecError::Malformed {
            section: "gpus".into(),
            detail: "set count mismatch".into(),
        };
        assert!(e.to_string().contains("gpus"));
    }

    #[test]
    fn codec_errors_lift_into_sim_errors() {
        let e: SimError = CodecError::BadMagic.into();
        assert!(e.to_string().contains("checkpoint"));
    }
}
