//! Discrete-event simulation kernel for the OASIS multi-GPU memory-system
//! simulator.
//!
//! This crate plays the role that the Akita engine plays for MGPUSim: it
//! provides simulated time ([`Time`], [`Duration`]), a deterministic event
//! queue ([`EventQueue`]), and bandwidth-serialized transfer channels
//! ([`Channel`]) from which the rest of the simulator is built.
//!
//! # Example
//!
//! ```
//! use oasis_engine::{Duration, EventQueue, Time};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(Time::ZERO + Duration::from_ns(5), "later");
//! q.push(Time::ZERO, "now");
//! assert_eq!(q.pop().map(|e| e.payload), Some("now"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("later"));
//! ```

pub mod channel;
pub mod codec;
pub mod error;
pub mod failpoint;
pub mod fsio;
pub mod fxhash;
pub mod hash;
pub mod journal;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use channel::{Channel, Transfer};
pub use codec::{
    emit_checkpoint, ByteReader, ByteWriter, CheckpointReader, CheckpointWriter, CodecError,
    Restore, Snapshot,
};
pub use error::{
    ErrorPolicy, EvictionError, FaultError, InvariantViolation, MigrationError, SimError,
    SimResult, TableError, TraceError,
};
pub use failpoint::{FailPlan, FailSpecError, FaultKind as IoFaultKind, Firing};
pub use fsio::atomic_write;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hash::{fnv1a, Fnv1a};
pub use journal::{
    recover, AdjudicatedOutcome, Adjudication, JournalError, JournalRecord, JournalWriter,
    Recovery, TailSalvage,
};
pub use metrics::{CounterHandle, Histogram, HistogramHandle, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use obs::Observer;
pub use pool::{
    run_sweep, run_sweep_controlled, Job, JobCtx, JobError, JobOutcome, JobRecord, PoolConfig,
    StopHandle, SweepControl, SweepReport,
};
pub use queue::{Event, EventQueue};
pub use rng::SimRng;
pub use time::{Duration, Time};
pub use trace::{
    chrome_trace_json, Endpoint, NullTracer, RingTracer, TimedEvent, TraceEvent, Tracer,
};
