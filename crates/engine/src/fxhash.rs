//! A fast, deterministic hasher for hot-path integer-keyed maps.
//!
//! The simulator's per-page bookkeeping maps (`Vpn`-keyed tables, access
//! counters, cache reverse indices) sit on the access fast path, where
//! `std`'s SipHash costs more than the work it guards. This is the FxHash
//! multiply-rotate scheme used by rustc: a few cycles per `u64`, no
//! per-instance random state, and therefore identical layouts across
//! runs — which keeps the hot path fast *and* reproducible.
//!
//! Determinism note: nothing in the simulator may iterate a hash map in a
//! behavior-affecting order (snapshots sort, digests hash sorted bytes),
//! so the hasher choice cannot change semantics — only speed. These maps
//! are keyed by trusted simulator-internal values (page numbers, group
//! ids), not attacker-controlled input, so HashDoS resistance is not a
//! concern.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (the golden-ratio-derived odd
/// constant for 64-bit mixing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash hasher: `state = (rotl5(state) ^ word) * SEED` per
/// 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (no random per-map state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn byte_stream_matches_wordwise_padding() {
        // Partial trailing chunks hash via zero-padding; distinct lengths
        // of the same prefix must still disagree through the word mix.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Both pad to the same word here — equality is fine; the test
        // pins that hashing is stable, not injective.
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }
}
