//! Hierarchical metrics registry: named counters plus fixed-bucket latency
//! histograms.
//!
//! Keys are dot-separated paths (`uvm.fault.service_ns`,
//! `fabric.nvlink0.busy_ns`, `otable.relearn`) so consumers can group and
//! filter by prefix. Both maps are `BTreeMap`s: iteration order — and
//! therefore every rendering of a registry — is deterministic.
//!
//! The whole registry is gated by a single `enabled` flag set at
//! construction. A disabled registry rejects every update with one branch
//! and allocates nothing, which is what keeps the observability layer's
//! disabled path out of the simulator's hot-loop profile. Registry contents
//! are *observational*: they are never serialized into checkpoints or state
//! digests, so enabling metrics cannot perturb replay determinism.

use std::collections::BTreeMap;

use crate::time::Duration;

/// Number of histogram buckets: bucket 0 holds exact-zero samples, buckets
/// `1..=26` hold log2-spaced nanosecond ranges (`[2^(i-1), 2^i)` ns), and
/// the final bucket absorbs everything at or above ~33 ms (overflow).
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A fixed-bucket latency histogram over nanoseconds.
///
/// Buckets are log2-spaced: bucket 0 counts exact-zero latencies, bucket
/// `i` (for `1 <= i < HISTOGRAM_BUCKETS-1`) counts samples in
/// `[2^(i-1), 2^i)` ns, and the last bucket is the overflow bucket for
/// everything larger. Sum/min/max are tracked exactly, so the mean is exact
/// and only quantiles are bucket-resolution estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a sample of `ns` nanoseconds lands in.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        // 64 - leading_zeros = position of the highest set bit + 1, so
        // ns=1 -> 1, ns in [2,3] -> 2, ... clamped into the overflow bucket.
        ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive lower bound (ns) of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact mean in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Raw count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Folds another histogram into this one: bucket counts, count, and sum
    /// add; min/max combine. Merging is associative and commutative, so a
    /// set of per-worker histograms merges to the same result in any order.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-resolution estimate of quantile `q` in `[0, 1]`: the floor of
    /// the bucket containing the q-th sample (exact for bucket 0). The
    /// overflow bucket reports the recorded maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == HISTOGRAM_BUCKETS - 1 {
                    return self.max_ns;
                }
                return Self::bucket_floor(i);
            }
        }
        self.max_ns
    }
}

/// A pre-resolved counter slot: holds the index of a counter registered
/// with [`MetricsRegistry::counter_handle`], so hot-path updates are a
/// bounds-checked vector add instead of a `BTreeMap` string lookup.
///
/// Handles are only meaningful on the registry (or a clone of the
/// registry) that issued them; on a disabled registry every handle update
/// is dropped by the same single branch as the string API.
#[derive(Debug, Clone, Copy)]
pub struct CounterHandle(u32);

/// A pre-resolved histogram slot, the [`CounterHandle`] analogue for
/// latency histograms.
#[derive(Debug, Clone, Copy)]
pub struct HistogramHandle(u32);

/// Named counters and latency histograms for one run.
///
/// Storage is an index map (`name -> slot`) over dense value vectors.
/// The string-keyed API looks the slot up per call; hot-path consumers
/// resolve a [`CounterHandle`]/[`HistogramHandle`] once at construction
/// and update by slot. A registered-but-never-updated key is *not*
/// considered recorded: it does not appear in listings, keeping handle
/// pre-registration invisible in rendered output.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counter_idx: BTreeMap<String, u32>,
    counter_vals: Vec<u64>,
    /// Whether the slot was ever written (add/set), as opposed to merely
    /// registered for a handle. Distinguishes an explicit zero gauge from
    /// an untouched slot.
    counter_live: Vec<bool>,
    histogram_idx: BTreeMap<String, u32>,
    histogram_vals: Vec<Histogram>,
}

impl MetricsRegistry {
    /// A registry that records everything.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// A registry that drops every update (the default).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether updates are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn counter_slot(&mut self, key: &str) -> usize {
        if let Some(&i) = self.counter_idx.get(key) {
            return i as usize;
        }
        let i = self.counter_vals.len();
        self.counter_idx.insert(key.to_string(), i as u32);
        self.counter_vals.push(0);
        self.counter_live.push(false);
        i
    }

    fn histogram_slot(&mut self, key: &str) -> usize {
        if let Some(&i) = self.histogram_idx.get(key) {
            return i as usize;
        }
        let i = self.histogram_vals.len();
        self.histogram_idx.insert(key.to_string(), i as u32);
        self.histogram_vals.push(Histogram::default());
        i
    }

    /// Resolves `key` to a [`CounterHandle`] for repeated hot-path updates.
    ///
    /// Resolve once (at component construction), update per event with
    /// [`MetricsRegistry::add_to`]. On a disabled registry this registers
    /// nothing and returns a handle whose updates are dropped.
    pub fn counter_handle(&mut self, key: &str) -> CounterHandle {
        if !self.enabled {
            return CounterHandle(0);
        }
        CounterHandle(self.counter_slot(key) as u32)
    }

    /// Resolves `key` to a [`HistogramHandle`]; see
    /// [`MetricsRegistry::counter_handle`].
    pub fn histogram_handle(&mut self, key: &str) -> HistogramHandle {
        if !self.enabled {
            return HistogramHandle(0);
        }
        HistogramHandle(self.histogram_slot(key) as u32)
    }

    /// Adds `v` to the counter behind `h` (the hot-path form of
    /// [`MetricsRegistry::add`]: one branch plus a vector add).
    #[inline]
    pub fn add_to(&mut self, h: CounterHandle, v: u64) {
        if !self.enabled {
            return;
        }
        let i = h.0 as usize;
        self.counter_vals[i] += v;
        self.counter_live[i] = true;
    }

    /// Records `ns` into the histogram behind `h` (the hot-path form of
    /// [`MetricsRegistry::observe_ns`]).
    #[inline]
    pub fn observe_ns_in(&mut self, h: HistogramHandle, ns: u64) {
        if !self.enabled {
            return;
        }
        self.histogram_vals[h.0 as usize].record_ns(ns);
    }

    /// Records a [`Duration`] into the histogram behind `h`.
    #[inline]
    pub fn observe_in(&mut self, h: HistogramHandle, d: Duration) {
        self.observe_ns_in(h, d.as_ps() / 1000);
    }

    /// Adds `v` to counter `key` (creating it at zero).
    ///
    /// Steady-state updates are allocation-free: the key string is only
    /// cloned the first time a counter is touched.
    pub fn add(&mut self, key: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let i = self.counter_slot(key);
        self.counter_vals[i] += v;
        self.counter_live[i] = true;
    }

    /// Overwrites counter `key` with `v` (for end-of-run gauges rolled up
    /// from component state, e.g. per-link busy time).
    pub fn set(&mut self, key: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let i = self.counter_slot(key);
        self.counter_vals[i] = v;
        self.counter_live[i] = true;
    }

    /// Records a latency sample of `ns` nanoseconds into histogram `key`.
    pub fn observe_ns(&mut self, key: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        let i = self.histogram_slot(key);
        self.histogram_vals[i].record_ns(ns);
    }

    /// Records a [`Duration`] sample (picosecond durations are rounded
    /// down to whole nanoseconds).
    pub fn observe(&mut self, key: &str, d: Duration) {
        self.observe_ns(key, d.as_ps() / 1000);
    }

    /// The value of counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counter_idx
            .get(key)
            .map(|&i| self.counter_vals[i as usize])
            .unwrap_or(0)
    }

    /// The histogram under `key`, if any samples were recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histogram_idx
            .get(key)
            .map(|&i| &self.histogram_vals[i as usize])
            .filter(|h| h.count() > 0)
    }

    /// All recorded counters in deterministic (lexicographic) key order.
    /// Slots registered for a handle but never updated are omitted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_idx
            .iter()
            .filter(|(_, &i)| self.counter_live[i as usize])
            .map(|(k, &i)| (k.as_str(), self.counter_vals[i as usize]))
    }

    /// All recorded histograms in deterministic (lexicographic) key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_idx
            .iter()
            .filter(|(_, &i)| self.histogram_vals[i as usize].count() > 0)
            .map(|(k, &i)| (k.as_str(), &self.histogram_vals[i as usize]))
    }

    /// Number of distinct counters recorded.
    pub fn counter_count(&self) -> usize {
        self.counter_live.iter().filter(|&&l| l).count()
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise. Because the index maps are `BTreeMap`s and
    /// [`Histogram::merge_from`] is order-insensitive, merging a set of
    /// per-worker registries yields the same result in any order — this is
    /// what makes parallel-sweep metrics deterministic. A disabled
    /// receiver still drops everything.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        if !self.enabled {
            return;
        }
        for (k, &i) in other.counter_idx.iter() {
            if other.counter_live[i as usize] {
                self.add(k, other.counter_vals[i as usize]);
            }
        }
        for (k, &i) in other.histogram_idx.iter() {
            let h = &other.histogram_vals[i as usize];
            if h.count() > 0 {
                let mine = self.histogram_slot(k);
                self.histogram_vals[mine].merge_from(h);
            }
        }
    }
}

/// Logical equality: same enablement and the same *recorded* content.
/// Slot numbering (handle registration order) is intentionally ignored —
/// two registries that rendered identically are equal.
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.enabled == other.enabled
            && self.counters().eq(other.counters())
            && self.histograms().eq(other.histograms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let mut h = Histogram::default();
        h.record_ns(0);
        h.record_ns(0);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        // Bucket 0 is exclusively for zeros: a 1 ns sample goes to bucket 1.
        h.record_ns(1);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
    }

    #[test]
    fn huge_samples_land_in_the_overflow_bucket() {
        let mut h = Histogram::default();
        h.record_ns(u64::MAX);
        h.record_ns(1 << 40); // ~18 minutes in ns — far past the last range
        assert_eq!(h.bucket(HISTOGRAM_BUCKETS - 1), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        // The overflow bucket reports the true max for quantiles.
        assert_eq!(h.quantile_ns(0.99), u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_log2_ns() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_floor(2), 2);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn quantiles_estimate_from_buckets() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record_ns(100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            h.record_ns(10_000); // bucket 14: [8192, 16384)
        }
        assert_eq!(h.quantile_ns(0.5), 64);
        assert_eq!(h.quantile_ns(0.95), 8192);
        assert!((h.mean_ns() - 1090.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_order_insensitive() {
        let mut a = Histogram::default();
        a.record_ns(100);
        a.record_ns(0);
        let mut b = Histogram::default();
        b.record_ns(10_000);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum_ns(), 10_100);
        assert_eq!(ab.min_ns(), 0);
        assert_eq!(ab.max_ns(), 10_000);
        // Merging an empty histogram is a no-op (min stays untouched).
        let before = ab.clone();
        ab.merge_from(&Histogram::default());
        assert_eq!(ab, before);
    }

    #[test]
    fn registry_merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::enabled();
        a.add("shared", 2);
        a.add("only.a", 1);
        a.observe_ns("lat", 100);
        let mut b = MetricsRegistry::enabled();
        b.add("shared", 3);
        b.add("only.b", 7);
        b.observe_ns("lat", 200);
        b.observe_ns("other", 5);
        a.merge_from(&b);
        assert_eq!(a.counter("shared"), 5);
        assert_eq!(a.counter("only.a"), 1);
        assert_eq!(a.counter("only.b"), 7);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        // A disabled receiver drops the merge entirely.
        let mut d = MetricsRegistry::disabled();
        d.merge_from(&b);
        assert_eq!(d.counters().count(), 0);
    }

    #[test]
    fn handles_update_the_same_slots_as_strings() {
        let mut m = MetricsRegistry::enabled();
        let c = m.counter_handle("access.local");
        let h = m.histogram_handle("walk_ns");
        m.add_to(c, 2);
        m.add("access.local", 3);
        m.add_to(c, 1);
        assert_eq!(m.counter("access.local"), 6);
        m.observe_ns_in(h, 100);
        m.observe_ns("walk_ns", 200);
        assert_eq!(m.histogram("walk_ns").unwrap().count(), 2);
        m.observe_in(h, Duration::from_ps(1500));
        assert_eq!(m.histogram("walk_ns").unwrap().count(), 3);
    }

    #[test]
    fn registered_but_untouched_handles_stay_invisible() {
        let mut m = MetricsRegistry::enabled();
        let _c = m.counter_handle("never.updated");
        let _h = m.histogram_handle("never.observed");
        m.add("real", 1);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.counter_count(), 1);
        assert!(m.histogram("never.observed").is_none());
        assert_eq!(m.histograms().count(), 0);
        // An explicit zero gauge, by contrast, is recorded.
        m.set("zero.gauge", 0);
        assert_eq!(m.counter_count(), 2);
    }

    #[test]
    fn equality_ignores_registration_order() {
        let mut a = MetricsRegistry::enabled();
        let ah = a.counter_handle("x");
        a.counter_handle("unused");
        a.add_to(ah, 5);
        a.observe_ns("lat", 7);
        let mut b = MetricsRegistry::enabled();
        b.observe_ns("lat", 7);
        b.add("x", 5);
        assert_eq!(a, b);
        b.add("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_registry_drops_handle_updates() {
        let mut m = MetricsRegistry::disabled();
        let c = m.counter_handle("a");
        let h = m.histogram_handle("b");
        m.add_to(c, 5);
        m.observe_ns_in(h, 100);
        assert_eq!(m.counters().count(), 0);
        assert!(m.histogram("b").is_none());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        m.add("a.b", 5);
        m.observe_ns("c.d", 100);
        m.set("e.f", 9);
        assert!(!m.is_enabled());
        assert_eq!(m.counter("a.b"), 0);
        assert!(m.histogram("c.d").is_none());
        assert_eq!(m.counters().count(), 0);
    }

    #[test]
    fn enabled_registry_accumulates_in_sorted_order() {
        let mut m = MetricsRegistry::enabled();
        m.add("z.last", 1);
        m.add("a.first", 2);
        m.add("a.first", 3);
        m.set("m.gauge", 7);
        m.set("m.gauge", 9);
        m.observe(
            "lat_ns",
            Duration::from_ps(1500), // 1.5 ns rounds down to 1
        );
        assert_eq!(m.counter("a.first"), 5);
        assert_eq!(m.counter("m.gauge"), 9);
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.first", "m.gauge", "z.last"]);
        assert_eq!(m.histogram("lat_ns").unwrap().bucket(1), 1);
    }
}
