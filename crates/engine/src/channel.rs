//! Bandwidth-serialized transfer channels.
//!
//! A [`Channel`] models a physical link (an NVLink port, a PCIe lane bundle,
//! a DRAM channel): transfers occupy the link back-to-back, so a burst of
//! page migrations genuinely queues up and congests, exactly the effect that
//! makes on-touch "ping-ponging" expensive in the paper.

use crate::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use crate::time::{Duration, Time};

/// The outcome of reserving a transfer on a [`Channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the payload starts moving (after queueing behind earlier
    /// transfers).
    pub start: Time,
    /// When the last byte leaves the sender.
    pub depart: Time,
    /// When the last byte arrives at the receiver (`depart` + wire latency).
    pub arrive: Time,
}

impl Transfer {
    /// Total latency observed by the requester, from `now` to arrival.
    pub fn latency_from(&self, now: Time) -> Duration {
        self.arrive.since(now)
    }
}

/// A point-to-point link with fixed wire latency and finite bandwidth.
///
/// # Example
///
/// ```
/// use oasis_engine::{Channel, Duration, Time};
///
/// // A 300 GB/s NVLink port with 500 ns latency.
/// let mut link = Channel::new(300_000_000_000, Duration::from_ns(500));
/// let a = link.reserve(Time::ZERO, 4096);
/// let b = link.reserve(Time::ZERO, 4096);
/// assert_eq!(b.start, a.depart); // second transfer queues behind the first
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    bytes_per_sec: u64,
    latency: Duration,
    next_free: Time,
    busy: Duration,
    bytes_moved: u64,
    transfers: u64,
    // Memo of the last transfer-size -> duration computation. Transfer
    // sizes are heavily repeated (64 B coalesced transactions, page-sized
    // migrations), and `Duration::for_transfer` costs a u128 division per
    // call. Pure cache: same inputs, same output; never serialized.
    memo_bytes: u64,
    memo_xfer: Duration,
}

impl Channel {
    /// Creates a channel with the given sustained bandwidth (bytes/second)
    /// and one-way wire latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Channel {
            bytes_per_sec,
            latency,
            next_free: Time::ZERO,
            busy: Duration::ZERO,
            bytes_moved: 0,
            transfers: 0,
            memo_bytes: 0,
            memo_xfer: Duration::ZERO,
        }
    }

    /// Reserves the link for a `bytes`-sized transfer requested at `now`,
    /// returning its timing. The link is occupied until the transfer
    /// departs; wire latency is not occupancy (it pipelines).
    pub fn reserve(&mut self, now: Time, bytes: u64) -> Transfer {
        let start = now.max(self.next_free);
        let xfer = if bytes == self.memo_bytes {
            self.memo_xfer
        } else {
            let x = Duration::for_transfer(bytes, self.bytes_per_sec);
            self.memo_bytes = bytes;
            self.memo_xfer = x;
            x
        };
        let depart = start + xfer;
        let arrive = depart + self.latency;
        self.next_free = depart;
        self.busy += xfer;
        self.bytes_moved += bytes;
        self.transfers += 1;
        Transfer {
            start,
            depart,
            arrive,
        }
    }

    /// Latency-only traversal for tiny control messages (fault packets,
    /// invalidation acks) that don't meaningfully consume bandwidth.
    pub fn control_latency(&self) -> Duration {
        self.latency
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// One-way wire latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Earliest time a new transfer could start.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Cumulative time the link spent moving bytes.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Total bytes moved over the link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Resets occupancy and statistics (used between experiment runs).
    pub fn reset(&mut self) {
        self.next_free = Time::ZERO;
        self.busy = Duration::ZERO;
        self.bytes_moved = 0;
        self.transfers = 0;
    }
}

impl Snapshot for Channel {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.next_free.as_ps());
        w.u64(self.busy.as_ps());
        w.u64(self.bytes_moved);
        w.u64(self.transfers);
    }
}

impl Restore for Channel {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        // Bandwidth and latency come from construction; only occupancy and
        // statistics are mutable state.
        self.next_free = Time::from_ps(r.u64()?);
        self.busy = Duration::from_ps(r.u64()?);
        self.bytes_moved = r.u64()?;
        self.transfers = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> Time {
        Time::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn single_transfer_timing() {
        let mut c = Channel::new(1_000_000_000, Duration::from_ns(100)); // 1 GB/s
        let t = c.reserve(at(50), 1000); // 1000 B at 1 GB/s = 1000 ns
        assert_eq!(t.start, at(50));
        assert_eq!(t.depart, at(1050));
        assert_eq!(t.arrive, at(1150));
        assert_eq!(t.latency_from(at(50)), Duration::from_ns(1100));
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut c = Channel::new(1_000_000_000, Duration::from_ns(0));
        let a = c.reserve(at(0), 500);
        let b = c.reserve(at(0), 500);
        assert_eq!(a.depart, at(500));
        assert_eq!(b.start, at(500));
        assert_eq!(b.depart, at(1000));
    }

    #[test]
    fn idle_gap_is_not_occupancy() {
        let mut c = Channel::new(1_000_000_000, Duration::from_ns(0));
        c.reserve(at(0), 100);
        let late = c.reserve(at(10_000), 100);
        assert_eq!(late.start, at(10_000));
        assert_eq!(c.busy_time(), Duration::from_ns(200));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Channel::new(2_000_000_000, Duration::from_ns(5));
        c.reserve(at(0), 4096);
        c.reserve(at(0), 4096);
        assert_eq!(c.bytes_moved(), 8192);
        assert_eq!(c.transfers(), 2);
        assert!(c.busy_time() > Duration::ZERO);
        c.reset();
        assert_eq!(c.bytes_moved(), 0);
        assert_eq!(c.transfers(), 0);
        assert_eq!(c.next_free(), Time::ZERO);
    }

    #[test]
    fn accessors_report_configuration() {
        let c = Channel::new(42, Duration::from_ns(7));
        assert_eq!(c.bytes_per_sec(), 42);
        assert_eq!(c.latency(), Duration::from_ns(7));
        assert_eq!(c.control_latency(), Duration::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Channel::new(0, Duration::ZERO);
    }

    #[test]
    fn snapshot_round_trips_occupancy_and_stats() {
        let mut c = Channel::new(1_000_000_000, Duration::from_ns(5));
        c.reserve(at(0), 4096);
        c.reserve(at(100), 128);
        let mut w = ByteWriter::new();
        c.snapshot(&mut w);

        let mut fresh = Channel::new(1_000_000_000, Duration::from_ns(5));
        let buf = w.into_vec();
        let mut r = ByteReader::new("channel", &buf);
        fresh.restore(&mut r).expect("valid channel state");
        assert_eq!(fresh.next_free(), c.next_free());
        assert_eq!(fresh.busy_time(), c.busy_time());
        assert_eq!(fresh.bytes_moved(), c.bytes_moved());
        assert_eq!(fresh.transfers(), c.transfers());
        // The restored link queues new transfers exactly like the original.
        let a = c.reserve(at(200), 64);
        let b = fresh.reserve(at(200), 64);
        assert_eq!(a, b);
    }
}
