//! Deterministic event queue.
//!
//! Events are delivered in nondecreasing time order; ties are broken by
//! insertion order (FIFO), which keeps simulations bit-for-bit reproducible
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use crate::time::Time;

/// A scheduled event carrying an arbitrary payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub time: Time,
    /// Monotonic sequence number assigned at insertion (tie-breaker).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: T,
}

struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event surfaces.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Example
///
/// ```
/// use oasis_engine::{Duration, EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::ZERO + Duration::from_ns(1), 'b');
/// q.push(Time::ZERO + Duration::from_ns(1), 'c');
/// q.push(Time::ZERO, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    now: Time,
}

impl<T: std::fmt::Debug> std::fmt::Debug for HeapEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue positioned at `Time::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics.
    pub fn push(&mut self, time: Time, payload: T) {
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time} < {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { time, seq, payload }));
    }

    /// Removes and returns the earliest event, advancing the queue's notion
    /// of "now" to its timestamp.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?.0;
        self.now = ev.time;
        Some(ev)
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Checkpoints the queue *cursor* (current time and next sequence number).
///
/// Payloads are caller-defined and not serializable in general, so queues
/// may only be checkpointed when drained — which is how the simulator uses
/// them: segment-local queues empty out before every epoch boundary, the
/// only points where checkpoints are taken.
impl<T> Snapshot for EventQueue<T> {
    fn snapshot(&self, w: &mut ByteWriter) {
        debug_assert!(
            self.heap.is_empty(),
            "checkpointed an event queue with {} in-flight events",
            self.heap.len()
        );
        w.u64(self.now.as_ps());
        w.u64(self.next_seq);
    }
}

impl<T> Restore for EventQueue<T> {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if !self.heap.is_empty() {
            return Err(r.malformed("restore target queue has pending events"));
        }
        self.now = Time::from_ps(r.u64()?);
        self.next_seq = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn at(ns: u64) -> Time {
        Time::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.push(at(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), at(7));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(at(3), 'x');
        assert_eq!(q.peek_time(), Some(at(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled an event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(at(10), ());
        q.pop();
        q.push(at(5), ());
    }

    #[test]
    fn cursor_snapshot_round_trips() {
        let mut q = EventQueue::new();
        q.push(at(10), 'a');
        q.push(at(20), 'b');
        q.pop();
        q.pop();
        let mut w = ByteWriter::new();
        q.snapshot(&mut w);

        let mut fresh: EventQueue<char> = EventQueue::new();
        let buf = w.into_vec();
        let mut r = ByteReader::new("queue", &buf);
        fresh.restore(&mut r).expect("valid cursor");
        assert_eq!(fresh.now(), at(20));
        // A past-scheduling bug after resume would panic in debug builds;
        // scheduling at or after the restored `now` is fine.
        fresh.push(at(20), 'c');
        assert_eq!(fresh.pop().unwrap().seq, 2);
    }

    #[test]
    fn restore_into_nonempty_queue_is_rejected() {
        let mut q = EventQueue::new();
        q.push(at(10), ());
        q.pop();
        let mut w = ByteWriter::new();
        q.snapshot(&mut w);
        let buf = w.into_vec();
        let mut busy = EventQueue::new();
        busy.push(at(1), ());
        let mut r = ByteReader::new("queue", &buf);
        assert!(busy.restore(&mut r).is_err());
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let mut q = EventQueue::new();
        q.push(at(1), 1);
        q.push(at(4), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(at(2), 2);
        q.push(at(4), 5);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 4);
        assert_eq!(q.pop().unwrap().payload, 5);
    }
}
