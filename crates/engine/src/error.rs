//! Typed error taxonomy for the whole simulator.
//!
//! Every layer of the stack reports failures through [`SimError`] rather than
//! aborting the process: the memory subsystem raises [`TableError`]s, the UVM
//! driver raises [`FaultError`]/[`MigrationError`]/[`EvictionError`]s, trace
//! loading raises [`TraceError`]s, and the sim-guard invariant checker raises
//! [`InvariantViolation`]s. The taxonomy lives in the engine crate — the one
//! crate everything else depends on — so variants carry primitive payloads
//! (raw VPNs, GPU indices) instead of higher-layer types.
//!
//! At the driver boundary an [`ErrorPolicy`] decides what a failure does to
//! the run: `FailFast` propagates it (the right mode for tests and
//! debugging), `RecordAndContinue` logs it and keeps simulating (the right
//! mode for long batch runs where one malformed access should not burn the
//! whole experiment).

use std::fmt;

/// Shorthand for a fallible simulator operation.
pub type SimResult<T> = Result<T, SimError>;

/// What the simulation boundary does when a [`SimError`] surfaces mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Abort the run and return the error to the caller. Default; the mode
    /// tests and fault-injection campaigns want.
    #[default]
    FailFast,
    /// Record the error (counted, first few kept verbatim), skip the
    /// offending access, and keep simulating.
    RecordAndContinue,
}

/// Top-level simulator error: one variant per layer of the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Page-fault handling failed.
    Fault(FaultError),
    /// A migration / duplication / collapse mechanic failed.
    Migration(MigrationError),
    /// Oversubscription eviction failed.
    Eviction(EvictionError),
    /// A page-table or O-Table operation failed.
    Table(TableError),
    /// The input trace is malformed.
    Trace(TraceError),
    /// The sim-guard runtime invariant checker found divergent state.
    Invariant(InvariantViolation),
    /// A checkpoint could not be written or read back.
    Codec(crate::codec::CodecError),
    /// The determinism auditor found a resumed/replayed run whose per-epoch
    /// state digest departed from the reference run.
    Divergence {
        /// First epoch whose digest differs.
        epoch: u64,
        /// Digest the reference run recorded for that epoch.
        expected: u64,
        /// Digest the audited run produced.
        got: u64,
    },
    /// The progress watchdog saw no retired trace step and no page-state
    /// transition for a full window and aborted the run.
    Stalled {
        /// Global step count when the stall was declared.
        step: u64,
        /// The configured no-progress window (in processed events).
        window: u64,
    },
    /// An artifact write or read failed at the OS boundary (EIO, ENOSPC,
    /// a failing fsync, ...). Carries the operation that failed — a
    /// failpoint site name when injected, an artifact role otherwise — so
    /// a storage failure is attributable without a backtrace.
    Io {
        /// What was being done (e.g. `"fsio.rename"`, `"bench-table"`).
        op: String,
        /// The stringified OS error.
        detail: String,
    },
    /// The hardware-fault layer exhausted its recovery budget: a page lost
    /// to ECC poisoning could not be re-serviced within the bounded
    /// retry/backoff budget (e.g. every frame on the GPU is quarantined).
    HardwareExhausted {
        /// The GPU whose page could not be recovered.
        gpu: u8,
        /// The virtual page being re-serviced.
        vpn: u64,
        /// How many re-service attempts were made before giving up.
        retries: u32,
    },
}

/// Errors raised while servicing a page fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A GPU faulted on a page the host driver has no registration for
    /// (e.g. a trace touching freed or never-allocated memory).
    UnregisteredPage {
        /// Faulting virtual page number.
        vpn: u64,
        /// Faulting GPU index.
        gpu: u8,
    },
    /// Repeated fault-and-retry on one access never produced a valid
    /// translation.
    Unresolvable {
        /// Faulting virtual page number.
        vpn: u64,
        /// Faulting GPU index.
        gpu: u8,
        /// How many service rounds were attempted.
        rounds: u32,
    },
    /// A fault named a GPU outside the system.
    NoSuchGpu {
        /// The out-of-range GPU index.
        gpu: u8,
        /// Number of GPUs actually present.
        gpu_count: usize,
    },
}

/// Errors raised by the migration / duplication / collapse mechanics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The host-table entry for a page vanished mid-mechanic.
    SourceMissing {
        /// The page being moved.
        vpn: u64,
    },
    /// A mechanic needed the page resident on a specific GPU but the local
    /// page table disagrees.
    ResidencyMismatch {
        /// The page in question.
        vpn: u64,
        /// The GPU expected to hold it.
        gpu: u8,
    },
}

/// Errors raised by oversubscription eviction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionError {
    /// The LRU victim chosen by the frame allocator has no host-table
    /// registration — allocator and host table have diverged.
    VictimUnregistered {
        /// The victim page.
        vpn: u64,
        /// The GPU evicting it.
        gpu: u8,
    },
}

/// Errors raised by page-table / O-Table bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// `register` called twice for the same page (overlapping allocations).
    DoubleRegistration {
        /// The page registered twice.
        vpn: u64,
    },
    /// A lookup expected an entry that is not there.
    MissingEntry {
        /// The missing page.
        vpn: u64,
    },
}

/// Errors raised while loading or replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An access named an object id that was never allocated.
    UnknownObject {
        /// The unknown object id.
        object: u16,
    },
    /// An access offset falls outside its object.
    OffsetOutOfRange {
        /// The object accessed.
        object: u16,
        /// The out-of-range byte offset.
        offset: u64,
        /// The object's size in bytes.
        size: u64,
    },
    /// An access named a GPU outside the configured system.
    GpuOutOfRange {
        /// The out-of-range GPU index.
        gpu: usize,
        /// Number of GPUs configured.
        gpu_count: usize,
    },
}

/// A failed sim-guard check: which invariant, and what state broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Short name of the invariant (e.g. `"owner-holds-frame"`).
    pub check: &'static str,
    /// Human-readable description of the divergent state.
    pub detail: String,
}

impl SimError {
    /// Convenience constructor for an invariant violation.
    pub fn invariant(check: &'static str, detail: impl Into<String>) -> Self {
        SimError::Invariant(InvariantViolation {
            check,
            detail: detail.into(),
        })
    }

    /// Convenience constructor for a storage-layer failure.
    pub fn io(op: impl Into<String>, err: impl fmt::Display) -> Self {
        SimError::Io {
            op: op.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault(e) => write!(f, "fault error: {e}"),
            SimError::Migration(e) => write!(f, "migration error: {e}"),
            SimError::Eviction(e) => write!(f, "eviction error: {e}"),
            SimError::Table(e) => write!(f, "table error: {e}"),
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Invariant(v) => write!(f, "invariant violated: {v}"),
            SimError::Codec(e) => write!(f, "checkpoint error: {e}"),
            SimError::Divergence {
                epoch,
                expected,
                got,
            } => write!(
                f,
                "determinism divergence at epoch {epoch}: expected digest {expected:#018x}, got {got:#018x}"
            ),
            SimError::Io { op, detail } => write!(f, "i/o error during {op}: {detail}"),
            SimError::Stalled { step, window } => write!(
                f,
                "watchdog: no forward progress within a {window}-event window at step {step}"
            ),
            SimError::HardwareExhausted { gpu, vpn, retries } => write!(
                f,
                "hardware: page {vpn:#x} on GPU {gpu} unrecoverable after {retries} re-service retries"
            ),
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnregisteredPage { vpn, gpu } => {
                write!(f, "GPU {gpu} faulted on unregistered page {vpn:#x}")
            }
            FaultError::Unresolvable { vpn, gpu, rounds } => write!(
                f,
                "GPU {gpu} fault on page {vpn:#x} unresolved after {rounds} rounds"
            ),
            FaultError::NoSuchGpu { gpu, gpu_count } => {
                write!(f, "fault names GPU {gpu} but only {gpu_count} exist")
            }
        }
    }
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::SourceMissing { vpn } => {
                write!(f, "page {vpn:#x} disappeared from the host table mid-move")
            }
            MigrationError::ResidencyMismatch { vpn, gpu } => {
                write!(f, "page {vpn:#x} not resident on GPU {gpu} as required")
            }
        }
    }
}

impl fmt::Display for EvictionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictionError::VictimUnregistered { vpn, gpu } => write!(
                f,
                "eviction victim {vpn:#x} on GPU {gpu} has no host-table entry"
            ),
        }
    }
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DoubleRegistration { vpn } => {
                write!(f, "page {vpn:#x} registered twice")
            }
            TableError::MissingEntry { vpn } => {
                write!(f, "no host-table entry for page {vpn:#x}")
            }
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownObject { object } => {
                write!(f, "access names unallocated object {object}")
            }
            TraceError::OffsetOutOfRange {
                object,
                offset,
                size,
            } => write!(f, "offset {offset} outside object {object} of {size} bytes"),
            TraceError::GpuOutOfRange { gpu, gpu_count } => {
                write!(f, "access names GPU {gpu} but only {gpu_count} configured")
            }
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for SimError {}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}
impl From<MigrationError> for SimError {
    fn from(e: MigrationError) -> Self {
        SimError::Migration(e)
    }
}
impl From<EvictionError> for SimError {
    fn from(e: EvictionError) -> Self {
        SimError::Eviction(e)
    }
}
impl From<TableError> for SimError {
    fn from(e: TableError) -> Self {
        SimError::Table(e)
    }
}
impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}
impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> Self {
        SimError::Invariant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_layer() {
        let e = SimError::from(FaultError::UnregisteredPage { vpn: 0x42, gpu: 1 });
        let s = e.to_string();
        assert!(s.contains("fault error"), "{s}");
        assert!(s.contains("0x42"), "{s}");

        let e = SimError::from(TableError::DoubleRegistration { vpn: 7 });
        assert!(e.to_string().contains("registered twice"));

        let e = SimError::invariant("owner-holds-frame", "page 0x9 owner GPU 2 frame absent");
        assert!(e.to_string().contains("owner-holds-frame"));

        let e = SimError::Divergence {
            epoch: 3,
            expected: 0xAA,
            got: 0xBB,
        };
        let s = e.to_string();
        assert!(s.contains("divergence"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");

        let e = SimError::Stalled {
            step: 120,
            window: 64,
        };
        let s = e.to_string();
        assert!(s.contains("watchdog"), "{s}");
        assert!(s.contains("step 120"), "{s}");

        let e = SimError::Codec(crate::codec::CodecError::BadMagic);
        assert!(e.to_string().contains("checkpoint error"));

        let e = SimError::io("fsio.rename", "injected rename failure");
        let s = e.to_string();
        assert!(s.contains("fsio.rename"), "{s}");
        assert!(s.contains("injected rename failure"), "{s}");

        let e = SimError::HardwareExhausted {
            gpu: 2,
            vpn: 0x77,
            retries: 4,
        };
        let s = e.to_string();
        assert!(s.contains("hardware"), "{s}");
        assert!(s.contains("0x77"), "{s}");
        assert!(s.contains("4 re-service retries"), "{s}");
    }

    #[test]
    fn error_policy_defaults_to_fail_fast() {
        assert_eq!(ErrorPolicy::default(), ErrorPolicy::FailFast);
    }
}
