//! Crash-safe write-ahead sweep journal.
//!
//! A parallel sweep (fuzz, inject, verify-replay) is hours of work that a
//! single SIGKILL used to erase. The journal makes sweep progress durable:
//! the pool supervisor writes one [`Dispatched`](JournalRecord::Dispatched)
//! record per attempt *before* outcomes land and one
//! [`Adjudicated`](JournalRecord::Adjudicated) record per final outcome,
//! each append fsync'd, so a resumed sweep can skip every job that already
//! has an adjudicated outcome and re-dispatch only unfinished work.
//!
//! The format reuses the checkpoint codec's discipline — magic + version
//! header, little-endian primitives, FNV-1a 64 integrity — but is
//! append-only, with a per-record checksum instead of one trailer:
//!
//! ```text
//! +----------+---------+----------------------------------------+
//! | magic 8B | ver u32 | records ...                            |
//! +----------+---------+----------------------------------------+
//!
//! record := kind:u8 | payload_len:u32 | payload | fnv1a:u64
//! ```
//!
//! The checksum covers `kind`, `payload_len`, and `payload`, so a torn
//! append (kill mid-write) or a flipped byte is detected exactly at the
//! record where it happened. Recovery ([`recover`]) salvages the longest
//! valid prefix: a corrupt or truncated tail becomes a typed
//! [`TailSalvage`] warning, never an abort — everything adjudicated before
//! the damage is still skipped on resume.
//!
//! Record kinds:
//!
//! * `Begin` — first record; carries a caller-computed `tag` hashing the
//!   sweep parameters (seed, case count, ...) so a resume with different
//!   parameters is rejected with [`JournalError::TagMismatch`] instead of
//!   silently merging incompatible sweeps, plus a human-readable label.
//! * `Dispatched` — an attempt was handed to the pool (intent, written
//!   before the work runs).
//! * `Adjudicated` — the supervisor's final outcome for a job, with an
//!   opaque caller payload (the fuzzer stores the encoded oracle verdict,
//!   the injector the outcome line, ...).
//! * `Interrupted` — clean-drain trailer written when a sweep stops on
//!   SIGINT/SIGTERM; marks the journal as deliberately incomplete.
//! * `Enqueued` — a job was *admitted* with an opaque payload describing
//!   the work itself (the sweep server stores the scenario wire line).
//!   Written before the job is queued, so a killed server can rebuild its
//!   pending queue on restart: pending = enqueued − adjudicated.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{fnv1a, ByteReader, ByteWriter};
use crate::failpoint;
use crate::fsio::atomic_write;
use crate::pool::JobOutcome;

/// File magic: identifies an OASIS sweep journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"OASISJNL";

/// Current journal format version; readers reject other versions with
/// [`JournalError::UnsupportedVersion`].
pub const JOURNAL_VERSION: u32 = 1;

const KIND_BEGIN: u8 = 0;
const KIND_DISPATCHED: u8 = 1;
const KIND_ADJUDICATED: u8 = 2;
const KIND_INTERRUPTED: u8 = 3;
const KIND_ENQUEUED: u8 = 4;

/// kind (1) + payload_len (4).
const RECORD_HEADER_LEN: usize = 5;
/// magic (8) + version (4).
const FILE_HEADER_LEN: usize = 12;

/// A typed journal failure. Tail corruption is *not* here — it is
/// reported as a [`TailSalvage`] inside a successful [`Recovery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The journal file exists but holds zero bytes (killed before the
    /// header landed, or never a journal at all).
    Empty,
    /// The file does not start with the OASIS journal magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The file ended inside the fixed header.
    TruncatedHeader {
        /// Bytes a journal header needs.
        needed: usize,
        /// Bytes actually present.
        available: usize,
    },
    /// The first record is not a valid `Begin`, so the sweep parameters
    /// cannot be verified and nothing can be safely resumed.
    MissingBegin,
    /// The journal's `Begin` tag does not match the sweep being resumed —
    /// the journal belongs to a sweep with different parameters.
    TagMismatch {
        /// Tag the resuming sweep computed from its parameters.
        expected: u64,
        /// Tag stored in the journal.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o failed: {e}"),
            JournalError::Empty => write!(f, "journal file is empty"),
            JournalError::BadMagic => write!(f, "not an OASIS sweep journal (bad magic)"),
            JournalError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported journal format version {found} (this build reads {expected})"
            ),
            JournalError::TruncatedHeader { needed, available } => write!(
                f,
                "journal truncated inside the header: needed {needed} bytes, {available} present"
            ),
            JournalError::MissingBegin => {
                write!(f, "journal has no valid Begin record; nothing to resume")
            }
            JournalError::TagMismatch { expected, found } => write!(
                f,
                "journal belongs to a different sweep: resume computed tag {expected:#018x}, \
                 journal says {found:#018x} (same seed/cases/flags required)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// The supervisor's final verdict for a job, as stored in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjudicatedOutcome {
    /// The job completed and its payload encodes the result.
    Completed,
    /// Every attempt returned a typed failure.
    Failed,
    /// The final attempt crashed or wedged its worker.
    Quarantined,
}

impl AdjudicatedOutcome {
    /// The journal verdict for a pool outcome.
    pub fn of<T>(outcome: &JobOutcome<T>) -> Self {
        match outcome {
            JobOutcome::Completed(_) => AdjudicatedOutcome::Completed,
            JobOutcome::Failed(_) => AdjudicatedOutcome::Failed,
            JobOutcome::Quarantined(_) => AdjudicatedOutcome::Quarantined,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            AdjudicatedOutcome::Completed => 0,
            AdjudicatedOutcome::Failed => 1,
            AdjudicatedOutcome::Quarantined => 2,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(AdjudicatedOutcome::Completed),
            1 => Some(AdjudicatedOutcome::Failed),
            2 => Some(AdjudicatedOutcome::Quarantined),
            _ => None,
        }
    }

    /// Stable short tag (`completed` / `failed` / `quarantined`).
    pub fn kind(&self) -> &'static str {
        match self {
            AdjudicatedOutcome::Completed => "completed",
            AdjudicatedOutcome::Failed => "failed",
            AdjudicatedOutcome::Quarantined => "quarantined",
        }
    }
}

/// One decoded journal record, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Sweep identity: parameter tag + human-readable label.
    Begin {
        /// Caller-computed hash of the sweep parameters.
        tag: u64,
        /// Human-readable sweep description.
        label: String,
    },
    /// An attempt was enqueued for a job.
    Dispatched {
        /// Sweep-level job id (the caller's stable index, not the pool's).
        job_id: u64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The supervisor finalized a job.
    Adjudicated {
        /// Sweep-level job id.
        job_id: u64,
        /// Final verdict.
        outcome: AdjudicatedOutcome,
        /// Attempts consumed.
        attempts: u32,
        /// Opaque caller payload (the encoded result).
        payload: Vec<u8>,
    },
    /// Clean-drain trailer: the sweep stopped deliberately (signal).
    Interrupted {
        /// Jobs adjudicated before the drain.
        adjudicated: u64,
    },
    /// A job was admitted into a durable queue (written ahead of the
    /// work). Older readers stop their salvage scan at the first record
    /// of this kind — acceptable, since only queue-persisting sweeps
    /// (the serve subsystem) write it.
    Enqueued {
        /// Sweep-level job id (the caller's stable index).
        job_id: u64,
        /// Opaque caller payload describing the job (the serve subsystem
        /// stores the canonical scenario wire line).
        payload: Vec<u8>,
    },
}

/// A job's journaled final state, keyed off the `Adjudicated` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjudication {
    /// Final verdict.
    pub outcome: AdjudicatedOutcome,
    /// Attempts consumed.
    pub attempts: u32,
    /// Opaque caller payload (the encoded result).
    pub payload: Vec<u8>,
}

/// Typed warning describing a corrupt or truncated journal tail that
/// recovery dropped while salvaging the longest valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailSalvage {
    /// Valid records kept.
    pub records_kept: usize,
    /// File offset where the valid prefix ends.
    pub valid_bytes: u64,
    /// Bytes dropped after the valid prefix.
    pub dropped_bytes: u64,
    /// What stopped the scan (truncation, checksum mismatch, bad tag...).
    pub reason: String,
}

impl fmt::Display for TailSalvage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "salvaged {} journal record(s) ({} bytes); dropped {} trailing byte(s): {}",
            self.records_kept, self.valid_bytes, self.dropped_bytes, self.reason
        )
    }
}

/// Everything recovery learned from a journal.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Sweep parameter tag from the `Begin` record.
    pub tag: u64,
    /// Human-readable sweep label from the `Begin` record.
    pub label: String,
    /// Every valid record, in file order (`Begin` included).
    pub events: Vec<JournalRecord>,
    /// Final outcome per job id; the *first* `Adjudicated` record wins so
    /// replayed or duplicated appends can never rewrite history.
    pub adjudicated: BTreeMap<u64, Adjudication>,
    /// Job ids that appeared in more than one `Adjudicated` record
    /// (first kept, rest ignored with this warning).
    pub duplicate_adjudications: Vec<u64>,
    /// Admitted-job payload per job id from `Enqueued` records; the
    /// *first* record per id wins, mirroring the adjudication rule.
    /// Empty for sweeps that never persist their queue.
    pub enqueued: BTreeMap<u64, Vec<u8>>,
    /// Job ids that appeared in more than one `Enqueued` record (first
    /// kept, rest ignored with this warning).
    pub duplicate_enqueues: Vec<u64>,
    /// Whether the last valid record is a clean `Interrupted` trailer.
    pub interrupted: bool,
    /// Present when a corrupt/truncated tail was dropped.
    pub salvage: Option<TailSalvage>,
    /// File offset where the valid prefix ends (header included).
    pub valid_bytes: u64,
}

impl Recovery {
    /// Human-readable warnings accumulated during recovery (tail salvage,
    /// duplicate adjudications). Empty for a pristine journal.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(s) = &self.salvage {
            out.push(format!("journal tail salvaged: {s}"));
        }
        if !self.duplicate_adjudications.is_empty() {
            out.push(format!(
                "journal holds duplicate Adjudicated records for job(s) {:?}; first kept",
                self.duplicate_adjudications
            ));
        }
        if !self.duplicate_enqueues.is_empty() {
            out.push(format!(
                "journal holds duplicate Enqueued records for job(s) {:?}; first kept",
                self.duplicate_enqueues
            ));
        }
        out
    }

    /// The durable queue a restarted server must finish: every `Enqueued`
    /// job without an `Adjudicated` verdict, in job-id order.
    pub fn pending(&self) -> BTreeMap<u64, &[u8]> {
        self.enqueued
            .iter()
            .filter(|(id, _)| !self.adjudicated.contains_key(id))
            .map(|(&id, payload)| (id, payload.as_slice()))
            .collect()
    }

    /// Retried attempts recorded across adjudicated jobs (Σ attempts − 1).
    pub fn recorded_retries(&self) -> u64 {
        self.adjudicated
            .values()
            .map(|a| u64::from(a.attempts.saturating_sub(1)))
            .sum()
    }
}

fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("journal record payload exceeds 4 GiB");
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + 8);
    buf.push(kind);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_payload(kind: u8, payload: &[u8]) -> Option<JournalRecord> {
    let mut r = ByteReader::new("journal-record", payload);
    let rec = match kind {
        KIND_BEGIN => JournalRecord::Begin {
            tag: r.u64().ok()?,
            label: r.str().ok()?,
        },
        KIND_DISPATCHED => JournalRecord::Dispatched {
            job_id: r.u64().ok()?,
            attempt: r.u32().ok()?,
        },
        KIND_ADJUDICATED => {
            let job_id = r.u64().ok()?;
            let outcome = AdjudicatedOutcome::from_u8(r.u8().ok()?)?;
            let attempts = r.u32().ok()?;
            let mut payload_rest = Vec::with_capacity(r.remaining());
            while !r.is_empty() {
                payload_rest.push(r.u8().ok()?);
            }
            JournalRecord::Adjudicated {
                job_id,
                outcome,
                attempts,
                payload: payload_rest,
            }
        }
        KIND_INTERRUPTED => JournalRecord::Interrupted {
            adjudicated: r.u64().ok()?,
        },
        KIND_ENQUEUED => {
            let job_id = r.u64().ok()?;
            let mut payload_rest = Vec::with_capacity(r.remaining());
            while !r.is_empty() {
                payload_rest.push(r.u8().ok()?);
            }
            JournalRecord::Enqueued {
                job_id,
                payload: payload_rest,
            }
        }
        _ => return None,
    };
    if kind != KIND_ADJUDICATED && kind != KIND_ENQUEUED && !r.is_empty() {
        return None; // trailing garbage inside a checksummed record
    }
    Some(rec)
}

/// Replays the journal at `path`, salvaging the longest valid prefix.
///
/// Fails only when nothing at all is usable (missing/empty file, foreign
/// magic, unreadable version, no `Begin`). Tail damage — truncation from a
/// kill mid-append, a flipped byte, an unknown record kind — ends the scan
/// at the last intact record and is reported as [`Recovery::salvage`].
pub fn recover(path: &Path) -> Result<Recovery, JournalError> {
    let bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(JournalError::Empty);
    }
    if bytes.len() < FILE_HEADER_LEN {
        return Err(JournalError::TruncatedHeader {
            needed: FILE_HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion {
            found: version,
            expected: JOURNAL_VERSION,
        });
    }

    let mut events: Vec<JournalRecord> = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    let mut stop_reason: Option<String> = None;
    while pos < bytes.len() {
        let avail = bytes.len() - pos;
        if avail < RECORD_HEADER_LEN {
            stop_reason = Some(format!(
                "truncated record header at offset {pos}: needed {RECORD_HEADER_LEN} bytes, \
                 {avail} present"
            ));
            break;
        }
        let kind = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 length bytes"))
            as usize;
        let total = RECORD_HEADER_LEN + len + 8;
        if avail < total {
            stop_reason = Some(format!(
                "truncated record at offset {pos}: needed {total} bytes, {avail} present"
            ));
            break;
        }
        let body = &bytes[pos..pos + RECORD_HEADER_LEN + len];
        let stored = u64::from_le_bytes(
            bytes[pos + total - 8..pos + total]
                .try_into()
                .expect("8 bytes"),
        );
        let computed = fnv1a(body);
        if stored != computed {
            stop_reason = Some(format!(
                "checksum mismatch in record {} at offset {pos}: computed {computed:#018x}, \
                 stored {stored:#018x}",
                events.len()
            ));
            break;
        }
        let Some(rec) = decode_payload(kind, &body[RECORD_HEADER_LEN..]) else {
            stop_reason = Some(format!(
                "unrecognized or malformed record kind {kind} at offset {pos}"
            ));
            break;
        };
        // A Begin anywhere but first means two sweeps were interleaved
        // into one file; trust only the first sweep's prefix.
        if matches!(rec, JournalRecord::Begin { .. }) && !events.is_empty() {
            stop_reason = Some(format!(
                "second Begin record at offset {pos}: journal was reused for another sweep"
            ));
            break;
        }
        events.push(rec);
        pos += total;
    }

    let Some(JournalRecord::Begin { tag, label }) = events.first().cloned() else {
        return Err(JournalError::MissingBegin);
    };

    let mut adjudicated: BTreeMap<u64, Adjudication> = BTreeMap::new();
    let mut duplicates: Vec<u64> = Vec::new();
    let mut enqueued: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut duplicate_enqueues: Vec<u64> = Vec::new();
    for rec in &events {
        match rec {
            JournalRecord::Adjudicated {
                job_id,
                outcome,
                attempts,
                payload,
            } => {
                if adjudicated.contains_key(job_id) {
                    if !duplicates.contains(job_id) {
                        duplicates.push(*job_id);
                    }
                } else {
                    adjudicated.insert(
                        *job_id,
                        Adjudication {
                            outcome: *outcome,
                            attempts: *attempts,
                            payload: payload.clone(),
                        },
                    );
                }
            }
            JournalRecord::Enqueued { job_id, payload } => {
                if enqueued.contains_key(job_id) {
                    if !duplicate_enqueues.contains(job_id) {
                        duplicate_enqueues.push(*job_id);
                    }
                } else {
                    enqueued.insert(*job_id, payload.clone());
                }
            }
            _ => {}
        }
    }

    let salvage = stop_reason.map(|reason| TailSalvage {
        records_kept: events.len(),
        valid_bytes: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
        reason,
    });
    let interrupted = matches!(events.last(), Some(JournalRecord::Interrupted { .. }));
    Ok(Recovery {
        tag,
        label,
        events,
        adjudicated,
        duplicate_adjudications: duplicates,
        enqueued,
        duplicate_enqueues,
        interrupted,
        salvage,
        valid_bytes: pos as u64,
    })
}

/// Appends fsync'd records to a sweep journal.
///
/// Every append is `write_all` + `sync_data`, so a record either made it
/// to disk whole or the recovery scan drops it as a torn tail — there is
/// no in-between the reader can misinterpret.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Starts a fresh journal at `path` for a sweep identified by `tag`,
    /// replacing any previous file. The header and `Begin` record land
    /// atomically (staged write + rename), so the file on disk is never a
    /// torn header: it either does not exist or opens cleanly.
    pub fn create(path: &Path, tag: u64, label: &str) -> Result<JournalWriter, JournalError> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&JOURNAL_MAGIC);
        buf.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        let mut payload = ByteWriter::new();
        payload.u64(tag);
        payload.str(label);
        buf.extend_from_slice(&encode_record(KIND_BEGIN, payload.as_slice()));
        failpoint::on_io("journal.begin", path)?;
        atomic_write(path, &buf)?;
        let file = OpenOptions::new().append(true).open(path)?;
        file.sync_data()?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens the journal at `path` for a resumed sweep: recovers it,
    /// verifies `expected_tag`, truncates any salvaged tail so appends
    /// start at a clean record boundary, and returns the recovery
    /// alongside the writer.
    pub fn resume(
        path: &Path,
        expected_tag: u64,
    ) -> Result<(JournalWriter, Recovery), JournalError> {
        let recovery = recover(path)?;
        if recovery.tag != expected_tag {
            return Err(JournalError::TagMismatch {
                expected: expected_tag,
                found: recovery.tag,
            });
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(recovery.valid_bytes)?;
        file.sync_data()?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            JournalWriter {
                file,
                path: path.to_path_buf(),
            },
            recovery,
        ))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), JournalError> {
        let rec = encode_record(kind, payload);
        match failpoint::on_write("journal.append.write", &self.path, rec.len()) {
            failpoint::WriteFault::Clear => {}
            failpoint::WriteFault::Fail(e) => return Err(e.into()),
            failpoint::WriteFault::Torn { cut, error } => {
                // Persist the truncated record for real — this is exactly
                // the torn tail the recovery scan must salvage around.
                self.file.write_all(&rec[..cut])?;
                let _ = self.file.sync_data();
                return Err(error.into());
            }
        }
        self.file.write_all(&rec)?;
        failpoint::on_io("journal.append.fsync", &self.path)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Journals an attempt dispatch (intent, before the work runs).
    pub fn dispatched(&mut self, job_id: u64, attempt: u32) -> Result<(), JournalError> {
        let mut w = ByteWriter::new();
        w.u64(job_id);
        w.u32(attempt);
        self.append(KIND_DISPATCHED, w.as_slice())
    }

    /// Journals a job's final outcome with an opaque caller payload.
    pub fn adjudicated(
        &mut self,
        job_id: u64,
        outcome: AdjudicatedOutcome,
        attempts: u32,
        payload: &[u8],
    ) -> Result<(), JournalError> {
        let mut w = ByteWriter::new();
        w.u64(job_id);
        w.u8(outcome.as_u8());
        w.u32(attempts);
        w.bytes(payload);
        self.append(KIND_ADJUDICATED, w.as_slice())
    }

    /// Journals the clean-drain trailer after a signal-initiated stop.
    pub fn interrupted(&mut self, adjudicated: u64) -> Result<(), JournalError> {
        let mut w = ByteWriter::new();
        w.u64(adjudicated);
        self.append(KIND_INTERRUPTED, w.as_slice())
    }

    /// Journals a job admission with an opaque payload describing the
    /// work, *before* the job enters the in-memory queue — the durable
    /// half of the serve subsystem's admission control.
    pub fn enqueued(&mut self, job_id: u64, payload: &[u8]) -> Result<(), JournalError> {
        let mut w = ByteWriter::new();
        w.u64(job_id);
        w.bytes(payload);
        self.append(KIND_ENQUEUED, w.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_round_trips_through_the_wire_byte() {
        for o in [
            AdjudicatedOutcome::Completed,
            AdjudicatedOutcome::Failed,
            AdjudicatedOutcome::Quarantined,
        ] {
            assert_eq!(AdjudicatedOutcome::from_u8(o.as_u8()), Some(o));
        }
        assert_eq!(AdjudicatedOutcome::from_u8(3), None);
    }

    #[test]
    fn errors_render_their_context() {
        let e = JournalError::TagMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("different sweep"));
        assert!(JournalError::Empty.to_string().contains("empty"));
        let e = JournalError::UnsupportedVersion {
            found: 9,
            expected: JOURNAL_VERSION,
        };
        assert!(e.to_string().contains("version 9"));
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oasis-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn enqueued_records_round_trip_and_pending_subtracts_adjudicated() {
        let path = temp_journal("enqueued-roundtrip.jnl");
        let mut w = JournalWriter::create(&path, 7, "serve test").expect("create");
        w.enqueued(0, b"job zero").expect("enq 0");
        w.enqueued(1, b"job one").expect("enq 1");
        w.enqueued(2, b"").expect("enq 2 (empty payload)");
        w.dispatched(0, 1).expect("disp");
        w.adjudicated(0, AdjudicatedOutcome::Completed, 1, b"clean")
            .expect("adj 0");
        drop(w);

        let rec = recover(&path).expect("recover");
        assert!(rec.salvage.is_none(), "{:?}", rec.salvage);
        assert_eq!(rec.enqueued.len(), 3);
        assert_eq!(rec.enqueued[&0], b"job zero");
        assert_eq!(rec.enqueued[&2], b"");
        let pending = rec.pending();
        assert_eq!(
            pending.keys().copied().collect::<Vec<_>>(),
            vec![1, 2],
            "adjudicated job 0 must not be pending"
        );
        assert_eq!(pending[&1], b"job one");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_enqueues_keep_the_first_and_warn() {
        let path = temp_journal("enqueued-dup.jnl");
        let mut w = JournalWriter::create(&path, 7, "serve test").expect("create");
        w.enqueued(5, b"original").expect("enq");
        w.enqueued(5, b"replayed").expect("enq dup");
        drop(w);
        let rec = recover(&path).expect("recover");
        assert_eq!(rec.enqueued[&5], b"original", "first enqueue wins");
        assert_eq!(rec.duplicate_enqueues, vec![5]);
        assert!(rec
            .warnings()
            .iter()
            .any(|w| w.contains("duplicate Enqueued")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_enqueued_tail_is_salvaged_not_fatal() {
        let path = temp_journal("enqueued-torn.jnl");
        let mut w = JournalWriter::create(&path, 7, "serve test").expect("create");
        w.enqueued(0, b"whole").expect("enq");
        w.enqueued(1, b"about to tear").expect("enq");
        drop(w);
        // Tear the last record mid-payload, as a SIGKILL mid-append would.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 6]).expect("tear");
        let rec = recover(&path).expect("salvage");
        let salvage = rec.salvage.clone().expect("tail salvage reported");
        assert!(salvage.reason.contains("truncated"), "{}", salvage.reason);
        assert_eq!(rec.enqueued.len(), 1, "only the whole record survives");
        assert_eq!(rec.pending().keys().copied().collect::<Vec<_>>(), vec![0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn outcome_of_maps_pool_outcomes() {
        use crate::pool::JobError;
        assert_eq!(
            AdjudicatedOutcome::of(&JobOutcome::Completed(1u64)),
            AdjudicatedOutcome::Completed
        );
        assert_eq!(
            AdjudicatedOutcome::of::<u64>(&JobOutcome::Failed(JobError::Failed("x".into()))),
            AdjudicatedOutcome::Failed
        );
        assert_eq!(
            AdjudicatedOutcome::of::<u64>(&JobOutcome::Quarantined(JobError::Panicked("x".into()))),
            AdjudicatedOutcome::Quarantined
        );
    }
}
