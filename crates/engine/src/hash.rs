//! The workspace's one FNV-1a 64 implementation.
//!
//! FNV-1a is the integrity and identity hash everywhere bytes need a
//! stable 64-bit fingerprint: checkpoint trailer checksums and per-epoch
//! state digests ([`crate::codec`]), per-record sweep-journal checksums
//! ([`crate::journal`]), sweep-identity tags (fuzz/inject/verify-replay),
//! and the sweep server's content-addressed result-cache keys. Before this
//! module the same two constants were hand-rolled at several call-sites;
//! they now live here once, pinned by reference vectors, so digests,
//! checkpoints, journals, and cache keys stay bit-identical across
//! refactors. (This is distinct from [`crate::fxhash`], the *non-stable*
//! rustc-fx hasher used only for in-memory index maps.)
//!
//! The constants are the published FNV-1a 64 parameters; changing either
//! invalidates every checkpoint, journal, golden digest fixture, and cache
//! entry ever written, so the tests below treat them as frozen.

/// FNV-1a 64-bit offset basis (the published constant).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (the published constant).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher, used both for checkpoint/journal
/// checksums and for per-epoch state digests.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published FNV-1a 64 test vectors. These pin the constants:
    /// if either `FNV_OFFSET` or `FNV_PRIME` drifts, every digest,
    /// checkpoint checksum, journal record, sweep tag, and cache key in
    /// the wild silently stops matching — so this test failing means a
    /// data-compatibility break, not a bug in the test.
    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_and_one_shot_agree_at_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = fnv1a(data);
        for split in 0..=data.len() {
            let mut h = Fnv1a::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn constants_are_frozen() {
        // Belt and braces: the vectors above imply these, but spell the
        // raw values out so a constant edit fails loudly and legibly.
        assert_eq!(FNV_OFFSET, 0xcbf2_9ce4_8422_2325);
        assert_eq!(FNV_PRIME, 0x0000_0100_0000_01b3);
    }
}
