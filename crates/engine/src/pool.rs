//! Supervised parallel sweep executor.
//!
//! Every multi-scenario workflow in the workspace — the fuzzer, the
//! fault-injection campaign, the replay audit, the bench matrix — fans a
//! set of independent simulations across cores. The unit of work here is a
//! *supervised job*, not a bare closure:
//!
//! * **Panic isolation** — each attempt runs under `catch_unwind`; a panic
//!   becomes a typed [`JobError::Panicked`] carrying the payload message,
//!   and the sweep keeps going.
//! * **Per-job deadlines** — a shared watchdog thread scans in-flight
//!   attempts; one that outlives [`PoolConfig::deadline`] is adjudicated
//!   [`JobError::TimedOut`], its cooperative cancel flag is raised (see
//!   [`JobCtx::cancelled`]), its worker is abandoned, and a replacement
//!   worker is spawned so the sweep never loses capacity. Jobs that drive a
//!   `System` should additionally set the simulator's own progress
//!   watchdog (`stall_window`) so a wedged run aborts itself from inside.
//! * **Retry with deterministic backoff** — a failed attempt is retried up
//!   to [`PoolConfig::max_attempts`] times. Backoff doubles per attempt and
//!   is *bookkeeping by default* ([`JobRecord::backoff_ms`]): sweeps stay
//!   deterministic and tests stay fast; opt into real sleeps with
//!   [`PoolConfig::sleep_on_backoff`].
//! * **Quarantine** — a job whose final attempt still crashed a worker
//!   (panic or deadline) is quarantined rather than lost: the sweep always
//!   completes and [`SweepReport::quarantined`] names the casualties.
//!
//! **Determinism.** Jobs are numbered by submission order and dispatched
//! in id order, and [`SweepReport::jobs`] is collected in id order — so
//! given deterministic job bodies, everything in the report except the
//! explicitly wall-clock fields (`wall_clock_us`, `worker`) is
//! byte-identical regardless of worker count or completion order.
//!
//! **Observability.** Each worker owns a [`MetricsRegistry`]; retired
//! workers hand theirs back and the supervisor merges them in worker-id
//! order into [`SweepReport::metrics`], so counters survive the fan-out
//! without locks on the hot path. (A worker abandoned to a hung job takes
//! its registry down with it — by design: nothing blocks on a wedge.)
//!
//! **Cooperative stop.** A sweep launched through [`run_sweep_controlled`]
//! can carry a [`StopHandle`]: once stopped (a signal handler, a server's
//! shutdown path), the supervisor drains the queue without dispatching
//! further attempts, lets in-flight attempts finish or hit their deadline,
//! and returns an *interrupted* [`SweepReport`] — adjudicated jobs in
//! [`SweepReport::jobs`], never-run ones named in [`SweepReport::halted`].
//! [`SweepControl`] also carries dispatch/adjudication observers, which is
//! how the write-ahead sweep journal ([`crate::journal`]) sees one
//! `Dispatched` record per attempt and one `Adjudicated` per outcome
//! without the pool knowing anything about files.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::MetricsRegistry;

/// Knobs for one sweep. The default is the conservative serial shape:
/// one worker, no deadline, one attempt.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// Wall-clock budget per attempt; `None` trusts jobs to finish.
    pub deadline: Option<Duration>,
    /// Attempts per job before it is given up on (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base_ms << (n-1)` milliseconds.
    pub backoff_base_ms: u64,
    /// Actually sleep the backoff before re-dispatch. Off by default:
    /// the backoff is then pure bookkeeping in [`JobRecord::backoff_ms`],
    /// which keeps sweeps deterministic and tests instant.
    pub sleep_on_backoff: bool,
    /// How often the watchdog scans in-flight attempts.
    pub watchdog_poll: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 1,
            deadline: None,
            max_attempts: 1,
            backoff_base_ms: 10,
            sleep_on_backoff: false,
            watchdog_poll: Duration::from_millis(10),
        }
    }
}

impl PoolConfig {
    /// A config with `workers` threads and everything else default.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            ..PoolConfig::default()
        }
    }
}

/// A clonable cooperative stop flag for one sweep. Any holder may call
/// [`StopHandle::stop`] (idempotent); the supervisor notices within one
/// poll interval and begins draining. Attempts already running are *not*
/// cancelled — they finish normally or hit the per-job deadline.
#[derive(Debug, Clone, Default)]
pub struct StopHandle {
    flag: Arc<AtomicBool>,
}

impl StopHandle {
    /// A fresh, un-stopped handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the sweep stop dispatching new attempts. Idempotent.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Observer invoked as `(job_id, attempt)` when an attempt is committed
/// for dispatch.
pub type DispatchObserver<'cb> = &'cb mut dyn FnMut(u64, u32);

/// Observer invoked with the final [`JobRecord`] when a job is
/// adjudicated.
pub type AdjudicationObserver<'cb, T> = &'cb mut dyn FnMut(&JobRecord<T>);

/// Per-sweep control surface beyond [`PoolConfig`]: an optional stop
/// handle plus observer hooks the supervisor invokes at its two decision
/// points. Both hooks run on the supervisor thread, so observers need no
/// synchronization and their call order is the adjudication order.
pub struct SweepControl<'cb, T> {
    /// Cooperative stop flag; `None` means the sweep runs to completion.
    pub stop: Option<StopHandle>,
    /// Called with `(job_id, attempt)` when an attempt is committed for
    /// dispatch — every initial fan-out entry and every retry, *before*
    /// the attempt can run.
    pub on_dispatch: Option<DispatchObserver<'cb>>,
    /// Called with the final [`JobRecord`] the moment a job is
    /// adjudicated (completed, failed, or quarantined).
    pub on_adjudicated: Option<AdjudicationObserver<'cb, T>>,
}

impl<T> Default for SweepControl<'_, T> {
    fn default() -> Self {
        SweepControl {
            stop: None,
            on_dispatch: None,
            on_adjudicated: None,
        }
    }
}

/// Why a job attempt (or the whole job) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The attempt panicked; the payload message is preserved.
    Panicked(String),
    /// The attempt outlived the per-job deadline and was abandoned.
    TimedOut {
        /// The deadline that fired, in milliseconds.
        deadline_ms: u64,
    },
    /// The job body returned a typed failure.
    Failed(String),
}

impl JobError {
    /// Stable short tag (`panicked` / `timed-out` / `failed`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panicked(_) => "panicked",
            JobError::TimedOut { .. } => "timed-out",
            JobError::Failed(_) => "failed",
        }
    }

    /// Whether this error crashed or wedged its worker (panic/deadline),
    /// which is what sends a retry-exhausted job to quarantine.
    pub fn crashed_worker(&self) -> bool {
        matches!(self, JobError::Panicked(_) | JobError::TimedOut { .. })
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobError::TimedOut { deadline_ms } => {
                write!(f, "timed out after {deadline_ms} ms deadline")
            }
            JobError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Final state of one supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// An attempt succeeded and produced a value.
    Completed(T),
    /// Every attempt returned a typed failure; the last one is kept.
    Failed(JobError),
    /// The final attempt crashed or wedged its worker (panic or deadline);
    /// the job is quarantined so the sweep can finish without it.
    Quarantined(JobError),
}

impl<T> JobOutcome<T> {
    /// Whether the job produced a value.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn value(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// The terminal error, if the job did not complete.
    pub fn error(&self) -> Option<&JobError> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => Some(e),
        }
    }

    /// Stable short tag (`completed` / `failed` / `quarantined`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Quarantined(_) => "quarantined",
        }
    }
}

/// Per-attempt context handed to the job body. Cooperative jobs poll
/// [`JobCtx::cancelled`] and bail early once the watchdog gives up on them
/// (the result of a cancelled attempt is discarded either way; polling
/// just releases the thread).
#[derive(Debug)]
pub struct JobCtx {
    /// The job's sweep-wide id (submission order).
    pub job_id: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    cancel: Arc<AtomicBool>,
}

impl JobCtx {
    /// Whether the watchdog has abandoned this attempt.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

type Work<T> = dyn Fn(&JobCtx) -> Result<T, String> + Send + Sync;

/// One supervised job: a label for reports plus a re-runnable body.
/// The body must be `Fn` (not `FnOnce`) because the supervisor may run it
/// several times under the retry policy.
pub struct Job<T> {
    /// Human-readable label carried into the [`JobRecord`].
    pub label: String,
    work: Arc<Work<T>>,
}

impl<T> Job<T> {
    /// A job running `work` under supervision.
    pub fn new(
        label: impl Into<String>,
        work: impl Fn(&JobCtx) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        Job {
            label: label.into(),
            work: Arc::new(work),
        }
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("label", &self.label).finish()
    }
}

/// Everything known about one job after the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord<T> {
    /// Sweep-wide id: the job's index in the submitted list.
    pub id: u64,
    /// The label the job was submitted with.
    pub label: String,
    /// Terminal outcome.
    pub outcome: JobOutcome<T>,
    /// Attempts consumed (1 on a first-try success).
    pub attempts: u32,
    /// Total deterministic backoff charged across retries, in ms.
    pub backoff_ms: u64,
    /// Host wall-clock across all adjudicated attempts, in µs.
    /// *Not* deterministic — exclude it from byte-compared reports.
    pub wall_clock_us: u64,
    /// Worker that ran the final adjudicated attempt.
    /// *Not* deterministic — exclude it from byte-compared reports.
    pub worker: u64,
}

/// The structured result of one sweep: per-job records in job-id order
/// plus supervision totals. The sweep itself never fails — individual
/// jobs do, visibly.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// One record per *adjudicated* job, sorted by job id regardless of
    /// completion order. Equals the submitted set unless the sweep was
    /// stopped, in which case [`SweepReport::halted`] names the rest.
    pub jobs: Vec<JobRecord<T>>,
    /// Worker threads the sweep started with.
    pub workers: usize,
    /// Replacement workers spawned after deadline abandonments.
    pub workers_respawned: u64,
    /// Retried attempts across all jobs.
    pub retries: u64,
    /// Ids of quarantined jobs, ascending.
    pub quarantined: Vec<u64>,
    /// Whether a [`StopHandle`] drained this sweep before every job was
    /// adjudicated.
    pub interrupted: bool,
    /// Ids of jobs the stop drained before they were adjudicated,
    /// ascending. Always empty when `interrupted` is false.
    pub halted: Vec<u64>,
    /// Host wall-clock for the whole sweep, in µs (not deterministic).
    pub wall_clock_us: u64,
    /// Per-worker registries merged in worker-id order, plus supervisor
    /// totals (`pool.*` keys).
    pub metrics: MetricsRegistry,
}

impl<T> SweepReport<T> {
    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.outcome.is_completed())
            .count()
    }

    /// Whether every job completed.
    pub fn all_completed(&self) -> bool {
        self.completed() == self.jobs.len()
    }

    /// Records of jobs that ended `Failed` or `Quarantined`, in id order.
    pub fn casualties(&self) -> impl Iterator<Item = &JobRecord<T>> {
        self.jobs.iter().filter(|j| !j.outcome.is_completed())
    }

    /// Completed values in job-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.jobs.iter().filter_map(|j| j.outcome.value())
    }
}

/// One queued attempt.
struct Attempt<T> {
    job_id: u64,
    attempt: u32,
    work: Arc<Work<T>>,
}

/// What a worker is running right now, as seen by the watchdog.
struct InFlight {
    job_id: u64,
    attempt: u32,
    started: Instant,
    cancel: Arc<AtomicBool>,
}

/// State shared between supervisor, watchdog, and workers.
struct Shared<T> {
    queue: Mutex<VecDeque<Attempt<T>>>,
    available: Condvar,
    shutdown: AtomicBool,
    in_flight: Mutex<BTreeMap<u64, InFlight>>,
}

enum WorkerMsg<T> {
    /// An attempt finished (value, typed failure, or caught panic).
    Done {
        worker: u64,
        job_id: u64,
        attempt: u32,
        result: Result<T, JobError>,
        elapsed_us: u64,
    },
    /// The watchdog found an attempt past its deadline.
    Expired {
        worker: u64,
        job_id: u64,
        attempt: u32,
    },
    /// A worker exited cleanly and hands back its registry.
    Retired {
        worker: u64,
        metrics: MetricsRegistry,
    },
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn_worker<T: Send + 'static>(
    token: u64,
    shared: Arc<Shared<T>>,
    tx: Sender<WorkerMsg<T>>,
    abandoned: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("oasis-pool-{token}"))
        .spawn(move || {
            let mut metrics = MetricsRegistry::enabled();
            loop {
                if abandoned.load(Ordering::Relaxed) {
                    break; // supervisor gave up on us; results are stale
                }
                let task = {
                    let mut q = shared.queue.lock().expect("pool queue poisoned");
                    loop {
                        if shared.shutdown.load(Ordering::Relaxed) {
                            // Retire: hand the registry back (the receiver
                            // may already be gone; that is fine).
                            let _ = tx.send(WorkerMsg::Retired {
                                worker: token,
                                metrics,
                            });
                            return;
                        }
                        if let Some(t) = q.pop_front() {
                            break t;
                        }
                        q = shared.available.wait(q).expect("pool queue poisoned");
                    }
                };
                let cancel = Arc::new(AtomicBool::new(false));
                shared.in_flight.lock().expect("in-flight poisoned").insert(
                    token,
                    InFlight {
                        job_id: task.job_id,
                        attempt: task.attempt,
                        started: Instant::now(),
                        cancel: Arc::clone(&cancel),
                    },
                );
                let ctx = JobCtx {
                    job_id: task.job_id,
                    attempt: task.attempt,
                    cancel,
                };
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| (task.work)(&ctx)));
                let elapsed_us = started.elapsed().as_micros() as u64;
                shared
                    .in_flight
                    .lock()
                    .expect("in-flight poisoned")
                    .remove(&token);
                let result = match outcome {
                    Ok(Ok(v)) => {
                        metrics.add("pool.attempts.completed", 1);
                        Ok(v)
                    }
                    Ok(Err(msg)) => {
                        metrics.add("pool.attempts.failed", 1);
                        Err(JobError::Failed(msg))
                    }
                    Err(payload) => {
                        metrics.add("pool.attempts.panicked", 1);
                        Err(JobError::Panicked(panic_message(&*payload)))
                    }
                };
                metrics.add("pool.attempts", 1);
                metrics.observe_ns("pool.attempt.wall_ns", elapsed_us.saturating_mul(1000));
                if abandoned.load(Ordering::Relaxed) {
                    // Adjudicated as timed out while we were running: the
                    // supervisor no longer trusts this thread. Discard.
                    break;
                }
                if tx
                    .send(WorkerMsg::Done {
                        worker: token,
                        job_id: task.job_id,
                        attempt: task.attempt,
                        result,
                        elapsed_us,
                    })
                    .is_err()
                {
                    break; // supervisor is gone
                }
            }
        })
        .expect("spawning a pool worker failed")
}

/// Supervisor-side view of one job's progress.
struct JobState<T> {
    label: String,
    work: Arc<Work<T>>,
    attempts: u32,
    backoff_ms: u64,
    wall_clock_us: u64,
    record: Option<JobRecord<T>>,
    halted: bool,
}

/// Runs `jobs` to completion under `config` and returns the structured
/// report. Blocks the calling thread (which acts as the supervisor) until
/// every job is adjudicated; a sweep with no deadline and a truly hung
/// job will block with it — set [`PoolConfig::deadline`] for sweeps that
/// must always terminate.
pub fn run_sweep<T: Send + 'static>(config: &PoolConfig, jobs: Vec<Job<T>>) -> SweepReport<T> {
    run_sweep_controlled(config, jobs, SweepControl::default())
}

/// [`run_sweep`] with a [`SweepControl`]: cooperative stop plus
/// dispatch/adjudication observers. With a stop handle attached the
/// supervisor polls the flag between messages (a few-ms wakeup) instead
/// of blocking indefinitely on the channel; without one this is exactly
/// `run_sweep`.
pub fn run_sweep_controlled<T: Send + 'static>(
    config: &PoolConfig,
    jobs: Vec<Job<T>>,
    mut ctrl: SweepControl<'_, T>,
) -> SweepReport<T> {
    let sweep_started = Instant::now();
    let job_count = jobs.len();
    let workers = config.workers.clamp(1, job_count.max(1));
    let max_attempts = config.max_attempts.max(1);

    let mut states: Vec<JobState<T>> = jobs
        .into_iter()
        .map(|j| JobState {
            label: j.label,
            work: j.work,
            attempts: 0,
            backoff_ms: 0,
            wall_clock_us: 0,
            record: None,
            halted: false,
        })
        .collect();

    let shared: Arc<Shared<T>> = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
        in_flight: Mutex::new(BTreeMap::new()),
    });
    // Deterministic fan-out: the initial queue is in job-id order. The
    // dispatch observer fires before workers exist, so every intent is
    // journaled before any attempt can possibly run.
    {
        let mut q = shared.queue.lock().expect("pool queue poisoned");
        for (id, state) in states.iter().enumerate() {
            if let Some(cb) = ctrl.on_dispatch.as_mut() {
                cb(id as u64, 1);
            }
            q.push_back(Attempt {
                job_id: id as u64,
                attempt: 1,
                work: Arc::clone(&state.work),
            });
        }
    }

    let (tx, rx): (Sender<WorkerMsg<T>>, Receiver<WorkerMsg<T>>) = channel();
    let mut next_token = 0u64;
    let mut handles: Vec<(u64, Arc<AtomicBool>, JoinHandle<()>)> = Vec::new();
    // A stop raised before the sweep starts means "dispatch nothing":
    // skipping worker spawn entirely makes the all-halted outcome
    // deterministic instead of racing the drain against eager workers.
    let workers = if ctrl.stop.as_ref().is_some_and(|s| s.is_stopped()) {
        0
    } else {
        workers
    };
    for _ in 0..workers {
        let abandoned = Arc::new(AtomicBool::new(false));
        let h = spawn_worker(
            next_token,
            Arc::clone(&shared),
            tx.clone(),
            Arc::clone(&abandoned),
        );
        handles.push((next_token, abandoned, h));
        next_token += 1;
    }

    // The shared watchdog: scans in-flight attempts and reports the ones
    // past the deadline. Adjudication stays with the supervisor so there
    // is exactly one decision point per attempt.
    let watchdog = config.deadline.map(|deadline| {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let poll = config.watchdog_poll.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("oasis-pool-watchdog".to_string())
            .spawn(move || {
                let mut reported: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
                while !shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    let expired: Vec<(u64, u64, u32)> = {
                        let inf = shared.in_flight.lock().expect("in-flight poisoned");
                        inf.iter()
                            .filter(|(token, f)| {
                                f.started.elapsed() > deadline
                                    && reported.get(token) != Some(&(f.job_id, f.attempt))
                            })
                            .map(|(&token, f)| (token, f.job_id, f.attempt))
                            .collect()
                    };
                    for (worker, job_id, attempt) in expired {
                        reported.insert(worker, (job_id, attempt));
                        if tx
                            .send(WorkerMsg::Expired {
                                worker,
                                job_id,
                                attempt,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            })
            .expect("spawning the pool watchdog failed")
    });

    let deadline_ms = config.deadline.map_or(0, |d| d.as_millis() as u64);
    let mut finalized = 0usize;
    let mut retries = 0u64;
    let mut workers_respawned = 0u64;
    let mut delayed: Vec<(Instant, Attempt<T>)> = Vec::new();
    let mut worker_metrics: BTreeMap<u64, MetricsRegistry> = BTreeMap::new();
    let stop = ctrl.stop.clone();
    let mut stopped = false;
    let mut halted_count = 0usize;

    let enqueue = |shared: &Shared<T>, attempt: Attempt<T>| {
        shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(attempt);
        shared.available.notify_one();
    };

    while finalized + halted_count < job_count {
        // Cooperative stop: drain everything not yet handed to a worker.
        // In-flight attempts are left to finish (or hit the deadline) and
        // are adjudicated normally; queued and backoff-delayed attempts
        // are halted without a record and named in the report.
        if !stopped && stop.as_ref().is_some_and(|s| s.is_stopped()) {
            stopped = true;
            let drained: Vec<Attempt<T>> = {
                let mut q = shared.queue.lock().expect("pool queue poisoned");
                q.drain(..).collect()
            };
            let delayed_attempts: Vec<Attempt<T>> =
                delayed.drain(..).map(|(_, attempt)| attempt).collect();
            for a in drained.into_iter().chain(delayed_attempts) {
                let st = &mut states[a.job_id as usize];
                if st.record.is_none() && !st.halted {
                    st.halted = true;
                    halted_count += 1;
                }
            }
            continue; // re-check the loop condition before blocking
        }

        // Release retries whose (optional) real backoff has elapsed.
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                let (_, attempt) = delayed.swap_remove(i);
                enqueue(&shared, attempt);
            } else {
                i += 1;
            }
        }

        // Block indefinitely when no retry is waiting on its backoff and
        // no stop handle needs polling — worker/watchdog messages are the
        // only possible wakeups then. Poll with a short timeout while
        // `delayed` holds retries whose (real) backoff has yet to elapse,
        // or while a stop handle could be raised behind our back.
        let msg = if delayed.is_empty() && stop.is_none() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break, // all senders gone
            }
        } else {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break, // all senders gone
            }
        };
        let (worker, job_id, attempt, result, elapsed_us) = match msg {
            WorkerMsg::Done {
                worker,
                job_id,
                attempt,
                result,
                elapsed_us,
            } => (worker, job_id, attempt, result, elapsed_us),
            WorkerMsg::Expired {
                worker,
                job_id,
                attempt,
            } => {
                // Stale if the attempt was already adjudicated (the worker
                // squeaked a result in just before the deadline fired).
                let state = &states[job_id as usize];
                if state.record.is_some() || state.attempts >= attempt {
                    continue;
                }
                // The watchdog's report may also be behind the worker: if
                // the worker finished this attempt just under the wire, its
                // `Done` is queued behind this `Expired` and the worker may
                // already be running a *different* attempt. Abandoning it
                // then would discard that new attempt's result without ever
                // re-queueing it, wedging the sweep. So only abandon while
                // the worker is provably still on (job_id, attempt) — check
                // and act under the in-flight lock, and raise `abandoned`
                // inside the critical section: the worker removes its entry
                // under the same lock before it re-checks `abandoned`, so it
                // can never slip past the flag and dequeue further work.
                {
                    let mut inf = shared.in_flight.lock().expect("in-flight poisoned");
                    let matches = inf
                        .get(&worker)
                        .is_some_and(|f| f.job_id == job_id && f.attempt == attempt);
                    if !matches {
                        continue; // stale: the attempt beat the deadline
                    }
                    if let Some((_, abandoned, _)) =
                        handles.iter().find(|(token, _, _)| *token == worker)
                    {
                        abandoned.store(true, Ordering::Relaxed);
                    }
                    let f = inf.remove(&worker).expect("entry matched above");
                    f.cancel.store(true, Ordering::Relaxed);
                }
                // Respawn so the sweep keeps its configured parallelism.
                let abandoned = Arc::new(AtomicBool::new(false));
                let h = spawn_worker(
                    next_token,
                    Arc::clone(&shared),
                    tx.clone(),
                    Arc::clone(&abandoned),
                );
                handles.push((next_token, abandoned, h));
                next_token += 1;
                workers_respawned += 1;
                (
                    worker,
                    job_id,
                    attempt,
                    Err(JobError::TimedOut { deadline_ms }),
                    deadline_ms.saturating_mul(1000),
                )
            }
            WorkerMsg::Retired { worker, metrics } => {
                worker_metrics.insert(worker, metrics);
                continue;
            }
        };

        let state = &mut states[job_id as usize];
        if state.record.is_some() || state.attempts >= attempt {
            continue; // stale: a late result from an abandoned attempt
        }
        state.attempts = attempt;
        state.wall_clock_us = state.wall_clock_us.saturating_add(elapsed_us);
        match result {
            Ok(value) => {
                state.record = Some(JobRecord {
                    id: job_id,
                    label: state.label.clone(),
                    outcome: JobOutcome::Completed(value),
                    attempts: state.attempts,
                    backoff_ms: state.backoff_ms,
                    wall_clock_us: state.wall_clock_us,
                    worker,
                });
                finalized += 1;
                if let Some(cb) = ctrl.on_adjudicated.as_mut() {
                    cb(state.record.as_ref().expect("record just set"));
                }
            }
            // A stopped sweep spends no further attempts: a failure that
            // would have retried is finalized with what it has.
            Err(_retryable) if state.attempts < max_attempts && !stopped => {
                // Deterministic doubling backoff, recorded always and
                // slept only on request. The retry is journaled at this
                // decision point, before it can be released to a worker.
                let backoff = config.backoff_base_ms << (state.attempts - 1).min(32);
                state.backoff_ms += backoff;
                retries += 1;
                let next_attempt = state.attempts + 1;
                if let Some(cb) = ctrl.on_dispatch.as_mut() {
                    cb(job_id, next_attempt);
                }
                let due = if config.sleep_on_backoff {
                    Instant::now() + Duration::from_millis(backoff)
                } else {
                    Instant::now()
                };
                delayed.push((
                    due,
                    Attempt {
                        job_id,
                        attempt: next_attempt,
                        work: Arc::clone(&state.work),
                    },
                ));
            }
            Err(err) => {
                let outcome = if err.crashed_worker() {
                    JobOutcome::Quarantined(err)
                } else {
                    JobOutcome::Failed(err)
                };
                state.record = Some(JobRecord {
                    id: job_id,
                    label: state.label.clone(),
                    outcome,
                    attempts: state.attempts,
                    backoff_ms: state.backoff_ms,
                    wall_clock_us: state.wall_clock_us,
                    worker,
                });
                finalized += 1;
                if let Some(cb) = ctrl.on_adjudicated.as_mut() {
                    cb(state.record.as_ref().expect("record just set"));
                }
            }
        }
    }

    // Wind down: wake everyone, join the workers still trusted, leave
    // abandoned ones to their hung jobs (they exit on their own if the
    // job ever returns or polls its cancel flag).
    shared.shutdown.store(true, Ordering::Relaxed);
    shared.available.notify_all();
    drop(tx);
    if let Some(h) = watchdog {
        let _ = h.join(); // exits within one poll interval
    }
    for (_, abandoned, handle) in handles {
        if !abandoned.load(Ordering::Relaxed) {
            let _ = handle.join();
        }
    }
    // Collect the registries retired workers sent on their way out.
    while let Ok(msg) = rx.try_recv() {
        if let WorkerMsg::Retired { worker, metrics } = msg {
            worker_metrics.insert(worker, metrics);
        }
    }

    let mut metrics = MetricsRegistry::enabled();
    for reg in worker_metrics.values() {
        metrics.merge_from(reg);
    }
    metrics.set("pool.jobs", job_count as u64);
    metrics.set("pool.retries", retries);
    metrics.set("pool.workers", workers as u64);
    metrics.set("pool.workers_respawned", workers_respawned);

    let mut jobs: Vec<JobRecord<T>> = Vec::with_capacity(finalized);
    let mut halted: Vec<u64> = Vec::with_capacity(halted_count);
    for (id, s) in states.into_iter().enumerate() {
        match s.record {
            Some(rec) => jobs.push(rec),
            None if s.halted => halted.push(id as u64),
            None => unreachable!("job {id} finished the sweep without a record"),
        }
    }
    let quarantined: Vec<u64> = jobs
        .iter()
        .filter(|j| matches!(j.outcome, JobOutcome::Quarantined(_)))
        .map(|j| j.id)
        .collect();

    SweepReport {
        jobs,
        workers,
        workers_respawned,
        retries,
        quarantined,
        interrupted: stopped,
        halted,
        wall_clock_us: sweep_started.elapsed().as_micros() as u64,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_serial_shape() {
        let c = PoolConfig::default();
        assert_eq!(c.workers, 1);
        assert_eq!(c.max_attempts, 1);
        assert!(c.deadline.is_none());
        assert!(!c.sleep_on_backoff);
    }

    #[test]
    fn job_error_display_and_kind() {
        let p = JobError::Panicked("boom".into());
        assert_eq!(p.kind(), "panicked");
        assert!(p.to_string().contains("boom"));
        assert!(p.crashed_worker());
        let t = JobError::TimedOut { deadline_ms: 50 };
        assert_eq!(t.kind(), "timed-out");
        assert!(t.to_string().contains("50 ms"));
        assert!(t.crashed_worker());
        let f = JobError::Failed("nope".into());
        assert_eq!(f.kind(), "failed");
        assert!(!f.crashed_worker());
    }

    #[test]
    fn empty_sweep_completes_immediately() {
        let report = run_sweep::<u64>(&PoolConfig::with_workers(4), Vec::new());
        assert!(report.jobs.is_empty());
        assert!(report.all_completed());
        assert_eq!(report.metrics.counter("pool.jobs"), 0);
    }

    #[test]
    fn results_come_back_in_job_id_order() {
        // Jobs sleep in *reverse* length order so completion order is the
        // opposite of submission order under parallelism.
        let jobs: Vec<Job<u64>> = (0..8u64)
            .map(|i| {
                Job::new(format!("job-{i}"), move |_ctx| {
                    std::thread::sleep(Duration::from_millis((8 - i) * 3));
                    Ok(i * 10)
                })
            })
            .collect();
        let report = run_sweep(&PoolConfig::with_workers(4), jobs);
        assert!(report.all_completed());
        let ids: Vec<u64> = report.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        let values: Vec<u64> = report.values().copied().collect();
        assert_eq!(values, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(report.metrics.counter("pool.attempts"), 8);
        assert_eq!(report.metrics.counter("pool.attempts.completed"), 8);
    }

    #[test]
    fn workers_are_clamped_to_the_job_count() {
        let jobs = vec![Job::new("only", |_ctx| Ok(1u64))];
        let report = run_sweep(&PoolConfig::with_workers(64), jobs);
        assert_eq!(report.workers, 1);
        assert!(report.all_completed());
    }
}
