//! Small deterministic RNG for workload generation and fault injection.
//!
//! The build environment has no network access, so instead of pulling in the
//! `rand` crate the simulator carries its own generator: xoshiro256**
//! (Blackman & Vigna) seeded through splitmix64, the standard pairing — the
//! seeding function's equidistribution fills the 256-bit state from a single
//! `u64` without the correlation pitfalls of naive repetition.
//!
//! Determinism is load-bearing: the fault-injection harness prints a seed and
//! step number for every failure, and replaying that seed must reproduce the
//! failure bit-for-bit.

use crate::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl Snapshot for SimRng {
    fn snapshot(&self, w: &mut ByteWriter) {
        for word in self.s {
            w.u64(word);
        }
    }
}

impl Restore for SimRng {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        for word in &mut self.s {
            *word = r.u64()?;
        }
        if self.s == [0; 4] {
            return Err(r.malformed("all-zero xoshiro256** state"));
        }
        Ok(())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose full 256-bit state is derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Splits off an independent child generator, advancing this one by a
    /// single draw. Forking gives each consumer (e.g. one fuzz scenario per
    /// case) its own stream, so adding draws inside one consumer cannot
    /// perturb the values any other consumer sees.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform. Empty ranges return `range.start`.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start);
        if span == 0 {
            return range.start;
        }
        // Draws whose low 64 bits fall below (2^64 - span) mod span are the
        // biased sliver; rejecting exactly those makes every quotient
        // equally likely.
        let threshold = span.wrapping_neg().wrapping_rem(span);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return range.start + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` below `bound` (0 when `bound` is 0).
    pub fn gen_below(&mut self, bound: usize) -> usize {
        self.gen_range(0..bound as u64) as usize
    }

    /// True with probability `num / denom`.
    pub fn gen_bool_ratio(&mut self, num: u64, denom: u64) -> bool {
        denom != 0 && self.gen_range(0..denom) < num
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_below(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws should cover 10 values");
    }

    #[test]
    fn gen_range_empty_returns_start() {
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(rng.gen_range(9..9), 9);
        assert_eq!(rng.gen_below(0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn snapshot_restores_the_exact_stream_position() {
        let mut a = SimRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut w = ByteWriter::new();
        a.snapshot(&mut w);
        let upcoming: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();

        let mut b = SimRng::seed_from_u64(0);
        let buf = w.into_vec();
        let mut r = ByteReader::new("rng", &buf);
        b.restore(&mut r).expect("valid rng state");
        let replayed: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(upcoming, replayed);
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let mut w = ByteWriter::new();
        for _ in 0..4 {
            w.u64(0);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new("rng", &buf);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(rng.restore(&mut r).is_err());
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::seed_from_u64(3);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
