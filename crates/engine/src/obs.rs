//! The [`Observer`] bundles a [`Tracer`] and a [`MetricsRegistry`] into
//! one handle that instrumented components carry.
//!
//! Observer state is deliberately *outside* the simulation: it is never
//! snapshotted, never digested, and never checkpointed. On resume it is
//! rebuilt from config, so a run observed with tracing on is bit-identical
//! to the same run observed with tracing off.

use crate::metrics::MetricsRegistry;
use crate::time::Time;
use crate::trace::{NullTracer, RingTracer, TimedEvent, TraceEvent, Tracer};

/// Shared observability handle: one tracer + one metrics registry.
pub struct Observer {
    tracing_on: bool,
    tracer: Box<dyn Tracer>,
    /// Metrics sink; callers update it directly (it self-gates on its
    /// enabled flag).
    pub metrics: MetricsRegistry,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("tracing_on", &self.tracing_on)
            .field("metrics_on", &self.metrics.is_enabled())
            .finish()
    }
}

impl Default for Observer {
    fn default() -> Self {
        Observer::disabled()
    }
}

impl Observer {
    /// An observer that records nothing — the hot-path default.
    pub fn disabled() -> Self {
        Observer {
            tracing_on: false,
            tracer: Box::new(NullTracer),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// An observer configured from [`SystemConfig`]-level knobs:
    /// `trace_capacity == 0` disables tracing, otherwise a bounded
    /// [`RingTracer`] of that capacity is installed.
    pub fn from_config(trace_capacity: usize, metrics_on: bool) -> Self {
        if trace_capacity == 0 {
            Observer {
                tracing_on: false,
                tracer: Box::new(NullTracer),
                metrics: if metrics_on {
                    MetricsRegistry::enabled()
                } else {
                    MetricsRegistry::disabled()
                },
            }
        } else {
            Observer {
                tracing_on: true,
                tracer: Box::new(RingTracer::new(trace_capacity)),
                metrics: if metrics_on {
                    MetricsRegistry::enabled()
                } else {
                    MetricsRegistry::disabled()
                },
            }
        }
    }

    /// Whether the tracer keeps events.
    pub fn tracing(&self) -> bool {
        self.tracing_on
    }

    /// Records an event built by `f`, constructing it only when tracing
    /// is on. The disabled path is a single predictable branch.
    #[inline]
    pub fn emit(&mut self, at: Time, f: impl FnOnce() -> TraceEvent) {
        if self.tracing_on {
            self.tracer.record(at, f());
        }
    }

    /// All retained trace events in record order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.tracer.events()
    }

    /// Events dropped by the bounded tracer.
    pub fn dropped(&self) -> u64 {
        self.tracer.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn disabled_observer_never_runs_the_event_closure() {
        let mut o = Observer::disabled();
        let mut built = false;
        o.emit(Time::ZERO, || {
            built = true;
            TraceEvent::Eviction { gpu: 0, vpn: 1 }
        });
        assert!(!built);
        assert!(!o.tracing());
        assert!(o.events().is_empty());
    }

    #[test]
    fn from_config_zero_capacity_means_off() {
        let o = Observer::from_config(0, true);
        assert!(!o.tracing());
        assert!(o.metrics.is_enabled());
        let o = Observer::from_config(128, false);
        assert!(o.tracing());
        assert!(!o.metrics.is_enabled());
    }

    #[test]
    fn enabled_observer_records_events_with_timestamps() {
        let mut o = Observer::from_config(8, true);
        o.emit(Time::from_ps(5_000), || TraceEvent::WalkComplete {
            gpu: 2,
            vpn: 7,
            latency: Duration::from_ns(40),
        });
        let evs = o.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at, Time::from_ps(5_000));
        assert_eq!(evs[0].event.name(), "walk_complete");
        assert_eq!(o.dropped(), 0);
    }
}
