//! Crash-safe filesystem primitives.
//!
//! Every durable artifact the workspace writes — checkpoints, repro corpus
//! files, traces, bench tables — used to go through a bare `File::create`,
//! which means a kill mid-write leaves a torn file *in place of* the
//! previous good one. [`atomic_write`] closes that window with the
//! classic same-directory rename dance:
//!
//! 1. write the full payload to a hidden temp file next to the target
//!    (same filesystem, so the rename below cannot degrade to a copy),
//! 2. `fsync` the temp file so the bytes are on disk before the name is,
//! 3. `rename` over the target — atomic on POSIX filesystems,
//! 4. `fsync` the directory so the rename itself survives a power cut.
//!
//! A kill at any byte offset therefore leaves either the previous file
//! fully intact (steps 1–3 incomplete) or the new file fully intact
//! (rename done); never a prefix of the new one under the target name.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::failpoint;

/// Process-wide counter so concurrent writers (pool workers, tests) never
/// collide on a temp name even within one pid.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The temp path `atomic_write` stages `path` through: hidden, same
/// directory, suffixed with pid + a process-wide counter. Exposed so
/// tests can enumerate the exact intermediate states a kill can leave.
pub fn staging_path(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    Ok(dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    )))
}

/// Atomically replaces `path` with `bytes`: temp file in the same
/// directory, fsync, rename, fsync the directory. On error the temp file
/// is removed; the previous contents of `path` (if any) are untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path)?;
    let result = write_and_rename(&tmp, path, bytes);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_and_rename(tmp: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    {
        failpoint::on_io("fsio.create", path)?;
        let mut f = File::create(tmp)?;
        match failpoint::on_write("fsio.write", path, bytes.len()) {
            failpoint::WriteFault::Clear => f.write_all(bytes)?,
            failpoint::WriteFault::Fail(e) => return Err(e),
            failpoint::WriteFault::Torn { cut, error } => {
                // Persist the short prefix for real so the staged file is
                // genuinely torn, then report the failure; atomic_write
                // removes the temp and the target never sees the prefix.
                f.write_all(&bytes[..cut])?;
                let _ = f.sync_all();
                return Err(error);
            }
        }
        failpoint::on_io("fsio.fsync", path)?;
        f.sync_all()?;
    }
    failpoint::on_io("fsio.rename", path)?;
    std::fs::rename(tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Fsync the directory holding `path` so a just-completed rename is
/// durable. Best-effort: some filesystems refuse to open directories for
/// writing, and a failure here never invalidates the rename itself.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oasis-fsio-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn writes_new_file_and_replaces_existing() {
        let dir = temp_dir("basic");
        let target = dir.join("artifact.json");
        atomic_write(&target, b"first").expect("first write");
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        atomic_write(&target, b"second, longer payload").expect("second write");
        assert_eq!(std::fs::read(&target).unwrap(), b"second, longer payload");
        // No staging debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_previous_contents_and_no_temp() {
        let dir = temp_dir("fail");
        let target = dir.join("artifact.bin");
        atomic_write(&target, b"good").expect("seed write");
        // Point the write at a target whose parent does not exist: the
        // staging create fails and the original must be untouched.
        let bad = dir.join("missing-subdir").join("artifact.bin");
        assert!(atomic_write(&bad, b"doomed").is_err());
        assert_eq!(std::fs::read(&target).unwrap(), b"good");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every injectable leg — create, write (full and torn), fsync,
    /// rename — must error with the site name, leave the previous target
    /// intact, and leave zero staging debris.
    #[test]
    fn injected_faults_leave_no_stray_temp_and_previous_contents() {
        use crate::failpoint::{arm_thread, FailPlan, FaultKind};
        let dir = temp_dir("inject");
        let target = dir.join("artifact.bin");
        atomic_write(&target, b"good").expect("seed write");
        let cells = [
            ("fsio.create", FaultKind::Eio),
            ("fsio.create", FaultKind::Enospc),
            ("fsio.write", FaultKind::Eio),
            ("fsio.write", FaultKind::ShortWrite),
            ("fsio.write", FaultKind::TornAppend),
            ("fsio.fsync", FaultKind::FsyncFail),
            ("fsio.rename", FaultKind::RenameFail),
        ];
        for (site, kind) in cells {
            let scope = arm_thread(FailPlan::once(site, kind));
            let err =
                atomic_write(&target, b"replacement payload").expect_err("armed write must fail");
            assert!(
                err.to_string().contains(site),
                "error must name the site: {err} (cell {site}/{kind})"
            );
            assert_eq!(
                std::fs::read(&target).unwrap(),
                b"good",
                "previous contents must survive cell {site}/{kind}"
            );
            let strays: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .collect();
            assert!(
                strays.is_empty(),
                "staging debris after cell {site}/{kind}: {strays:?}"
            );
            drop(scope);
        }
        // Disarmed, the same write goes through.
        atomic_write(&target, b"replacement payload").expect("clean write");
        assert_eq!(std::fs::read(&target).unwrap(), b"replacement payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staging_path_is_hidden_and_in_the_same_directory() {
        let p = Path::new("/some/dir/report.json");
        let tmp = staging_path(p).unwrap();
        assert_eq!(tmp.parent(), Some(Path::new("/some/dir")));
        let name = tmp.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".report.json.tmp."), "got {name}");
        // Bare file names stage into the current directory.
        let tmp = staging_path(Path::new("report.json")).unwrap();
        assert_eq!(tmp.parent(), Some(Path::new(".")));
    }

    #[test]
    fn a_target_without_a_file_name_is_rejected() {
        assert!(staging_path(Path::new("/")).is_err());
    }
}
