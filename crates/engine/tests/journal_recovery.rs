//! Crash-shaped journal recovery: every way a SIGKILL (or a bad disk) can
//! mangle a write-ahead sweep journal must map to either the longest valid
//! prefix plus a typed [`TailSalvage`] warning, or a typed [`JournalError`]
//! — never a panic, never silently wrong history.

use std::path::PathBuf;

use oasis_engine::journal::{recover, JournalError, JournalRecord, JournalWriter, TailSalvage};
use oasis_engine::AdjudicatedOutcome;

/// Fresh per-test path under the OS temp dir.
fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-journal-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Writes a healthy journal: Begin + 3 dispatch/adjudicate pairs.
fn write_reference(path: &std::path::Path, tag: u64) -> Vec<u8> {
    let mut w = JournalWriter::create(path, tag, "test sweep").expect("create");
    for id in 0..3u64 {
        w.dispatched(id, 1).expect("dispatch");
        w.adjudicated(id, AdjudicatedOutcome::Completed, 1, &[id as u8; 4])
            .expect("adjudicate");
    }
    std::fs::read(path).expect("journal bytes")
}

#[test]
fn a_pristine_journal_recovers_everything_with_no_warnings() {
    let path = temp_journal("pristine.jnl");
    write_reference(&path, 0xABCD);
    let rec = recover(&path).expect("recover");
    assert_eq!(rec.tag, 0xABCD);
    assert_eq!(rec.label, "test sweep");
    assert_eq!(rec.events.len(), 7, "Begin + 3×(Dispatched, Adjudicated)");
    assert_eq!(rec.adjudicated.len(), 3);
    assert!(rec.warnings().is_empty(), "{:?}", rec.warnings());
    assert!(rec.salvage.is_none());
    assert!(!rec.interrupted);
    assert_eq!(rec.adjudicated[&2].payload, vec![2u8; 4]);
}

#[test]
fn every_truncation_point_salvages_a_valid_prefix() {
    let path = temp_journal("truncated.jnl");
    let full = write_reference(&path, 7);
    let full_rec = recover(&path).expect("full recover");
    // Chop the file at *every* byte offset past the header: recovery must
    // keep some prefix of the reference records and warn about the rest.
    // Until the Begin record fits completely there is no sweep identity to
    // salvage, so those cuts are the typed `MissingBegin` instead.
    let mut begin_complete = false;
    for cut in 12..full.len() {
        std::fs::write(&path, &full[..cut]).expect("write truncated");
        let rec = match recover(&path) {
            Ok(rec) => {
                begin_complete = true;
                rec
            }
            Err(JournalError::MissingBegin) if !begin_complete => continue,
            Err(e) => panic!("cut at {cut}: {e}"),
        };
        assert!(
            rec.events.len() <= full_rec.events.len(),
            "cut at {cut} invented records"
        );
        assert_eq!(
            rec.events,
            full_rec.events[..rec.events.len()],
            "cut at {cut} changed surviving records"
        );
        if rec.valid_bytes < cut as u64 {
            // The cut fell inside a record: the partial bytes are dropped
            // with a typed warning.
            let s: &TailSalvage = rec.salvage.as_ref().expect("truncation must warn");
            assert_eq!(s.valid_bytes + s.dropped_bytes, cut as u64);
            assert!(!rec.warnings().is_empty());
        } else {
            // The cut fell exactly on a record boundary: the shorter
            // journal is simply a pristine, shorter journal.
            assert!(rec.salvage.is_none(), "cut at {cut} warned spuriously");
        }
    }
    // Cutting inside the 12-byte file header is a typed hard error, not a
    // salvage: without magic+version there is no journal to speak of.
    for cut in 1..12 {
        std::fs::write(&path, &full[..cut]).expect("write header stub");
        match recover(&path) {
            Err(JournalError::TruncatedHeader { .. }) | Err(JournalError::BadMagic) => {}
            other => panic!("header cut at {cut}: expected typed error, got {other:?}"),
        }
    }
}

#[test]
fn a_flipped_byte_drops_the_tail_from_that_record_on() {
    let path = temp_journal("flipped.jnl");
    let full = write_reference(&path, 7);
    // Flip one byte in the middle of the record stream (inside record 2's
    // area) — the checksum must reject that record and everything after.
    let mid = 12 + (full.len() - 12) / 2;
    let mut bytes = full.clone();
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted");
    let rec = recover(&path).expect("salvaged recover");
    let s = rec.salvage.as_ref().expect("corruption must warn");
    assert!(
        s.reason.contains("checksum") || s.reason.contains("record"),
        "{}",
        s.reason
    );
    assert!(rec.events.len() < 7, "corrupt record must not survive");
    // The surviving prefix is bit-faithful to the uncorrupted journal.
    std::fs::write(&path, &full).expect("restore");
    let full_rec = recover(&path).expect("full recover");
    assert_eq!(rec.events, full_rec.events[..rec.events.len()]);

    // Flipping the *last* byte (inside the final checksum) drops exactly
    // the final record.
    let mut bytes = full.clone();
    *bytes.last_mut().expect("nonempty") ^= 0x01;
    std::fs::write(&path, &bytes).expect("write tail-corrupted");
    let rec = recover(&path).expect("salvaged recover");
    assert_eq!(rec.events.len(), 6, "exactly the last record is dropped");
    assert_eq!(rec.adjudicated.len(), 2);
}

#[test]
fn duplicate_adjudications_keep_the_first_and_warn() {
    let path = temp_journal("duplicate.jnl");
    let mut w = JournalWriter::create(&path, 1, "dup").expect("create");
    w.dispatched(5, 1).expect("dispatch");
    w.adjudicated(5, AdjudicatedOutcome::Completed, 1, b"first")
        .expect("adjudicate");
    w.adjudicated(5, AdjudicatedOutcome::Failed, 3, b"second")
        .expect("duplicate adjudicate");
    let rec = recover(&path).expect("recover");
    assert_eq!(rec.duplicate_adjudications, vec![5]);
    let adj = &rec.adjudicated[&5];
    assert_eq!(adj.outcome, AdjudicatedOutcome::Completed, "first wins");
    assert_eq!(adj.payload, b"first");
    assert!(rec.warnings().iter().any(|w| w.contains("duplicate")));
}

#[test]
fn empty_and_alien_files_are_typed_errors() {
    let path = temp_journal("empty.jnl");
    std::fs::write(&path, b"").expect("write empty");
    assert!(matches!(recover(&path), Err(JournalError::Empty)));

    std::fs::write(&path, b"definitely not a journal file").expect("write alien");
    assert!(matches!(recover(&path), Err(JournalError::BadMagic)));

    let missing = temp_journal("never-created.jnl");
    std::fs::remove_file(&missing).ok();
    assert!(matches!(recover(&missing), Err(JournalError::Io(_))));
}

#[test]
fn a_header_without_begin_is_missing_begin() {
    let path = temp_journal("headeronly.jnl");
    let full = write_reference(&path, 7);
    std::fs::write(&path, &full[..12]).expect("write bare header");
    assert!(matches!(recover(&path), Err(JournalError::MissingBegin)));
}

#[test]
fn resume_rejects_a_different_sweep_tag() {
    let path = temp_journal("tagmismatch.jnl");
    write_reference(&path, 0xAAAA);
    match JournalWriter::resume(&path, 0xBBBB) {
        Err(JournalError::TagMismatch { expected, found }) => {
            assert_eq!(expected, 0xBBBB);
            assert_eq!(found, 0xAAAA);
        }
        other => panic!("expected TagMismatch, got {other:?}"),
    }
}

#[test]
fn resume_truncates_the_salvaged_tail_and_appends_cleanly() {
    let path = temp_journal("salvage-append.jnl");
    let full = write_reference(&path, 7);
    // Kill mid-append: half of the final record made it to disk.
    std::fs::write(&path, &full[..full.len() - 7]).expect("write torn");
    let (mut w, rec) = JournalWriter::resume(&path, 7).expect("resume");
    assert!(rec.salvage.is_some(), "torn tail must be reported");
    assert_eq!(rec.adjudicated.len(), 2, "record 2's adjudication was torn");
    // New appends land on the clean boundary and survive a re-recover.
    w.dispatched(2, 1).expect("redispatch");
    w.adjudicated(2, AdjudicatedOutcome::Completed, 1, &[2u8; 4])
        .expect("readjudicate");
    w.interrupted(3).expect("trailer");
    drop(w);
    let rec = recover(&path).expect("recover after repair");
    assert!(rec.salvage.is_none(), "repaired journal is pristine");
    assert_eq!(rec.adjudicated.len(), 3);
    assert!(rec.interrupted, "trailer is the last record");
    assert_eq!(
        rec.events.last(),
        Some(&JournalRecord::Interrupted { adjudicated: 3 })
    );
}

#[test]
fn interrupted_is_only_clean_as_the_final_record() {
    let path = temp_journal("trailer.jnl");
    let mut w = JournalWriter::create(&path, 9, "drain").expect("create");
    w.dispatched(0, 1).expect("dispatch");
    w.adjudicated(0, AdjudicatedOutcome::Completed, 1, b"ok")
        .expect("adjudicate");
    w.interrupted(1).expect("trailer");
    // A resume appends more work after the trailer: the journal is no
    // longer "interrupted" because the drain was acted upon.
    w.dispatched(1, 1).expect("post-trailer dispatch");
    drop(w);
    let rec = recover(&path).expect("recover");
    assert!(!rec.interrupted, "trailer mid-stream is not a clean drain");
    assert_eq!(rec.events.len(), 5, "Begin + pair + trailer + redispatch");
}
