//! Property test: journal recovery salvages the longest clean prefix
//! under *mid-append* storage faults.
//!
//! The existing truncation suite chops a finished journal at arbitrary
//! byte offsets after the fact. This test injects the damage where it
//! actually happens — inside `JournalWriter::append`, via the
//! `journal.append.write` failpoint with a `torn-append` plan — at every
//! record index and every intra-record cut offset, and asserts the
//! salvage invariant exactly: the records appended before the fault
//! survive byte-for-byte, the torn tail is dropped and reported, and a
//! resumed writer continues from a clean boundary.

use std::path::PathBuf;

use oasis_engine::failpoint::{arm_thread, FailPlan, FaultKind};
use oasis_engine::journal::{recover, JournalRecord, JournalWriter};

const TAG: u64 = 0x5045_5250; // arbitrary sweep tag
const RECORDS: u64 = 3;

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oasis-journal-short-append-{}-{tag}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir.join("sweep.jnl")
}

/// One `Dispatched` record's encoded length, measured from a scratch
/// journal so the test never hardcodes the wire format.
fn dispatched_record_len() -> u64 {
    let path = temp_journal("measure");
    let mut w = JournalWriter::create(&path, TAG, "measure").expect("create");
    let before = std::fs::metadata(&path).expect("metadata").len();
    w.dispatched(0, 1).expect("append");
    let after = std::fs::metadata(&path).expect("metadata").len();
    after - before
}

#[test]
fn recovery_salvages_the_longest_clean_prefix_at_every_cut_offset() {
    let rec_len = dispatched_record_len();
    assert!(rec_len > 0);

    for k in 0..RECORDS {
        for cut in 0..=rec_len {
            let path = temp_journal(&format!("k{k}-c{cut}"));
            let _ = std::fs::remove_file(&path);
            let mut writer = JournalWriter::create(&path, TAG, "short-append").expect("create");

            let spec = format!("site:journal.append.write,kind:torn-append,after:{k},cut:{cut}");
            let plan = FailPlan::parse(&spec).expect("plan spec");
            assert_eq!(plan.kind, FaultKind::TornAppend);
            let scope = arm_thread(plan);

            let mut failed_at = None;
            for i in 0..RECORDS {
                match writer.dispatched(i, i as u32 + 1) {
                    Ok(()) => {}
                    Err(e) => {
                        let msg = e.to_string();
                        assert!(msg.contains("journal.append.write"), "{spec}: {msg}");
                        failed_at = Some(i);
                        break;
                    }
                }
            }
            assert_eq!(failed_at, Some(k), "{spec}: fault must strike append {k}");
            assert_eq!(scope.firings().len(), 1, "{spec}");
            assert_eq!(scope.firings()[0].cut, Some(cut as usize), "{spec}");
            drop(scope);
            drop(writer);

            // The salvage invariant: Begin plus exactly the k appends that
            // completed, with the torn tail dropped and accounted for.
            // `cut == rec_len` is the boundary case where the "torn"
            // record actually landed whole before the error was reported —
            // recovery rightly keeps it.
            let recovery = recover(&path).expect("recover never aborts on a torn tail");
            let whole = cut == rec_len;
            let kept_appends = if whole { k + 1 } else { k };
            assert_eq!(
                recovery.events.len() as u64,
                1 + kept_appends,
                "{spec}: Begin + {kept_appends} appends"
            );
            assert!(matches!(
                recovery.events[0],
                JournalRecord::Begin { tag: TAG, .. }
            ));
            for (i, rec) in recovery.events[1..].iter().enumerate() {
                match rec {
                    JournalRecord::Dispatched { job_id, attempt } => {
                        assert_eq!(*job_id, i as u64, "{spec}");
                        assert_eq!(*attempt, i as u32 + 1, "{spec}");
                    }
                    other => panic!("{spec}: unexpected record {other:?}"),
                }
            }
            match (&recovery.salvage, cut) {
                (None, 0) => {}          // nothing of the torn record persisted
                (None, _) if whole => {} // the record landed whole
                (Some(s), _) => {
                    assert_eq!(s.dropped_bytes, cut, "{spec}");
                    assert_eq!(s.records_kept as u64, 1 + kept_appends, "{spec}");
                    assert!(s.reason.contains("truncated"), "{spec}: {}", s.reason);
                }
                (None, _) => panic!("{spec}: a {cut}-byte torn tail must be reported"),
            }

            // Resume truncates the tail and appends continue cleanly.
            let (mut resumed, _) = JournalWriter::resume(&path, TAG).expect("resume");
            resumed.dispatched(99, 1).expect("post-salvage append");
            drop(resumed);
            let clean = recover(&path).expect("recover after resume");
            assert!(clean.salvage.is_none(), "{spec}: {:?}", clean.salvage);
            assert_eq!(clean.events.len() as u64, 1 + kept_appends + 1, "{spec}");
        }
    }
}
