//! Property-based tests for the simulation kernel.

use oasis_engine::{Channel, Duration, EventQueue, Time};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, with FIFO ties.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_ps(*t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_popped_time = None;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last_time);
            if last_popped_time == Some(ev.time) {
                // FIFO tie-break: payload indices at equal times ascend.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < ev.payload));
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(ev.payload);
            last_popped_time = Some(ev.time);
            last_time = ev.time;
        }
    }

    /// A channel never starts a transfer before the previous one departed,
    /// and occupancy equals the sum of transfer times.
    #[test]
    fn channel_serializes(
        bw in 1u64..10_000_000_000,
        sizes in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let mut c = Channel::new(bw, Duration::from_ns(123));
        let mut prev_depart = Time::ZERO;
        let mut expected_busy = Duration::ZERO;
        for s in &sizes {
            let t = c.reserve(Time::ZERO, *s);
            prop_assert!(t.start >= prev_depart);
            prop_assert_eq!(t.arrive, t.depart + Duration::from_ns(123));
            prop_assert!(t.depart >= t.start);
            prev_depart = t.depart;
            expected_busy += Duration::for_transfer(*s, bw);
        }
        prop_assert_eq!(c.busy_time(), expected_busy);
        prop_assert_eq!(c.bytes_moved(), sizes.iter().sum::<u64>());
    }

    /// Transfer duration scales linearly in bytes (within rounding).
    #[test]
    fn transfer_duration_is_monotonic(bw in 1u64..1_000_000_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Duration::for_transfer(lo, bw) <= Duration::for_transfer(hi, bw));
    }
}
