//! Randomized property tests for the simulation kernel, driven by the
//! in-tree deterministic [`SimRng`] (the build environment is offline, so no
//! external property-testing framework is available). Each test sweeps many
//! seeded cases; a failure message includes the case index so the exact
//! input can be regenerated.

use oasis_engine::{Channel, Duration, EventQueue, SimRng, Time};

const CASES: u64 = 64;

/// Events always pop in nondecreasing time order, with FIFO ties.
#[test]
fn event_queue_is_time_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xE0E0 + case);
        let n = rng.gen_range(1..200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_ps(*t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_popped_time = None;
        while let Some(ev) = q.pop() {
            assert!(ev.time >= last_time, "case {case}: time went backwards");
            if last_popped_time == Some(ev.time) {
                // FIFO tie-break: payload indices at equal times ascend.
                assert!(
                    seen_at_time.last().is_none_or(|&p| p < ev.payload),
                    "case {case}: FIFO tie-break violated"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(ev.payload);
            last_popped_time = Some(ev.time);
            last_time = ev.time;
        }
    }
}

/// A channel never starts a transfer before the previous one departed,
/// and occupancy equals the sum of transfer times.
#[test]
fn channel_serializes() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xC4A7 + case);
        let bw = rng.gen_range(1..10_000_000_000);
        let n = rng.gen_range(1..50) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut c = Channel::new(bw, Duration::from_ns(123));
        let mut prev_depart = Time::ZERO;
        let mut expected_busy = Duration::ZERO;
        for s in &sizes {
            let t = c.reserve(Time::ZERO, *s);
            assert!(t.start >= prev_depart, "case {case}: overlapping transfers");
            assert_eq!(t.arrive, t.depart + Duration::from_ns(123), "case {case}");
            assert!(t.depart >= t.start, "case {case}");
            prev_depart = t.depart;
            expected_busy += Duration::for_transfer(*s, bw);
        }
        assert_eq!(c.busy_time(), expected_busy, "case {case}");
        assert_eq!(c.bytes_moved(), sizes.iter().sum::<u64>(), "case {case}");
    }
}

/// Transfer duration scales monotonically in bytes (within rounding).
#[test]
fn transfer_duration_is_monotonic() {
    for case in 0..CASES * 4 {
        let mut rng = SimRng::seed_from_u64(0x7D07 + case);
        let bw = rng.gen_range(1..1_000_000_000_000);
        let a = rng.gen_range(0..1_000_000);
        let b = rng.gen_range(0..1_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            Duration::for_transfer(lo, bw) <= Duration::for_transfer(hi, bw),
            "case {case}: duration not monotonic in size"
        );
    }
}
