//! Randomized property tests for the simulation kernel, driven by the
//! in-tree deterministic [`SimRng`] (the build environment is offline, so no
//! external property-testing framework is available). Each test sweeps many
//! seeded cases; a failure message includes the case index so the exact
//! input can be regenerated.

use oasis_engine::codec::{CheckpointReader, CheckpointWriter, CodecError};
use oasis_engine::{Channel, Duration, EventQueue, SimRng, Time};

const CASES: u64 = 64;

/// Events always pop in nondecreasing time order, with FIFO ties.
#[test]
fn event_queue_is_time_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xE0E0 + case);
        let n = rng.gen_range(1..200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_ps(*t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_popped_time = None;
        while let Some(ev) = q.pop() {
            assert!(ev.time >= last_time, "case {case}: time went backwards");
            if last_popped_time == Some(ev.time) {
                // FIFO tie-break: payload indices at equal times ascend.
                assert!(
                    seen_at_time.last().is_none_or(|&p| p < ev.payload),
                    "case {case}: FIFO tie-break violated"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(ev.payload);
            last_popped_time = Some(ev.time);
            last_time = ev.time;
        }
    }
}

/// A channel never starts a transfer before the previous one departed,
/// and occupancy equals the sum of transfer times.
#[test]
fn channel_serializes() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xC4A7 + case);
        let bw = rng.gen_range(1..10_000_000_000);
        let n = rng.gen_range(1..50) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();

        let mut c = Channel::new(bw, Duration::from_ns(123));
        let mut prev_depart = Time::ZERO;
        let mut expected_busy = Duration::ZERO;
        for s in &sizes {
            let t = c.reserve(Time::ZERO, *s);
            assert!(t.start >= prev_depart, "case {case}: overlapping transfers");
            assert_eq!(t.arrive, t.depart + Duration::from_ns(123), "case {case}");
            assert!(t.depart >= t.start, "case {case}");
            prev_depart = t.depart;
            expected_busy += Duration::for_transfer(*s, bw);
        }
        assert_eq!(c.busy_time(), expected_busy, "case {case}");
        assert_eq!(c.bytes_moved(), sizes.iter().sum::<u64>(), "case {case}");
    }
}

/// One randomized checkpoint: section names, per-section payloads (raw
/// bytes), and the byte offsets where each section starts. Offsets let the
/// corruption test target section boundaries precisely.
struct RandomCheckpoint {
    names: Vec<String>,
    payloads: Vec<Vec<u8>>,
    boundaries: Vec<usize>,
    image: Vec<u8>,
}

fn random_checkpoint(rng: &mut SimRng) -> RandomCheckpoint {
    let sections = rng.gen_range(1..6) as usize;
    let names: Vec<String> = (0..sections).map(|i| format!("sec{i}")).collect();
    let payloads: Vec<Vec<u8>> = (0..sections)
        .map(|_| {
            let len = rng.gen_range(0..200) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect();
    let mut w = CheckpointWriter::new();
    // The writer is opaque, so track section start offsets from the wire
    // format: 12 header bytes (magic + version), then per section a u16
    // name length, the name, a u64 payload length, and the payload.
    let mut offset = 12usize;
    let mut boundaries = Vec::new();
    for (name, payload) in names.iter().zip(&payloads) {
        boundaries.push(offset);
        w.section(name, |s| s.bytes(payload));
        offset += 2 + name.len() + 8 + payload.len();
    }
    let image = w.finish();
    assert_eq!(offset + 8, image.len(), "offset bookkeeping drifted");
    RandomCheckpoint {
        names,
        payloads,
        boundaries,
        image,
    }
}

/// Fully decodes `image`, returning each section's payload bytes.
fn decode_all(image: &[u8], names: &[String]) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut r = CheckpointReader::new(image)?;
    let mut out = Vec::new();
    for name in names {
        let mut section = r.section(name)?;
        let mut bytes = Vec::with_capacity(section.remaining());
        while !section.is_empty() {
            bytes.push(section.u8()?);
        }
        out.push(bytes);
    }
    r.finish()?;
    Ok(out)
}

/// Encode→decode identity: random section counts, names, and payloads
/// round-trip exactly, and the checksum verifies.
#[test]
fn checkpoint_round_trips_random_section_payloads() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xC0DE_C000 + case);
        let ck = random_checkpoint(&mut rng);
        let decoded = decode_all(&ck.image, &ck.names)
            .unwrap_or_else(|e| panic!("case {case}: clean image failed to decode: {e}"));
        assert_eq!(decoded, ck.payloads, "case {case}: payloads changed");
    }
}

/// Randomized typed-value streams (u8/u16/u32/u64/f64/bool/str) written
/// through a section round-trip value-for-value.
#[test]
fn checkpoint_round_trips_typed_value_streams() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x7F9E_D000 + case);
        let n = rng.gen_range(1..50) as usize;
        // (tag, value-bits) pairs; strings are derived from the bits.
        let ops: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0..7), rng.next_u64()))
            .collect();
        let mut w = CheckpointWriter::new();
        w.section("vals", |s| {
            for &(tag, v) in &ops {
                match tag {
                    0 => s.u8(v as u8),
                    1 => s.u16(v as u16),
                    2 => s.u32(v as u32),
                    3 => s.u64(v),
                    4 => s.f64((v as u32) as f64 * 0.5),
                    5 => s.bool(v & 1 == 1),
                    _ => s.str(&format!("s{v:x}")),
                }
            }
        });
        let image = w.finish();
        let mut r = CheckpointReader::new(&image).expect("header");
        let mut section = r.section("vals").expect("section");
        for (i, &(tag, v)) in ops.iter().enumerate() {
            let ctx = format!("case {case} op {i}");
            match tag {
                0 => assert_eq!(section.u8().expect(&ctx), v as u8, "{ctx}"),
                1 => assert_eq!(section.u16().expect(&ctx), v as u16, "{ctx}"),
                2 => assert_eq!(section.u32().expect(&ctx), v as u32, "{ctx}"),
                3 => assert_eq!(section.u64().expect(&ctx), v, "{ctx}"),
                4 => assert_eq!(section.f64().expect(&ctx), (v as u32) as f64 * 0.5, "{ctx}"),
                5 => assert_eq!(section.bool().expect(&ctx), v & 1 == 1, "{ctx}"),
                _ => assert_eq!(section.str().expect(&ctx), format!("s{v:x}"), "{ctx}"),
            }
        }
        assert!(section.is_empty(), "case {case}: trailing bytes");
        r.finish().expect("checksum");
    }
}

/// Corrupting any single byte — with every section boundary hit explicitly
/// — yields a typed [`CodecError`], never a silently-wrong decode: the
/// FNV-1a trailer backstops payload flips the structural checks miss.
#[test]
fn checkpoint_rejects_single_byte_corruption_at_every_boundary() {
    for case in 0..8 {
        let mut rng = SimRng::seed_from_u64(0xBADC_0DE0 + case);
        let ck = random_checkpoint(&mut rng);
        // Every byte position, so every section boundary (header edge,
        // name-length field, name, payload-length field, payload start)
        // is covered, plus the checksum trailer itself.
        for pos in 0..ck.image.len() {
            let mut bad = ck.image.clone();
            bad[pos] ^= 0x41;
            let res = decode_all(&bad, &ck.names);
            assert!(
                res.is_err(),
                "case {case}: flip at byte {pos} (boundaries {:?}) decoded cleanly",
                ck.boundaries
            );
        }
        // Truncating mid-structure is equally typed.
        for &cut in &ck.boundaries {
            let res = decode_all(&ck.image[..cut], &ck.names);
            assert!(res.is_err(), "case {case}: truncation at {cut} decoded");
        }
    }
}

/// Transfer duration scales monotonically in bytes (within rounding).
#[test]
fn transfer_duration_is_monotonic() {
    for case in 0..CASES * 4 {
        let mut rng = SimRng::seed_from_u64(0x7D07 + case);
        let bw = rng.gen_range(1..1_000_000_000_000);
        let a = rng.gen_range(0..1_000_000);
        let b = rng.gen_range(0..1_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            Duration::for_transfer(lo, bw) <= Duration::for_transfer(hi, bw),
            "case {case}: duration not monotonic in size"
        );
    }
}
