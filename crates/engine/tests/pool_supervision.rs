//! Supervision-layer proof tests for `oasis_engine::pool`.
//!
//! A test-only `JobKind` harness drives the three failure modes the pool
//! must contain — panics, hangs, and transient failures — and each test
//! asserts the *deterministic* part of the resulting `SweepReport`
//! (outcomes, attempt counts, backoff bookkeeping, quarantine list,
//! job-id ordering). The wall-clock and worker-id fields are explicitly
//! nondeterministic and are never asserted on.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oasis_engine::pool::{
    run_sweep, run_sweep_controlled, Job, JobError, JobOutcome, PoolConfig, StopHandle,
    SweepControl,
};

/// The failure repertoire a supervised job can exercise.
#[derive(Clone)]
enum JobKind {
    /// Completes immediately with `value`.
    Ok { value: u64 },
    /// Panics with a recognizable message after `ms` of real work.
    PanicAfter { ms: u64 },
    /// Spins for up to `ms`, polling the cooperative cancel flag so the
    /// abandoned worker can exit and the test process stays clean.
    HangFor { ms: u64 },
    /// Fails the first `n` attempts with a typed error, then succeeds
    /// with `value`. The shared counter makes the job body `Fn`-safe.
    FailNTimes { n: u32, value: u64 },
}

fn job(label: &str, kind: JobKind) -> Job<u64> {
    let failures = Arc::new(AtomicU32::new(0));
    Job::new(label, move |ctx| match &kind {
        JobKind::Ok { value } => Ok(*value),
        JobKind::PanicAfter { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            panic!("deliberate panic from job {}", ctx.job_id);
        }
        JobKind::HangFor { ms } => {
            let start = std::time::Instant::now();
            while start.elapsed() < Duration::from_millis(*ms) {
                if ctx.cancelled() {
                    return Err("cancelled by watchdog".to_string());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(0)
        }
        JobKind::FailNTimes { n, value } => {
            if failures.fetch_add(1, Ordering::SeqCst) < *n {
                Err(format!("transient failure on attempt {}", ctx.attempt))
            } else {
                Ok(*value)
            }
        }
    })
}

#[test]
fn a_panicking_job_is_contained_and_typed() {
    let jobs = vec![
        job("healthy-0", JobKind::Ok { value: 10 }),
        job("panicker", JobKind::PanicAfter { ms: 1 }),
        job("healthy-2", JobKind::Ok { value: 30 }),
    ];
    let report = run_sweep(&PoolConfig::with_workers(2), jobs);
    assert_eq!(report.jobs.len(), 3);
    assert_eq!(report.completed(), 2);
    assert_eq!(report.quarantined, vec![1]);
    let rec = &report.jobs[1];
    assert_eq!(rec.label, "panicker");
    assert_eq!(rec.attempts, 1);
    match &rec.outcome {
        JobOutcome::Quarantined(JobError::Panicked(msg)) => {
            assert!(
                msg.contains("deliberate panic from job 1"),
                "panic payload must be preserved, got: {msg}"
            );
        }
        other => panic!("expected a quarantined panic, got {other:?}"),
    }
    // The healthy jobs are untouched by their neighbor's crash.
    assert_eq!(report.jobs[0].outcome.value(), Some(&10));
    assert_eq!(report.jobs[2].outcome.value(), Some(&30));
    assert_eq!(report.metrics.counter("pool.attempts.panicked"), 1);
}

#[test]
fn a_hanging_job_blows_its_deadline_and_the_worker_is_respawned() {
    let jobs = vec![
        job("hang", JobKind::HangFor { ms: 10_000 }),
        job("after-0", JobKind::Ok { value: 1 }),
        job("after-1", JobKind::Ok { value: 2 }),
    ];
    let config = PoolConfig {
        workers: 1, // the hang must not starve the jobs queued behind it
        deadline: Some(Duration::from_millis(100)),
        watchdog_poll: Duration::from_millis(5),
        ..PoolConfig::default()
    };
    let report = run_sweep(&config, jobs);
    assert_eq!(report.completed(), 2);
    assert_eq!(report.quarantined, vec![0]);
    match &report.jobs[0].outcome {
        JobOutcome::Quarantined(JobError::TimedOut { deadline_ms }) => {
            assert_eq!(*deadline_ms, 100);
        }
        other => panic!("expected a quarantined timeout, got {other:?}"),
    }
    assert_eq!(report.jobs[0].attempts, 1);
    // The abandoned worker was replaced so the rest of the queue drained.
    assert!(report.workers_respawned >= 1);
    assert_eq!(report.jobs[1].outcome.value(), Some(&1));
    assert_eq!(report.jobs[2].outcome.value(), Some(&2));
}

#[test]
fn transient_failures_retry_then_succeed_with_backoff_bookkeeping() {
    let jobs = vec![job("flaky", JobKind::FailNTimes { n: 2, value: 99 })];
    let config = PoolConfig {
        max_attempts: 4,
        backoff_base_ms: 10,
        sleep_on_backoff: false, // bookkeeping only: the test is instant
        ..PoolConfig::default()
    };
    let report = run_sweep(&config, jobs);
    let rec = &report.jobs[0];
    assert_eq!(rec.outcome.value(), Some(&99));
    assert_eq!(rec.attempts, 3, "two failures then one success");
    // Doubling backoff: 10 ms after attempt 1, 20 ms after attempt 2.
    assert_eq!(rec.backoff_ms, 30);
    assert_eq!(report.retries, 2);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.metrics.counter("pool.attempts"), 3);
    assert_eq!(report.metrics.counter("pool.attempts.failed"), 2);
    assert_eq!(report.metrics.counter("pool.attempts.completed"), 1);
}

#[test]
fn retry_exhaustion_on_a_typed_error_is_failed_not_quarantined() {
    let jobs = vec![job("doomed", JobKind::FailNTimes { n: 10, value: 0 })];
    let config = PoolConfig {
        max_attempts: 3,
        backoff_base_ms: 5,
        ..PoolConfig::default()
    };
    let report = run_sweep(&config, jobs);
    let rec = &report.jobs[0];
    assert_eq!(rec.attempts, 3);
    // 5 ms + 10 ms of (bookkept) backoff across the two retries.
    assert_eq!(rec.backoff_ms, 15);
    match &rec.outcome {
        JobOutcome::Failed(JobError::Failed(msg)) => {
            assert!(msg.contains("attempt 3"), "last error is kept, got: {msg}");
        }
        other => panic!("expected a typed Failed outcome, got {other:?}"),
    }
    // A typed failure never endangered a worker: no quarantine.
    assert!(report.quarantined.is_empty());
    assert_eq!(report.workers_respawned, 0);
}

#[test]
fn a_repeatedly_panicking_job_is_quarantined_after_exhaustion() {
    let jobs = vec![
        job("crasher", JobKind::PanicAfter { ms: 0 }),
        job("bystander", JobKind::Ok { value: 7 }),
    ];
    let config = PoolConfig {
        workers: 2,
        max_attempts: 3,
        backoff_base_ms: 1,
        ..PoolConfig::default()
    };
    let report = run_sweep(&config, jobs);
    let rec = &report.jobs[0];
    assert_eq!(rec.attempts, 3, "panics are retried up to the budget");
    assert!(matches!(
        rec.outcome,
        JobOutcome::Quarantined(JobError::Panicked(_))
    ));
    assert_eq!(report.quarantined, vec![0]);
    assert_eq!(report.retries, 2);
    assert_eq!(report.jobs[1].outcome.value(), Some(&7));
    assert_eq!(report.metrics.counter("pool.attempts.panicked"), 3);
}

#[test]
fn racing_completions_against_the_deadline_never_wedge_the_sweep() {
    // Regression: a worker that finished its attempt just as the watchdog
    // reported it expired could be abandoned *after* it had dequeued its
    // next attempt — that attempt's result was then discarded and never
    // re-queued, so the sweep spun forever one job short. Jobs here run
    // for almost exactly the deadline, so Done and Expired race
    // constantly; the sweep must still adjudicate every job.
    let jobs: Vec<Job<u64>> = (0..48u64)
        .map(|i| {
            Job::new(format!("edge-{i}"), move |ctx| {
                let start = std::time::Instant::now();
                while start.elapsed() < Duration::from_millis(20) {
                    if ctx.cancelled() {
                        return Err("cancelled by watchdog".to_string());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(i)
            })
        })
        .collect();
    let config = PoolConfig {
        workers: 4,
        deadline: Some(Duration::from_millis(20)),
        watchdog_poll: Duration::from_millis(1),
        max_attempts: 2,
        ..PoolConfig::default()
    };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_sweep(&config, jobs));
    });
    let report = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("sweep wedged: a job racing the deadline was lost without adjudication");
    assert_eq!(report.jobs.len(), 48);
    for rec in &report.jobs {
        match &rec.outcome {
            JobOutcome::Completed(v) => assert_eq!(*v, rec.id),
            JobOutcome::Quarantined(JobError::TimedOut { .. }) => {}
            other => panic!("job {} ended unexpectedly: {other:?}", rec.id),
        }
    }
}

#[test]
fn mixed_sweep_matches_the_issue_acceptance_scenario() {
    // The acceptance criterion: one panicking job plus one hanging job in
    // a sweep must both come back as typed failures with attempt counts,
    // and every other job's result must be identical to a serial run.
    let build = || {
        vec![
            job("ok-0", JobKind::Ok { value: 100 }),
            job("panics", JobKind::PanicAfter { ms: 1 }),
            job("ok-2", JobKind::Ok { value: 102 }),
            job("hangs", JobKind::HangFor { ms: 10_000 }),
            job("ok-4", JobKind::Ok { value: 104 }),
        ]
    };
    let config = |workers| PoolConfig {
        workers,
        deadline: Some(Duration::from_millis(150)),
        watchdog_poll: Duration::from_millis(5),
        ..PoolConfig::default()
    };
    let parallel = run_sweep(&config(4), build());
    let serial = run_sweep(&config(1), build());
    for report in [&parallel, &serial] {
        assert_eq!(report.jobs.len(), 5);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.quarantined, vec![1, 3]);
        assert!(matches!(
            report.jobs[1].outcome,
            JobOutcome::Quarantined(JobError::Panicked(_))
        ));
        assert_eq!(report.jobs[1].attempts, 1);
        assert!(matches!(
            report.jobs[3].outcome,
            JobOutcome::Quarantined(JobError::TimedOut { .. })
        ));
        assert_eq!(report.jobs[3].attempts, 1);
    }
    // Deterministic fan-out: the survivable results are identical across
    // worker counts, completion order notwithstanding.
    let surviving = |r: &oasis_engine::pool::SweepReport<u64>| {
        r.jobs
            .iter()
            .map(|j| {
                (
                    j.id,
                    j.label.clone(),
                    j.outcome.value().copied(),
                    j.attempts,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(surviving(&parallel), surviving(&serial));
}

#[test]
fn a_pre_raised_stop_halts_every_job_without_dispatching() {
    let stop = StopHandle::new();
    stop.stop();
    let mut dispatched = Vec::new();
    let mut on_dispatch = |id: u64, attempt: u32| dispatched.push((id, attempt));
    let report = run_sweep_controlled(
        &PoolConfig::with_workers(2),
        vec![
            job("never-0", JobKind::Ok { value: 1 }),
            job("never-1", JobKind::Ok { value: 2 }),
        ],
        SweepControl {
            stop: Some(stop),
            on_dispatch: Some(&mut on_dispatch),
            on_adjudicated: None,
        },
    );
    assert!(report.interrupted);
    assert!(report.jobs.is_empty(), "nothing was adjudicated");
    assert_eq!(report.halted, vec![0, 1], "both jobs drained unrecorded");
    // The initial fan-out observed the dispatches before the supervisor
    // noticed the stop — exactly what a write-ahead journal needs: an
    // attempt may be recorded and then never adjudicated, never the
    // reverse.
    assert_eq!(dispatched, vec![(0, 1), (1, 1)]);
}

#[test]
fn a_mid_sweep_stop_drains_the_queue_and_keeps_finished_work() {
    // Worker 1 + a gate inside job 0: the sweep is stopped while job 0 is
    // in flight, so job 0 adjudicates normally and jobs 1..4 are halted.
    let stop = StopHandle::new();
    let gate = {
        let stop = stop.clone();
        move |_ctx: &oasis_engine::pool::JobCtx| {
            stop.stop();
            // Give the supervisor time to notice before finishing, so the
            // queued jobs are reliably drained rather than dispatched.
            std::thread::sleep(Duration::from_millis(50));
            Ok(42u64)
        }
    };
    let mut jobs = vec![Job::new("gate", gate)];
    for i in 1..4u64 {
        jobs.push(job(&format!("queued-{i}"), JobKind::Ok { value: i }));
    }
    let mut adjudicated = Vec::new();
    let mut on_adjudicated =
        |rec: &oasis_engine::pool::JobRecord<u64>| adjudicated.push((rec.id, rec.attempts));
    let report = run_sweep_controlled(
        &PoolConfig::with_workers(1),
        jobs,
        SweepControl {
            stop: Some(stop.clone()),
            on_dispatch: None,
            on_adjudicated: Some(&mut on_adjudicated),
        },
    );
    assert!(report.interrupted);
    assert!(stop.is_stopped());
    assert_eq!(report.jobs.len(), 1, "only the in-flight job finished");
    assert_eq!(report.jobs[0].outcome.value(), Some(&42));
    assert_eq!(report.halted, vec![1, 2, 3]);
    assert_eq!(adjudicated, vec![(0, 1)]);
}

#[test]
fn stop_suppresses_retries_but_adjudicates_the_failure() {
    // The job fails every attempt and raises the stop during the first:
    // instead of burning the remaining attempts the supervisor finalizes
    // it as Failed with attempts=1.
    let stop = StopHandle::new();
    let flaky = {
        let stop = stop.clone();
        move |ctx: &oasis_engine::pool::JobCtx| -> Result<u64, String> {
            stop.stop();
            std::thread::sleep(Duration::from_millis(30));
            Err(format!("transient failure on attempt {}", ctx.attempt))
        }
    };
    let config = PoolConfig {
        workers: 1,
        max_attempts: 5,
        backoff_base_ms: 1,
        ..PoolConfig::default()
    };
    let report = run_sweep_controlled(
        &config,
        vec![Job::new("flaky", flaky)],
        SweepControl {
            stop: Some(stop),
            on_dispatch: None,
            on_adjudicated: None,
        },
    );
    assert!(report.interrupted);
    let rec = &report.jobs[0];
    assert_eq!(rec.attempts, 1, "no retry after the stop was raised");
    assert!(matches!(
        rec.outcome,
        JobOutcome::Failed(JobError::Failed(_))
    ));
    assert_eq!(report.retries, 0);
}

#[test]
fn an_unstopped_controlled_sweep_matches_run_sweep_and_journals_every_step() {
    let build = || {
        vec![
            job("ok", JobKind::Ok { value: 5 }),
            job("flaky", JobKind::FailNTimes { n: 1, value: 6 }),
        ]
    };
    let config = PoolConfig {
        workers: 2,
        max_attempts: 3,
        backoff_base_ms: 1,
        sleep_on_backoff: false,
        ..PoolConfig::default()
    };
    let mut dispatched = Vec::new();
    let mut adjudicated = Vec::new();
    let mut on_dispatch = |id: u64, attempt: u32| dispatched.push((id, attempt));
    let mut on_adjudicated =
        |rec: &oasis_engine::pool::JobRecord<u64>| adjudicated.push((rec.id, rec.attempts));
    let controlled = run_sweep_controlled(
        &config,
        build(),
        SweepControl {
            stop: None,
            on_dispatch: Some(&mut on_dispatch),
            on_adjudicated: Some(&mut on_adjudicated),
        },
    );
    let plain = run_sweep(&config, build());
    assert!(!controlled.interrupted);
    assert!(controlled.halted.is_empty());
    assert_eq!(controlled.jobs.len(), plain.jobs.len());
    for (c, p) in controlled.jobs.iter().zip(&plain.jobs) {
        assert_eq!(c.outcome.value(), p.outcome.value());
        assert_eq!(c.attempts, p.attempts);
    }
    // Every attempt produced exactly one Dispatched observation, in
    // attempt order per job, and every job exactly one adjudication.
    dispatched.sort_unstable();
    assert_eq!(dispatched, vec![(0, 1), (1, 1), (1, 2)]);
    adjudicated.sort_unstable();
    assert_eq!(adjudicated, vec![(0, 1), (1, 2)]);
}
