//! One module per evaluated application (Table II).
//!
//! Shared conventions:
//!
//! * object sizes are fractions of the configured footprint, so Table III's
//!   scaled inputs and the `small` test profiles reuse the same generators;
//! * data is partitioned owner-computes: GPU *g* owns contiguous page block
//!   *g* of each partitioned object ([`crate::trace::block`]);
//! * one [`Phase`](crate::trace::Phase) = one kernel launch (an *explicit*
//!   phase); iterative algorithms whose iterations live inside one kernel
//!   (BFS, PR, ST, FFT) embed their *implicit* phases in a single stream.

pub mod bfs;
pub mod c2d;
pub mod dnn;
pub mod fft;
pub mod i2c;
pub mod mm;
pub mod mt;
pub mod pr;
pub mod st;

use oasis_mem::types::ObjectId;

use crate::spec::WorkloadParams;
use crate::trace::TraceBuilder;

/// Minimum object size (one 4 KiB page, padded to 64 KiB for realism of
/// small parameter buffers).
pub(crate) const SMALL_OBJECT: u64 = 64 * 1024;

/// `frac` (per mille) of the configured footprint, at least one page.
pub(crate) fn part(params: &WorkloadParams, per_mille: u64) -> u64 {
    (params.footprint_bytes() * per_mille / 1000).max(4096)
}

/// Allocates a small parameter/scratch object.
pub(crate) fn alloc_small(b: &mut TraceBuilder, name: &str) -> ObjectId {
    b.alloc(name, SMALL_OBJECT)
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::spec::{App, WorkloadParams};
    use crate::trace::Trace;

    /// Common sanity checks every generator's test applies.
    pub(crate) fn check_table2_invariants(app: App, trace: &Trace) {
        assert_eq!(
            trace.objects.len(),
            app.object_count(),
            "{app}: object count must match Table II"
        );
        assert_eq!(trace.gpu_count, 4);
        let footprint = trace.footprint_bytes();
        let target = WorkloadParams::paper(app, 4).footprint_bytes();
        assert!(
            footprint <= target + (app.object_count() as u64) * 64 * 1024,
            "{app}: footprint {footprint} exceeds Table II target {target}"
        );
        assert!(
            footprint * 10 >= target * 8,
            "{app}: footprint {footprint} far below Table II target {target}"
        );
        assert!(trace.total_accesses() > 0);
        // Every phase stream references valid objects and offsets.
        for ph in &trace.phases {
            for stream in &ph.per_gpu {
                for a in stream {
                    let obj = &trace.objects[a.obj.0 as usize];
                    assert!(a.offset < obj.bytes, "{app}: offset out of bounds");
                }
            }
        }
    }
}
