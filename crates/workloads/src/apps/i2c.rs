//! I2C — Image to Column (DNN-Mark). Scatter-gather; 3 objects; 80 MB.
//!
//! Fig. 5's on-touch showcase: `I2C_Output` is a private(-per-GPU)
//! write-only object receiving ~75% of all accesses, so promptly migrating
//! pages to their single writer (on-touch) is optimal. `I2C_Input` is the
//! smaller shared-read gather source.

use oasis_mem::types::AccessKind;

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Generates the I2C trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("I2C", g);
    let input = b.alloc("I2C_Input", part(params, 240));
    let output = b.alloc("I2C_Output", part(params, 720));
    let _pars = alloc_small(&mut b, "I2C_Params");
    let in_pages = b.pages_of(input);
    let out_pages = b.pages_of(output);

    b.begin_phase("im2col");
    for gpu in 0..g {
        // Gather: overlapping column windows make every GPU read the whole
        // image (shared-read), lightly.
        b.sweep_rotated(gpu, input, 0..in_pages, AccessKind::Read, 3);
        // The unrolled column matrix is written privately, heavily (two
        // sweeps model the multi-channel unroll).
        let blk = block(out_pages, g, gpu);
        b.seq(gpu, output, blk.clone(), AccessKind::Write, 6);
        b.seq(gpu, output, blk, AccessKind::Write, 6);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::I2c, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::I2c, &paper_trace());
    }

    #[test]
    fn output_draws_about_three_quarters_of_accesses() {
        let t = paper_trace();
        let mut out = 0usize;
        let mut total = 0usize;
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                total += 1;
                if a.obj.0 == 1 {
                    out += 1;
                }
            }
        }
        let share = out as f64 / total as f64;
        assert!((0.62..=0.85).contains(&share), "output share {share}");
    }

    #[test]
    fn output_blocks_are_private() {
        let t = paper_trace();
        let mut seen: Vec<std::collections::HashSet<u64>> = Vec::new();
        for stream in &t.phases[0].per_gpu {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 1)
                .map(|a| a.offset / 4096)
                .collect();
            for earlier in &seen {
                assert!(earlier.is_disjoint(&pages));
            }
            seen.push(pages);
        }
    }

    #[test]
    fn output_is_write_only_input_read_only() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                match a.obj.0 {
                    0 => assert!(!a.kind.is_write()),
                    1 => assert!(a.kind.is_write()),
                    _ => {}
                }
            }
        }
    }
}
