//! DNN training workloads (DNN-Mark): LeNet, VGG-16, ResNet-18.
//!
//! Data-parallel training across GPUs, mirroring the paper's setup (MNIST
//! for LeNet, Tiny-ImageNet-200 for VGG16/ResNet18 — dataset *contents*
//! are irrelevant to page management; tensor shapes and the data-parallel
//! partitioning are what matter):
//!
//! * **weights** are read by every GPU each forward/backward pass
//!   (shared-read-only — duplication territory);
//! * **activations** are sharded by batch (private per GPU — on-touch
//!   territory);
//! * **weight gradients** are accumulated by every GPU
//!   (shared-write — access-counter territory);
//! * every layer's forward and backward is a separate kernel launch, so
//!   these apps stress OASIS's explicit-phase resets (LeNet: 129 launches,
//!   the paper's "129 explicit phase changes").

use oasis_mem::types::{AccessKind, ObjectId};

use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Small per-layer tensors (biases, momenta, workspaces).
const SMALL_TENSOR: u64 = 16 * 1024;

/// Architecture description driving the generator.
#[derive(Debug, Clone, Copy)]
pub struct DnnSpec {
    /// Abbreviation used in reports.
    pub name: &'static str,
    /// Layer count.
    pub layers: usize,
    /// Mini-batches trained (each is a full fwd+bwd sweep of launches).
    pub batches: usize,
    /// Extra miscellaneous objects beyond `layers * 14 + 3`, to match the
    /// paper's Table II object counts.
    pub extra_misc: usize,
    /// Per-mille of the footprint held by weights (and the same again by
    /// weight gradients). LeNet's weights are tiny relative to its
    /// activations; VGG-16's dominate.
    pub weight_per_mille: u64,
}

/// LeNet: 8 layers × 8 batches → 129 launches, 115 objects.
pub const LENET: DnnSpec = DnnSpec {
    name: "LeNet",
    layers: 8,
    batches: 8,
    extra_misc: 0,
    weight_per_mille: 30,
};

/// VGG-16: 16 layers × 2 batches → 65 launches, 240 objects.
pub const VGG16: DnnSpec = DnnSpec {
    name: "VGG16",
    layers: 16,
    batches: 2,
    extra_misc: 13,
    weight_per_mille: 180,
};

/// ResNet-18: 18 layers × 2 batches → 73 launches, 263 objects.
pub const RESNET18: DnnSpec = DnnSpec {
    name: "ResNet18",
    layers: 18,
    batches: 2,
    extra_misc: 8,
    weight_per_mille: 110,
};

/// Per-layer tensor handles.
#[derive(Debug, Clone, Copy)]
struct Layer {
    w: ObjectId,
    b: ObjectId,
    z: ObjectId,
    a: ObjectId,
    dw: ObjectId,
    db: ObjectId,
    dz: ObjectId,
    da: ObjectId,
    mw: ObjectId,
    mb: ObjectId,
    ws_fwd: ObjectId,
    ws_bwd: ObjectId,
    bn_scale: ObjectId,
    bn_shift: ObjectId,
}

/// Generates the LeNet trace.
pub fn generate_lenet(params: &WorkloadParams) -> Trace {
    generate(LENET, params)
}

/// Generates the VGG-16 trace.
pub fn generate_vgg16(params: &WorkloadParams) -> Trace {
    generate(VGG16, params)
}

/// Generates the ResNet-18 trace.
pub fn generate_resnet18(params: &WorkloadParams) -> Trace {
    generate(RESNET18, params)
}

/// Generates a training trace for an arbitrary [`DnnSpec`].
pub fn generate(spec: DnnSpec, params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let f = params.footprint_bytes();
    let l = spec.layers as u64;
    let mut b = TraceBuilder::new(spec.name, g);

    // Big tensors get per-layer slices of the footprint fractions; small
    // tensors are fixed-size.
    let per_layer = |per_mille: u64| (f * per_mille / 1000 / l).max(4096);
    // Big-tensor budget: weights and gradients take `weight_per_mille`
    // each; the remainder splits across activations and deltas.
    let wpm = spec.weight_per_mille;
    let rest = 900u64.saturating_sub(2 * wpm).max(100);
    let layers: Vec<Layer> = (0..spec.layers)
        .map(|i| Layer {
            w: b.alloc(format!("W{i}"), per_layer(wpm)),
            b: b.alloc(format!("b{i}"), SMALL_TENSOR),
            z: b.alloc(format!("Z{i}"), per_layer(rest * 20 / 100)),
            a: b.alloc(format!("A{i}"), per_layer(rest * 50 / 100)),
            dw: b.alloc(format!("dW{i}"), per_layer(wpm)),
            db: b.alloc(format!("db{i}"), SMALL_TENSOR),
            dz: b.alloc(format!("dZ{i}"), per_layer(rest * 12 / 100)),
            da: b.alloc(format!("dA{i}"), per_layer(rest * 18 / 100)),
            mw: b.alloc(format!("mW{i}"), SMALL_TENSOR),
            mb: b.alloc(format!("mb{i}"), SMALL_TENSOR),
            ws_fwd: b.alloc(format!("wsF{i}"), SMALL_TENSOR),
            ws_bwd: b.alloc(format!("wsB{i}"), SMALL_TENSOR),
            bn_scale: b.alloc(format!("bnS{i}"), SMALL_TENSOR),
            bn_shift: b.alloc(format!("bnB{i}"), SMALL_TENSOR),
        })
        .collect();
    let input = b.alloc("Input", (f * 60 / 1000).max(4096));
    let labels = b.alloc("Labels", SMALL_TENSOR);
    let loss = b.alloc("Loss", SMALL_TENSOR);
    let misc: Vec<ObjectId> = (0..spec.extra_misc)
        .map(|i| b.alloc(format!("misc{i}"), SMALL_TENSOR))
        .collect();

    let pages = |b: &TraceBuilder, o: ObjectId| b.pages_of(o);

    for _batch in 0..spec.batches {
        // Forward pass: one launch per layer.
        for (i, lay) in layers.iter().enumerate() {
            b.begin_phase(format!("fwd_l{i}"));
            let w_pages = pages(&b, lay.w);
            let b_pages = pages(&b, lay.b);
            let prev_a = if i == 0 { input } else { layers[i - 1].a };
            let prev_pages = pages(&b, prev_a);
            let z_pages = pages(&b, lay.z);
            let a_pages = pages(&b, lay.a);
            let bn_pages = pages(&b, lay.bn_scale);
            for gpu in 0..g {
                b.sweep_rotated(gpu, lay.w, 0..w_pages, AccessKind::Read, 2);
                b.seq(gpu, lay.b, 0..b_pages, AccessKind::Read, 1);
                b.seq(gpu, lay.bn_scale, 0..bn_pages, AccessKind::Read, 1);
                b.seq(
                    gpu,
                    lay.bn_shift,
                    0..pages(&b, lay.bn_shift),
                    AccessKind::Read,
                    1,
                );
                b.seq(gpu, prev_a, block(prev_pages, g, gpu), AccessKind::Read, 2);
                b.seq(gpu, lay.z, block(z_pages, g, gpu), AccessKind::Write, 2);
                b.seq(gpu, lay.a, block(a_pages, g, gpu), AccessKind::Write, 2);
                let ws = pages(&b, lay.ws_fwd);
                b.seq(gpu, lay.ws_fwd, block(ws, g, gpu), AccessKind::Write, 1);
            }
        }
        // Backward pass: one launch per layer, reverse order.
        for (i, lay) in layers.iter().enumerate().rev() {
            b.begin_phase(format!("bwd_l{i}"));
            let w_pages = pages(&b, lay.w);
            let z_pages = pages(&b, lay.z);
            let dw_pages = pages(&b, lay.dw);
            let db_pages = pages(&b, lay.db);
            let dz_pages = pages(&b, lay.dz);
            let da_pages = pages(&b, lay.da);
            let prev_a = if i == 0 { input } else { layers[i - 1].a };
            let prev_pages = pages(&b, prev_a);
            for gpu in 0..g {
                if i == spec.layers - 1 {
                    let lp = pages(&b, labels);
                    b.seq(gpu, labels, 0..lp, AccessKind::Read, 1);
                    let lo = pages(&b, loss);
                    b.seq(gpu, loss, 0..lo, AccessKind::Write, 1);
                }
                b.seq(gpu, lay.z, block(z_pages, g, gpu), AccessKind::Read, 2);
                b.seq(gpu, prev_a, block(prev_pages, g, gpu), AccessKind::Read, 2);
                b.sweep_rotated(gpu, lay.w, 0..w_pages, AccessKind::Read, 2);
                b.seq(gpu, lay.da, block(da_pages, g, gpu), AccessKind::Read, 2);
                b.seq(gpu, lay.dz, block(dz_pages, g, gpu), AccessKind::Write, 2);
                if i > 0 {
                    let pda = pages(&b, layers[i - 1].da);
                    b.seq(
                        gpu,
                        layers[i - 1].da,
                        block(pda, g, gpu),
                        AccessKind::Write,
                        2,
                    );
                }
                // Gradient accumulation: every GPU writes the whole dW/db
                // (shared-write).
                b.sweep_rotated(gpu, lay.dw, 0..dw_pages, AccessKind::Write, 1);
                b.seq(gpu, lay.db, 0..db_pages, AccessKind::Write, 1);
                let ws = pages(&b, lay.ws_bwd);
                b.seq(gpu, lay.ws_bwd, block(ws, g, gpu), AccessKind::Write, 1);
            }
        }
    }

    // Final sharded weight update.
    b.begin_phase("weight_update");
    for gpu in 0..g {
        for lay in &layers {
            let w_pages = pages(&b, lay.w);
            let dw_pages = pages(&b, lay.dw);
            let m_pages = pages(&b, lay.mw);
            b.seq(gpu, lay.dw, block(dw_pages, g, gpu), AccessKind::Read, 1);
            b.seq(gpu, lay.mw, block(m_pages, g, gpu), AccessKind::Write, 1);
            b.seq(
                gpu,
                lay.mb,
                block(pages(&b, lay.mb), g, gpu),
                AccessKind::Write,
                1,
            );
            b.seq(gpu, lay.w, block(w_pages, g, gpu), AccessKind::Write, 2);
        }
        for &m in &misc {
            let mp = pages(&b, m);
            b.seq(gpu, m, block(mp, g, gpu), AccessKind::Read, 1);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    #[test]
    fn lenet_matches_table2_and_has_129_launches() {
        let t = generate_lenet(&WorkloadParams::paper(App::LeNet, 4));
        check_table2_invariants(App::LeNet, &t);
        assert_eq!(t.phases.len(), 129, "the paper reports 129 launches");
    }

    #[test]
    fn vgg16_matches_table2() {
        let t = generate_vgg16(&WorkloadParams::small(App::Vgg16, 4));
        assert_eq!(t.objects.len(), App::Vgg16.object_count());
        assert_eq!(t.phases.len(), 65);
    }

    #[test]
    fn resnet18_matches_table2() {
        let t = generate_resnet18(&WorkloadParams::small(App::ResNet18, 4));
        assert_eq!(t.objects.len(), App::ResNet18.object_count());
        assert_eq!(t.phases.len(), 73);
    }

    #[test]
    fn weights_shared_read_in_forward_phases() {
        let t = generate_lenet(&WorkloadParams::small(App::LeNet, 4));
        let fwd0 = t.phases.iter().find(|p| p.name == "fwd_l0").unwrap();
        for stream in &fwd0.per_gpu {
            // Object 0 is W0: read by every GPU, never written here.
            let w: Vec<_> = stream.iter().filter(|a| a.obj.0 == 0).collect();
            assert!(!w.is_empty());
            assert!(w.iter().all(|a| !a.kind.is_write()));
        }
    }

    #[test]
    fn gradients_shared_written_in_backward_phases() {
        let t = generate_lenet(&WorkloadParams::small(App::LeNet, 4));
        let bwd0 = t.phases.iter().find(|p| p.name == "bwd_l0").unwrap();
        // Object 4 is dW0: all GPUs write all of it.
        let dw_pages: std::collections::HashSet<u64> = bwd0.per_gpu[0]
            .iter()
            .filter(|a| a.obj.0 == 4 && a.kind.is_write())
            .map(|a| a.offset / 4096)
            .collect();
        assert!(!dw_pages.is_empty());
        for stream in &bwd0.per_gpu[1..] {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 4 && a.kind.is_write())
                .map(|a| a.offset / 4096)
                .collect();
            assert_eq!(pages, dw_pages, "gradient accumulation overlaps fully");
        }
    }

    #[test]
    fn activations_are_private_per_gpu() {
        let t = generate_lenet(&WorkloadParams::small(App::LeNet, 4));
        let fwd0 = t.phases.iter().find(|p| p.name == "fwd_l0").unwrap();
        // Object 3 is A0: written in disjoint blocks.
        let mut seen: Vec<std::collections::HashSet<u64>> = Vec::new();
        for stream in &fwd0.per_gpu {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 3)
                .map(|a| a.offset / 4096)
                .collect();
            for earlier in &seen {
                assert!(earlier.is_disjoint(&pages));
            }
            seen.push(pages);
        }
    }

    #[test]
    fn phase_counts_scale_with_batches() {
        // launches = batches * 2 * layers + 1
        assert_eq!(LENET.batches * 2 * LENET.layers + 1, 129);
        assert_eq!(VGG16.batches * 2 * VGG16.layers + 1, 65);
        assert_eq!(RESNET18.batches * 2 * RESNET18.layers + 1, 73);
    }
}
