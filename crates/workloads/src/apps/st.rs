//! ST — Stencil 2D (SHOC). Adjacent; 3 objects; 32 MB.
//!
//! The implicit-phase showcase of Fig. 7: a single `Stencil2D` kernel runs
//! 20 iterations; each iteration reads `currData` and writes `newData`,
//! then the buffers swap. Interior rows are private to their owning GPU;
//! deep halo regions at block boundaries are gathered by the neighbor,
//! making both buffers shared-rw-mix over the whole run but cleanly
//! read-only/write-only within each iteration.

use oasis_mem::types::{AccessKind, ObjectId};

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Iterations inside the single explicit kernel (the paper counts 20
/// implicit phases for ST).
pub const ITERATIONS: usize = 20;

/// Generates the ST trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("ST", g);
    let data1 = b.alloc("ST_Data1", part(params, 470));
    let data2 = b.alloc("ST_Data2", part(params, 470));
    let _pars = alloc_small(&mut b, "ST_Params");
    let pages = b.pages_of(data1).min(b.pages_of(data2));

    b.begin_phase("Stencil2D");
    for iter in 0..ITERATIONS {
        let (src, dst): (ObjectId, ObjectId) = if iter % 2 == 0 {
            (data1, data2)
        } else {
            (data2, data1)
        };
        for gpu in 0..g {
            let own = block(pages, g, gpu);
            let halo = ((own.end - own.start) / 8).max(1);
            // Interior pass: read own rows of src (private-read).
            b.seq(gpu, src, own.clone(), AccessKind::Read, 2);
            // Halo gather from the neighbors' src blocks (shared-read).
            if gpu > 0 {
                let left = block(pages, g, gpu - 1);
                b.seq(gpu, src, left.end - halo..left.end, AccessKind::Read, 24);
            }
            if gpu + 1 < g {
                let right = block(pages, g, gpu + 1);
                b.seq(
                    gpu,
                    src,
                    right.start..right.start + halo,
                    AccessKind::Read,
                    24,
                );
            }
            // Write own rows of dst (private-write; halo rows included, so
            // the neighbor's next-iteration read makes them shared-rw-mix).
            b.seq(gpu, dst, own, AccessKind::Write, 3);
        }
        // The in-kernel iteration ends with a grid-wide sync before the
        // buffers swap.
        b.barrier();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::St, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::St, &paper_trace());
    }

    #[test]
    fn single_explicit_phase_with_swapped_buffers() {
        let t = paper_trace();
        assert_eq!(t.phases.len(), 1, "ST has one explicit kernel");
        // Both data buffers are read AND written over the run (rw-mix
        // overall)...
        for obj in [0u16, 1] {
            let mut reads = false;
            let mut writes = false;
            for stream in &t.phases[0].per_gpu {
                for a in stream.iter().filter(|a| a.obj.0 == obj) {
                    if a.kind.is_write() {
                        writes = true;
                    } else {
                        reads = true;
                    }
                }
            }
            assert!(reads && writes, "obj {obj} must be rw-mix overall");
        }
    }

    #[test]
    fn within_iteration_buffers_are_read_xor_write() {
        // Fig. 7: in even iterations Data1 is only read and Data2 only
        // written; odd iterations flip. Verify on GPU0's stream by walking
        // iteration groups: a write to Data1 never precedes a read of
        // Data1 within the same direction window.
        let t = paper_trace();
        let s = &t.phases[0].per_gpu[0];
        // Split the stream at points where the src object flips.
        let mut direction_of_data1_read = Vec::new();
        let mut cur: Option<bool> = None;
        for a in s.iter().filter(|a| a.obj.0 == 0) {
            let is_read = !a.kind.is_write();
            if cur != Some(is_read) {
                direction_of_data1_read.push(is_read);
                cur = Some(is_read);
            }
        }
        // Data1 alternates read-phase / write-phase repeatedly.
        assert!(direction_of_data1_read.len() >= ITERATIONS - 2);
        for w in direction_of_data1_read.windows(2) {
            assert_ne!(w[0], w[1], "direction must alternate");
        }
    }

    #[test]
    fn halo_pages_are_shared_between_neighbors() {
        let t = paper_trace();
        // GPU1 reads some pages of GPU0's block (the halo).
        let pages = 470 * 32 * 1024 * 1024 / 1000 / 4096;
        let gpu0_block = block(pages, 4, 0);
        let gpu1_reads_gpu0: bool = t.phases[0].per_gpu[1]
            .iter()
            .filter(|a| a.obj.0 == 0 && !a.kind.is_write())
            .any(|a| gpu0_block.contains(&(a.offset / 4096)));
        assert!(gpu1_reads_gpu0, "neighbor halo gather missing");
    }
}
