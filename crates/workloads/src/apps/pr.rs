//! PR — Page Rank (Hetero-Mark). Random; 6 objects; 32 MB.
//!
//! Pull-style PageRank: each iteration, every GPU updates its own
//! destination-rank block (private-write) by gathering source ranks of
//! random in-neighbors spread across all partitions (shared-read, random).
//! Rank buffers swap every iteration — the same src-then-dst alternation
//! that gives ST its implicit phases, under a random sharing pattern.

use oasis_mem::types::{AccessKind, ObjectId};

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};
use oasis_engine::SimRng;

/// PageRank iterations inside the kernel.
pub const ITERATIONS: usize = 10;

/// Generates the PR trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut rng = SimRng::seed_from_u64(params.seed);
    let mut b = TraceBuilder::new("PR", g);
    let rank_a = b.alloc("PR_RankA", part(params, 140));
    let rank_b = b.alloc("PR_RankB", part(params, 140));
    let edges = b.alloc("PR_Edges", part(params, 430));
    let offsets = b.alloc("PR_Offsets", part(params, 120));
    let degrees = b.alloc("PR_Degrees", part(params, 120));
    let _pars = alloc_small(&mut b, "PR_Params");
    let rank_pages = b.pages_of(rank_a).min(b.pages_of(rank_b));
    let edge_pages = b.pages_of(edges);
    let off_pages = b.pages_of(offsets);
    let deg_pages = b.pages_of(degrees);

    b.begin_phase("PageRankUpdateGpu");
    for iter in 0..ITERATIONS {
        let (src, dst): (ObjectId, ObjectId) = if iter % 2 == 0 {
            (rank_a, rank_b)
        } else {
            (rank_b, rank_a)
        };
        for gpu in 0..g {
            // CSR walk over the GPU's own vertex range (private-read).
            b.seq(gpu, offsets, block(off_pages, g, gpu), AccessKind::Read, 2);
            b.seq(gpu, edges, block(edge_pages, g, gpu), AccessKind::Read, 3);
            b.seq(gpu, degrees, block(deg_pages, g, gpu), AccessKind::Read, 1);
            // Random gather of in-neighbor ranks across every partition.
            b.random(gpu, src, 0..rank_pages, 900, AccessKind::Read, 4, &mut rng);
            // Private write of the new ranks.
            b.seq(gpu, dst, block(rank_pages, g, gpu), AccessKind::Write, 4);
        }
        // Ranks swap only after every GPU finishes the iteration.
        b.barrier();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::Pr, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::Pr, &paper_trace());
    }

    #[test]
    fn rank_buffers_alternate_direction() {
        let t = paper_trace();
        // RankA is read in even iterations, written in odd ones.
        let s = &t.phases[0].per_gpu[0];
        let mut directions = Vec::new();
        let mut cur = None;
        for a in s.iter().filter(|a| a.obj.0 == 0) {
            let is_read = !a.kind.is_write();
            if cur != Some(is_read) {
                directions.push(is_read);
                cur = Some(is_read);
            }
        }
        assert!(directions.len() >= ITERATIONS - 1);
    }

    #[test]
    fn edges_partitioned_privately() {
        let t = paper_trace();
        let mut seen: Vec<std::collections::HashSet<u64>> = Vec::new();
        for stream in &t.phases[0].per_gpu {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 2)
                .map(|a| a.offset / 4096)
                .collect();
            for earlier in &seen {
                assert!(earlier.is_disjoint(&pages), "edge blocks overlap");
            }
            seen.push(pages);
        }
    }

    #[test]
    fn rank_gather_reaches_remote_partitions() {
        let t = paper_trace();
        // GPU0 reads RankA pages outside its own block in iteration 0.
        let pages = 140 * 32 * 1024 * 1024 / 1000 / 4096;
        let own = block(pages, 4, 0);
        let hits_remote = t.phases[0].per_gpu[0]
            .iter()
            .filter(|a| a.obj.0 == 0 && !a.kind.is_write())
            .any(|a| !own.contains(&(a.offset / 4096)));
        assert!(hits_remote);
    }
}
