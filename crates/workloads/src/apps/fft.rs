//! FFT — Fast Fourier Transform (SHOC). Scatter-gather; 2 objects; 48 MB.
//!
//! SHOC's `fft1D_512` runs batches of independent 512-point transforms.
//! Each GPU computes the transforms of its own contiguous block in place
//! (private-rw), but between the forward and inverse passes the batch is
//! reshuffled: every GPU gathers a strided slice of the whole signal —
//! elements held by remote GPUs — before scattering results back into its
//! own block. That gather is the Table II "scatter-gather" sharing: each
//! data page has one heavy local owner plus a remote strided reader.

use oasis_mem::types::AccessKind;

use crate::apps::part;
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Sweeps over the signal (forward FFT + inverse FFT check).
pub const PASSES: usize = 2;

/// Generates the FFT trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("FFT", g);
    let data = b.alloc("FFT_Data", part(params, 960));
    let twiddle = b.alloc("FFT_Twiddle", part(params, 30));
    let data_pages = b.pages_of(data);
    let tw_pages = b.pages_of(twiddle);

    b.begin_phase("fft1D_512");
    for _pass in 0..PASSES {
        for gpu in 0..g {
            // Twiddle factors: shared-read-only by everyone.
            b.seq(gpu, twiddle, 0..tw_pages, AccessKind::Read, 4);
            // In-place butterfly over the GPU's own transform block.
            b.seq_rw(gpu, data, block(data_pages, g, gpu), 4, 4);
            // Batch reshuffle: gather a strided slice spanning every
            // block (pages owned by remote GPUs), ...
            b.strided(
                gpu,
                data,
                0..data_pages,
                g as u64,
                gpu as u64,
                AccessKind::Read,
                2,
            );
            // ... then scatter the reordered results into the own block.
            b.seq(gpu, data, block(data_pages, g, gpu), AccessKind::Write, 2);
        }
        // The reshuffle between passes is a global synchronization.
        b.barrier();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::Fft, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::Fft, &paper_trace());
    }

    #[test]
    fn single_explicit_phase() {
        assert_eq!(paper_trace().phases.len(), 1);
    }

    #[test]
    fn twiddle_is_shared_read_only() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            let twiddle_accesses: Vec<_> = stream.iter().filter(|a| a.obj.0 == 1).collect();
            assert!(!twiddle_accesses.is_empty());
            assert!(twiddle_accesses.iter().all(|a| !a.kind.is_write()));
        }
    }

    #[test]
    fn gather_reaches_remote_blocks_writes_stay_home() {
        let t = paper_trace();
        let pages = t.objects[0].bytes.div_ceil(4096);
        let own = block(pages, 4, 0);
        let s = &t.phases[0].per_gpu[0];
        // GPU0 reads pages in every other GPU's block...
        let read_foreign = s
            .iter()
            .filter(|a| a.obj.0 == 0 && !a.kind.is_write())
            .any(|a| !own.contains(&(a.offset / 4096)));
        assert!(read_foreign, "strided gather must cross blocks");
        // ...but only ever writes its own block.
        for a in s.iter().filter(|a| a.obj.0 == 0 && a.kind.is_write()) {
            assert!(own.contains(&(a.offset / 4096)));
        }
    }

    #[test]
    fn strided_readers_are_disjoint_per_page() {
        // Stride G with offset g partitions the gather: each page has at
        // most one foreign reader.
        let t = paper_trace();
        let mut readers: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        let pages = t.objects[0].bytes.div_ceil(4096);
        for (g, stream) in t.phases[0].per_gpu.iter().enumerate() {
            let own = block(pages, 4, g);
            for a in stream.iter().filter(|a| a.obj.0 == 0 && !a.kind.is_write()) {
                let p = a.offset / 4096;
                if !own.contains(&p) {
                    let r = readers.entry(p).or_default();
                    if !r.contains(&g) {
                        r.push(g);
                    }
                }
            }
        }
        assert!(readers.values().all(|v| v.len() == 1));
    }
}
