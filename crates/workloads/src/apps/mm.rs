//! MM — Matrix Multiplication (AMDAPPSDK). Scatter-gather; 4 objects; 32 MB.
//!
//! Fig. 5's duplication showcase: `MM_A` and `MM_B` are shared-read-only and
//! draw ~80% of all accesses (every GPU streams both operands repeatedly
//! for its C tile); `MM_C` is private-write-only.

use oasis_mem::types::AccessKind;

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// GEMM operand reuse: passes each GPU makes over A and B.
const OPERAND_PASSES: u32 = 3;

/// Generates the MM trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("MM", g);
    let a = b.alloc("MM_A", part(params, 375));
    let bb = b.alloc("MM_B", part(params, 375));
    let c = b.alloc("MM_C", part(params, 230));
    let _pars = alloc_small(&mut b, "MM_Params");
    let a_pages = b.pages_of(a);
    let b_pages = b.pages_of(bb);
    let c_pages = b.pages_of(c);

    b.begin_phase("gemm");
    for gpu in 0..g {
        for pass in 0..OPERAND_PASSES {
            // Rotated sweeps: at any instant the GPUs stream different
            // tiles of the shared operands (thread blocks partition the
            // output), so page visits by different GPUs are separated in
            // time.
            let _ = pass;
            b.sweep_rotated(gpu, a, 0..a_pages, AccessKind::Read, 4);
            b.sweep_rotated(gpu, bb, 0..b_pages, AccessKind::Read, 4);
        }
        b.seq(gpu, c, block(c_pages, g, gpu), AccessKind::Write, 16);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::Mm, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::Mm, &paper_trace());
    }

    #[test]
    fn operands_dominate_accesses() {
        // Fig. 5(b): MM_A + MM_B ≈ 80% of total accesses.
        let t = paper_trace();
        let mut operand = 0usize;
        let mut total = 0usize;
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                total += 1;
                if a.obj.0 <= 1 {
                    operand += 1;
                }
            }
        }
        let share = operand as f64 / total as f64;
        assert!((0.70..=0.92).contains(&share), "operand share {share}");
    }

    #[test]
    fn operands_read_only_c_write_only() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                match a.obj.0 {
                    0 | 1 => assert!(!a.kind.is_write()),
                    2 => assert!(a.kind.is_write()),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn operands_shared_by_all_gpus() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            assert!(stream.iter().any(|a| a.obj.0 == 0));
            assert!(stream.iter().any(|a| a.obj.0 == 1));
        }
    }

    #[test]
    fn works_at_other_gpu_counts() {
        for g in [1usize, 2, 8, 16] {
            let t = generate(&WorkloadParams::small(App::Mm, g));
            assert_eq!(t.gpu_count, g);
            assert_eq!(t.phases[0].per_gpu.len(), g);
        }
    }
}
