//! MT — Matrix Transpose (AMDAPPSDK). Scatter-gather; 3 objects; 64 MB.
//!
//! The archetype of Fig. 4: `MT_Input` is entirely read-only, `MT_Output`
//! entirely write-only, and both keep that pattern through the whole (single)
//! kernel. Output tiles are partitioned per GPU (private writes); gathering
//! a column slice makes every GPU touch every input page, so the input is
//! shared-read-only.

use oasis_mem::types::AccessKind;

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Transactions each GPU issues per input page (its 1/G column slice of
/// the page's elements, coalesced).
fn input_burst(gpu_count: usize) -> u32 {
    (64 / gpu_count as u32).max(2)
}

/// Generates the MT trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("MT", g);
    let input = b.alloc("MT_Input", part(params, 470));
    let output = b.alloc("MT_Output", part(params, 470));
    let _pars = alloc_small(&mut b, "MT_Params");
    let in_pages = b.pages_of(input);
    let out_pages = b.pages_of(output);

    b.begin_phase("matrixTranspose");
    for gpu in 0..g {
        // Gather: every GPU reads a column slice of every input page. The
        // tile walk revisits each page once per output tile row, so the
        // sweep happens in two separated passes, interleaving the sharing
        // across GPUs over time.
        let burst = (input_burst(g) / 2).max(1);
        b.sweep_rotated(gpu, input, 0..in_pages, AccessKind::Read, burst);
        b.sweep_rotated(gpu, input, 0..in_pages, AccessKind::Read, burst);
        // Scatter: each GPU writes only its own output tile.
        b.seq(gpu, output, block(out_pages, g, gpu), AccessKind::Write, 16);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::Mt, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::Mt, &paper_trace());
    }

    #[test]
    fn single_explicit_phase() {
        assert_eq!(paper_trace().phases.len(), 1);
    }

    #[test]
    fn input_is_read_only_output_write_only() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                match t.objects[a.obj.0 as usize].name.as_str() {
                    "MT_Input" => assert!(!a.kind.is_write()),
                    "MT_Output" => assert!(a.kind.is_write()),
                    "MT_Params" => {}
                    other => panic!("unexpected object {other}"),
                }
            }
        }
    }

    #[test]
    fn input_shared_by_all_output_private() {
        let t = paper_trace();
        // Every GPU touches input page 0.
        for stream in &t.phases[0].per_gpu {
            assert!(stream.iter().any(|a| a.obj.0 == 0 && a.offset < 4096));
        }
        // Output page blocks are disjoint across GPUs.
        let mut seen: Vec<std::collections::HashSet<u64>> = Vec::new();
        for stream in &t.phases[0].per_gpu {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 1)
                .map(|a| a.offset / 4096)
                .collect();
            for earlier in &seen {
                assert!(earlier.is_disjoint(&pages), "output blocks overlap");
            }
            seen.push(pages);
        }
    }

    #[test]
    fn scaling_input_size_preserves_pattern() {
        // Section IV-B: scaling MT does not change object count or pattern.
        let small = generate(&WorkloadParams::small(App::Mt, 4));
        let big = paper_trace();
        assert_eq!(small.objects.len(), big.objects.len());
        assert!(small.total_accesses() < big.total_accesses());
    }
}
