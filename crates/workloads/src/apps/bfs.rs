//! BFS — Breadth-First Search (SHOC). Random; 5 objects; 32 MB.
//!
//! Level-synchronous BFS inside a single kernel: every level, each GPU
//! expands its share of the frontier, chasing edges into arbitrary
//! partitions — reads and writes land on random pages of other GPUs
//! (Table II's "Random" pattern). The cost and frontier arrays are
//! shared-rw-mix; the CSR structure (nodes, edges) is shared-read-only.

use oasis_mem::types::AccessKind;

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};
use oasis_engine::SimRng;

/// BFS levels executed inside the kernel (implicit phases).
pub const LEVELS: usize = 8;

/// Generates the BFS trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut rng = SimRng::seed_from_u64(params.seed);
    let mut b = TraceBuilder::new("BFS", g);
    let nodes = b.alloc("BFS_Nodes", part(params, 130));
    let edges = b.alloc("BFS_Edges", part(params, 520));
    let cost = b.alloc("BFS_Cost", part(params, 130));
    let frontier = b.alloc("BFS_Frontier", part(params, 130));
    let _pars = alloc_small(&mut b, "BFS_Params");
    let node_pages = b.pages_of(nodes);
    let edge_pages = b.pages_of(edges);
    let cost_pages = b.pages_of(cost);
    let frontier_pages = b.pages_of(frontier);

    b.begin_phase("BFS_kernel");
    for level in 0..LEVELS {
        // Frontier size grows then shrinks across levels.
        let activity = match level {
            0 | 7 => 1u64,
            1 | 6 => 2,
            _ => 4,
        };
        for gpu in 0..g {
            let t = activity;
            b.random(
                gpu,
                frontier,
                0..frontier_pages,
                40 * t,
                AccessKind::Read,
                1,
                &mut rng,
            );
            b.random(
                gpu,
                nodes,
                0..node_pages,
                100 * t,
                AccessKind::Read,
                3,
                &mut rng,
            );
            b.random(
                gpu,
                edges,
                0..edge_pages,
                400 * t,
                AccessKind::Read,
                3,
                &mut rng,
            );
            // Level-synchronous scan of the GPU's own cost partition.
            b.seq(gpu, cost, block(cost_pages, g, gpu), AccessKind::Read, 2);
            b.random(
                gpu,
                cost,
                0..cost_pages,
                80 * t,
                AccessKind::Read,
                2,
                &mut rng,
            );
            b.random(
                gpu,
                cost,
                0..cost_pages,
                50 * t,
                AccessKind::Write,
                1,
                &mut rng,
            );
            b.random(
                gpu,
                frontier,
                0..frontier_pages,
                30 * t,
                AccessKind::Write,
                1,
                &mut rng,
            );
            b.shuffle_stream(gpu, &mut rng);
        }
        // Level-synchronous BFS: the frontier for the next level is only
        // valid once every GPU finishes the current one.
        b.barrier();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::Bfs, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::Bfs, &paper_trace());
    }

    #[test]
    fn single_explicit_phase() {
        assert_eq!(paper_trace().phases.len(), 1);
    }

    #[test]
    fn structure_arrays_are_read_only() {
        let t = paper_trace();
        for stream in &t.phases[0].per_gpu {
            for a in stream {
                if a.obj.0 <= 1 {
                    assert!(!a.kind.is_write(), "CSR arrays must be read-only");
                }
            }
        }
    }

    #[test]
    fn cost_and_frontier_are_rw_mix_shared() {
        let t = paper_trace();
        for obj in [2u16, 3] {
            let mut readers = 0u32;
            let mut writers = 0u32;
            for (g, stream) in t.phases[0].per_gpu.iter().enumerate() {
                for a in stream.iter().filter(|a| a.obj.0 == obj) {
                    if a.kind.is_write() {
                        writers |= 1 << g;
                    } else {
                        readers |= 1 << g;
                    }
                }
            }
            assert_eq!(readers.count_ones(), 4, "all GPUs read obj {obj}");
            assert_eq!(writers.count_ones(), 4, "all GPUs write obj {obj}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&WorkloadParams::paper(App::Bfs, 4));
        let b = generate(&WorkloadParams::paper(App::Bfs, 4));
        assert_eq!(a, b);
    }
}
