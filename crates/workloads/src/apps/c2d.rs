//! C2D — Convolution 2D (DNN-Mark). Adjacent; 10 objects; 92 MB.
//!
//! The explicit-phase showcase of Fig. 6: each convolution round runs three
//! kernels — Image-to-Column, GEMM, Matrix-Transpose — and the block
//! assignment rotates between phases, so intermediate tensors
//! (`Im2col_Output`, `GEMM_Output`) look private *within* a phase but
//! shared *across* phases: written by one GPU, then read by a different
//! one. `Parameters` is shared-read in every GEMM. Three rounds yield the
//! paper's "8 explicit phase changes".

use oasis_mem::types::AccessKind;

use crate::apps::{alloc_small, part};
use crate::spec::WorkloadParams;
use crate::trace::{block, Trace, TraceBuilder};

/// Convolution rounds (filter groups); 3 rounds × 3 kernels = 9 launches =
/// 8 phase *changes*.
pub const ROUNDS: usize = 3;

/// Generates the C2D trace.
pub fn generate(params: &WorkloadParams) -> Trace {
    let g = params.gpu_count;
    let mut b = TraceBuilder::new("C2D", g);
    let input = b.alloc("Im2col_Input", part(params, 200));
    let im2col_out = b.alloc("Im2col_Output", part(params, 250));
    let gemm_out = b.alloc("GEMM_Output", part(params, 190));
    let mt_out = b.alloc("MT_Output", part(params, 140));
    let pars = b.alloc("Parameters", part(params, 140));
    let bias = alloc_small(&mut b, "Bias");
    let _ws1 = alloc_small(&mut b, "Workspace1");
    let _ws2 = alloc_small(&mut b, "Workspace2");
    let _cfg = alloc_small(&mut b, "ConvConfig");
    let _scr = alloc_small(&mut b, "Scratch");
    let in_pages = b.pages_of(input);
    let i2c_pages = b.pages_of(im2col_out);
    let gemm_pages = b.pages_of(gemm_out);
    let mt_pages = b.pages_of(mt_out);
    let par_pages = b.pages_of(pars);
    let bias_pages = b.pages_of(bias);

    for round in 0..ROUNDS {
        b.begin_phase(format!("im2col_r{round}"));
        for gpu in 0..g {
            let blk = (gpu + round) % g;
            // Adjacent pattern: own block plus a halo into the neighbor.
            b.seq(gpu, input, block(in_pages, g, blk), AccessKind::Read, 4);
            let next = block(in_pages, g, (blk + 1) % g);
            let halo = ((next.end - next.start) / 8).max(1);
            b.seq(
                gpu,
                input,
                next.start..next.start + halo,
                AccessKind::Read,
                4,
            );
            b.seq(
                gpu,
                im2col_out,
                block(i2c_pages, g, blk),
                AccessKind::Write,
                16,
            );
        }

        b.begin_phase(format!("gemm_r{round}"));
        for gpu in 0..g {
            // The same GPU carries its block through the round's three
            // kernels (data locality); the *round* rotation above is what
            // makes the intermediates shared across phases.
            let blk = (gpu + round) % g;
            b.seq(
                gpu,
                im2col_out,
                block(i2c_pages, g, blk),
                AccessKind::Read,
                8,
            );
            b.sweep_rotated(gpu, pars, 0..par_pages, AccessKind::Read, 8);
            b.seq(gpu, bias, 0..bias_pages, AccessKind::Read, 1);
            b.seq(
                gpu,
                gemm_out,
                block(gemm_pages, g, blk),
                AccessKind::Write,
                16,
            );
        }

        b.begin_phase(format!("transpose_r{round}"));
        for gpu in 0..g {
            let blk = (gpu + round) % g;
            b.seq(
                gpu,
                gemm_out,
                block(gemm_pages, g, blk),
                AccessKind::Read,
                8,
            );
            b.seq(gpu, mt_out, block(mt_pages, g, blk), AccessKind::Write, 16);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::check_table2_invariants;
    use crate::spec::App;

    fn paper_trace() -> Trace {
        generate(&WorkloadParams::paper(App::C2d, 4))
    }

    #[test]
    fn matches_table2() {
        check_table2_invariants(App::C2d, &paper_trace());
    }

    #[test]
    fn nine_launches_eight_phase_changes() {
        let t = paper_trace();
        assert_eq!(t.phases.len(), ROUNDS * 3);
        assert_eq!(t.phases.len() - 1, 8, "8 explicit phase changes");
    }

    #[test]
    fn intermediates_are_private_per_phase_shared_across() {
        let t = paper_trace();
        // Within gemm_r0, each GPU reads a disjoint Im2col_Output block...
        let gemm0 = t.phases.iter().find(|p| p.name == "gemm_r0").unwrap();
        let mut seen: Vec<std::collections::HashSet<u64>> = Vec::new();
        for stream in &gemm0.per_gpu {
            let pages: std::collections::HashSet<u64> = stream
                .iter()
                .filter(|a| a.obj.0 == 1)
                .map(|a| a.offset / 4096)
                .collect();
            for earlier in &seen {
                assert!(earlier.is_disjoint(&pages));
            }
            seen.push(pages);
        }
        // ...and the round rotation hands each block to a different GPU in
        // the next round: GPU0 writes disjoint Im2col_Output blocks in
        // round 0 and round 1, so over the whole run the object is shared.
        let im2col0 = t.phases.iter().find(|p| p.name == "im2col_r0").unwrap();
        let im2col1 = t.phases.iter().find(|p| p.name == "im2col_r1").unwrap();
        let wrote_r0: std::collections::HashSet<u64> = im2col0.per_gpu[0]
            .iter()
            .filter(|a| a.obj.0 == 1)
            .map(|a| a.offset / 4096)
            .collect();
        let wrote_r1: std::collections::HashSet<u64> = im2col1.per_gpu[0]
            .iter()
            .filter(|a| a.obj.0 == 1)
            .map(|a| a.offset / 4096)
            .collect();
        assert!(wrote_r0.is_disjoint(&wrote_r1), "handoff must cross rounds");
        // Within the round, the writer keeps its block for the gemm read.
        let read_gemm0: std::collections::HashSet<u64> = gemm0.per_gpu[0]
            .iter()
            .filter(|a| a.obj.0 == 1)
            .map(|a| a.offset / 4096)
            .collect();
        assert_eq!(wrote_r0, read_gemm0, "same GPU carries its block");
    }

    #[test]
    fn parameters_shared_read_only_in_gemm() {
        let t = paper_trace();
        for p in t.phases.iter().filter(|p| p.name.starts_with("gemm")) {
            for stream in &p.per_gpu {
                let par_accesses: Vec<_> = stream.iter().filter(|a| a.obj.0 == 4).collect();
                assert!(!par_accesses.is_empty());
                assert!(par_accesses.iter().all(|a| !a.kind.is_write()));
            }
        }
    }
}
