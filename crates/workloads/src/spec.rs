//! Application metadata: Table II (apps, patterns, objects, footprints)
//! and Table III (scaled footprints for 8- and 16-GPU runs).

use std::fmt;

/// The multi-GPU sharing pattern of an application (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// GPUs read/write pages of other GPUs unpredictably (BFS, PR).
    Random,
    /// Data is batched and shared among neighboring GPUs (C2D, ST, DNNs).
    Adjacent,
    /// Each GPU handles data gathered from local or remote GPUs
    /// (I2C, FFT, MM, MT).
    ScatterGather,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Random => write!(f, "Random"),
            Pattern::Adjacent => write!(f, "Adjacent"),
            Pattern::ScatterGather => write!(f, "Scatter-Gather"),
        }
    }
}

/// The eleven evaluated applications (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// Breadth-First Search (SHOC).
    Bfs,
    /// Convolution 2D (DNN-Mark).
    C2d,
    /// Fast Fourier Transform (SHOC).
    Fft,
    /// Image to Column (DNN-Mark).
    I2c,
    /// Matrix Multiplication (AMDAPPSDK).
    Mm,
    /// Matrix Transpose (AMDAPPSDK).
    Mt,
    /// Page Rank (Hetero-Mark).
    Pr,
    /// Stencil 2D (SHOC).
    St,
    /// LeNet training (DNN-Mark, MNIST).
    LeNet,
    /// VGG-16 training (DNN-Mark, Tiny-ImageNet-200).
    Vgg16,
    /// ResNet-18 training (DNN-Mark, Tiny-ImageNet-200).
    ResNet18,
}

/// All apps in Table II order.
pub const ALL_APPS: [App; 11] = [
    App::Bfs,
    App::C2d,
    App::Fft,
    App::I2c,
    App::Mm,
    App::Mt,
    App::Pr,
    App::St,
    App::LeNet,
    App::Vgg16,
    App::ResNet18,
];

impl App {
    /// Table II abbreviation.
    pub fn abbr(self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::C2d => "C2D",
            App::Fft => "FFT",
            App::I2c => "I2C",
            App::Mm => "MM",
            App::Mt => "MT",
            App::Pr => "PR",
            App::St => "ST",
            App::LeNet => "LeNet",
            App::Vgg16 => "VGG16",
            App::ResNet18 => "ResNet18",
        }
    }

    /// Full application name.
    pub fn full_name(self) -> &'static str {
        match self {
            App::Bfs => "Breadth-First Search",
            App::C2d => "Convolution 2D",
            App::Fft => "Fast Fourier Transform",
            App::I2c => "Image to Column",
            App::Mm => "Matrix Multiplication",
            App::Mt => "Matrix Transpose",
            App::Pr => "Page Rank",
            App::St => "Stencil 2D",
            App::LeNet => "LeNet",
            App::Vgg16 => "Visual Geometry Group 16-layer",
            App::ResNet18 => "Residual Network 18-layer",
        }
    }

    /// Benchmark suite of origin.
    pub fn suite(self) -> &'static str {
        match self {
            App::Bfs | App::Fft | App::St => "SHOC",
            App::C2d | App::I2c | App::LeNet | App::Vgg16 | App::ResNet18 => "DNN-Mark",
            App::Mm | App::Mt => "AMDAPPSDK",
            App::Pr => "Hetero-Mark",
        }
    }

    /// Multi-GPU access pattern (Table II).
    pub fn pattern(self) -> Pattern {
        match self {
            App::Bfs | App::Pr => Pattern::Random,
            App::C2d | App::St | App::LeNet | App::Vgg16 | App::ResNet18 => Pattern::Adjacent,
            App::Fft | App::I2c | App::Mm | App::Mt => Pattern::ScatterGather,
        }
    }

    /// Maximum number of objects allocated through execution (Table II).
    pub fn object_count(self) -> usize {
        match self {
            App::Bfs => 5,
            App::C2d => 10,
            App::Fft => 2,
            App::I2c => 3,
            App::Mm => 4,
            App::Mt => 3,
            App::Pr => 6,
            App::St => 3,
            App::LeNet => 115,
            App::Vgg16 => 240,
            App::ResNet18 => 263,
        }
    }

    /// Memory footprint in MB for a given GPU count: Table II for 4 GPUs,
    /// Table III for 8 and 16; other counts interpolate linearly between
    /// the nearest rows.
    pub fn footprint_mb(self, gpu_count: usize) -> u64 {
        let (f4, f8, f16) = match self {
            App::Bfs => (32, 64, 128),
            App::C2d => (92, 200, 308),
            App::Fft => (48, 96, 192),
            App::I2c => (80, 175, 264),
            App::Mm => (32, 128, 192),
            App::Mt => (64, 160, 320),
            App::Pr => (32, 74, 132),
            App::St => (32, 65, 129),
            App::LeNet => (24, 64, 170),
            App::Vgg16 => (220, 358, 718),
            App::ResNet18 => (297, 508, 1167),
        };
        match gpu_count {
            0..=4 => f4,
            5..=8 => f4 + (f8 - f4) * (gpu_count as u64 - 4) / 4,
            9..=16 => f8 + (f16 - f8) * (gpu_count as u64 - 8) / 8,
            n => f16 * n as u64 / 16,
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbr())
    }
}

/// Parameters controlling trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Number of GPUs the workload is partitioned across.
    pub gpu_count: usize,
    /// Total managed footprint in MB (object sizes scale proportionally).
    pub footprint_mb: u64,
    /// RNG seed for the random-pattern apps (traces are deterministic
    /// given a seed).
    pub seed: u64,
}

impl WorkloadParams {
    /// The paper's configuration for `app` at `gpu_count` GPUs
    /// (Tables II/III footprints, fixed seed).
    pub fn paper(app: App, gpu_count: usize) -> Self {
        WorkloadParams {
            gpu_count,
            footprint_mb: app.footprint_mb(gpu_count),
            seed: 0xA515_0000 + app as u64,
        }
    }

    /// A scaled-down configuration for fast tests and Criterion benches.
    pub fn small(app: App, gpu_count: usize) -> Self {
        WorkloadParams {
            gpu_count,
            footprint_mb: (app.footprint_mb(gpu_count) / 8).max(2),
            seed: 0x5EED_0000 + app as u64,
        }
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_mb * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_object_counts() {
        assert_eq!(App::Bfs.object_count(), 5);
        assert_eq!(App::C2d.object_count(), 10);
        assert_eq!(App::Fft.object_count(), 2);
        assert_eq!(App::LeNet.object_count(), 115);
        assert_eq!(App::Vgg16.object_count(), 240);
        assert_eq!(App::ResNet18.object_count(), 263);
    }

    #[test]
    fn table2_and_table3_footprints() {
        assert_eq!(App::Mt.footprint_mb(4), 64);
        assert_eq!(App::Mt.footprint_mb(8), 160);
        assert_eq!(App::Mt.footprint_mb(16), 320);
        assert_eq!(App::ResNet18.footprint_mb(16), 1167);
        // Interpolation between rows.
        assert!(App::Mm.footprint_mb(6) > 32 && App::Mm.footprint_mb(6) < 128);
        // Extrapolation beyond 16 GPUs.
        assert_eq!(App::Bfs.footprint_mb(32), 256);
    }

    #[test]
    fn patterns_match_table2() {
        assert_eq!(App::Bfs.pattern(), Pattern::Random);
        assert_eq!(App::Pr.pattern(), Pattern::Random);
        assert_eq!(App::St.pattern(), Pattern::Adjacent);
        assert_eq!(App::Mm.pattern(), Pattern::ScatterGather);
        assert_eq!(App::Vgg16.pattern(), Pattern::Adjacent);
    }

    #[test]
    fn suites_match_table2() {
        assert_eq!(App::Bfs.suite(), "SHOC");
        assert_eq!(App::Pr.suite(), "Hetero-Mark");
        assert_eq!(App::Mm.suite(), "AMDAPPSDK");
        assert_eq!(App::ResNet18.suite(), "DNN-Mark");
    }

    #[test]
    fn params_constructors() {
        let p = WorkloadParams::paper(App::Mm, 4);
        assert_eq!(p.footprint_mb, 32);
        assert_eq!(p.footprint_bytes(), 32 << 20);
        let s = WorkloadParams::small(App::Mm, 4);
        assert!(s.footprint_mb < p.footprint_mb);
        assert_ne!(
            WorkloadParams::paper(App::Mm, 4).seed,
            WorkloadParams::paper(App::Mt, 4).seed
        );
    }

    #[test]
    fn displays() {
        assert_eq!(App::I2c.to_string(), "I2C");
        assert_eq!(Pattern::ScatterGather.to_string(), "Scatter-Gather");
        assert_eq!(ALL_APPS.len(), 11);
    }
}
