//! Trace representation and the builder used by the app generators.

use oasis_engine::SimRng;
use oasis_mem::types::{AccessKind, ObjectId, PageSize};

/// Bytes per coalesced memory transaction.
pub const TRANSACTION_BYTES: u32 = 64;

/// Page granularity traces are generated at. Runs with 2 MiB pages
/// reinterpret the same byte offsets; generators never need to know.
const GEN_PAGE: PageSize = PageSize::Small4K;

/// One coalesced memory transaction by one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The object accessed.
    pub obj: ObjectId,
    /// Byte offset within the object.
    pub offset: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Transaction size in bytes.
    pub bytes: u32,
}

/// One allocation in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSpec {
    /// Human-readable name (used in figures, e.g. `"MT_Input"`).
    pub name: String,
    /// Allocation size in bytes.
    pub bytes: u64,
}

/// One explicit phase (kernel launch): per-GPU streams of transactions.
/// Implicit phases (e.g. ST's iterations) are embedded in the stream of a
/// single explicit phase, separated by grid-wide [`Phase::barriers`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Kernel name.
    pub name: String,
    /// `per_gpu[g]` is GPU *g*'s transaction stream for this kernel.
    pub per_gpu: Vec<Vec<Access>>,
    /// Grid-wide synchronization points *inside* the kernel (iteration
    /// boundaries of in-kernel loops): `barriers[g]` holds, per GPU, the
    /// stream positions at which the GPU waits for all others. All GPUs
    /// have the same number of barriers. Unlike kernel launches these do
    /// NOT reset the OASIS O-Table — they are what makes phases
    /// *implicit*.
    pub barriers: Vec<Vec<usize>>,
}

impl Phase {
    /// Total transactions across all GPUs.
    pub fn len(&self) -> usize {
        self.per_gpu.iter().map(Vec::len).sum()
    }

    /// True if no GPU issues anything in this phase.
    pub fn is_empty(&self) -> bool {
        self.per_gpu.iter().all(Vec::is_empty)
    }
}

/// A complete application trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Application abbreviation ("MM", "ST", ...).
    pub app: &'static str,
    /// GPUs the workload is partitioned across.
    pub gpu_count: usize,
    /// Allocations, in allocation order (index = `ObjectId`).
    pub objects: Vec<ObjectSpec>,
    /// Explicit phases in launch order.
    pub phases: Vec<Phase>,
}

impl Trace {
    /// Total transactions in the trace.
    pub fn total_accesses(&self) -> usize {
        self.phases.iter().map(Phase::len).sum()
    }

    /// Total allocated bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.bytes).sum()
    }

    /// Truncates the trace to its first `n` phases (kernels), keeping at
    /// least one. Lets scenario shrinking drop later kernels while the
    /// prefix stays a valid launch sequence (allocations are per-trace, so
    /// every retained access still targets a live object).
    pub fn retain_phases(&mut self, n: usize) {
        self.phases.truncate(n.max(1));
    }
}

/// Helper for assembling traces: tracks objects and the phase under
/// construction, and provides the access-emission idioms (sequential
/// sweeps, strided sweeps, random touches) the generators are written in.
#[derive(Debug)]
pub struct TraceBuilder {
    app: &'static str,
    gpu_count: usize,
    objects: Vec<ObjectSpec>,
    phases: Vec<Phase>,
    current: Option<Phase>,
}

impl TraceBuilder {
    /// Starts a trace for `app` on `gpu_count` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn new(app: &'static str, gpu_count: usize) -> Self {
        assert!(gpu_count > 0, "need at least one GPU");
        TraceBuilder {
            app,
            gpu_count,
            objects: Vec::new(),
            phases: Vec::new(),
            current: None,
        }
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpu_count
    }

    /// Allocates an object. Must be called before any phase references it.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64) -> ObjectId {
        assert!(bytes > 0, "zero-sized object");
        let id = ObjectId(u16::try_from(self.objects.len()).expect("too many objects"));
        self.objects.push(ObjectSpec {
            name: name.into(),
            bytes,
        });
        id
    }

    /// Number of 4 KiB pages object `obj` spans.
    pub fn pages_of(&self, obj: ObjectId) -> u64 {
        GEN_PAGE.pages_for(self.objects[obj.0 as usize].bytes)
    }

    /// Opens a new explicit phase (kernel launch), closing any open one.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.flush_phase();
        self.current = Some(Phase {
            name: name.into(),
            per_gpu: vec![Vec::new(); self.gpu_count],
            barriers: vec![Vec::new(); self.gpu_count],
        });
    }

    /// Inserts a grid-wide barrier at the current position of every GPU's
    /// stream (an in-kernel iteration boundary). No-op barriers at the
    /// very start are permitted but pointless.
    pub fn barrier(&mut self) {
        let phase = self
            .current
            .as_mut()
            .expect("no open phase; call begin_phase first");
        for g in 0..phase.per_gpu.len() {
            let pos = phase.per_gpu[g].len();
            phase.barriers[g].push(pos);
        }
    }

    fn flush_phase(&mut self) {
        if let Some(p) = self.current.take() {
            self.phases.push(p);
        }
    }

    fn stream(&mut self, gpu: usize) -> &mut Vec<Access> {
        &mut self
            .current
            .as_mut()
            .expect("no open phase; call begin_phase first")
            .per_gpu[gpu]
    }

    fn emit_burst(&mut self, gpu: usize, obj: ObjectId, page: u64, kind: AccessKind, burst: u32) {
        let obj_bytes = self.objects[obj.0 as usize].bytes;
        let page_base = page * GEN_PAGE.bytes();
        debug_assert!(page_base < obj_bytes, "page {page} outside {obj}");
        let stream = self.stream(gpu);
        for i in 0..burst {
            let within = (u64::from(i) * u64::from(TRANSACTION_BYTES)) % GEN_PAGE.bytes();
            let offset = (page_base + within).min(obj_bytes.saturating_sub(1));
            stream.push(Access {
                obj,
                offset,
                kind,
                bytes: TRANSACTION_BYTES,
            });
        }
    }

    /// GPU `gpu` sweeps `pages` of `obj` in order, issuing `burst`
    /// transactions per page.
    pub fn seq(
        &mut self,
        gpu: usize,
        obj: ObjectId,
        pages: std::ops::Range<u64>,
        kind: AccessKind,
        burst: u32,
    ) {
        for p in pages {
            self.emit_burst(gpu, obj, p, kind, burst);
        }
    }

    /// GPU `gpu` sweeps all of `pages` starting at block `gpu` of `parts`
    /// and wrapping around — the idiom for objects read by every GPU:
    /// thread blocks of different GPUs work on different tiles at any
    /// instant, so visits to a given page by different GPUs are separated
    /// in time rather than colliding burst-by-burst.
    pub fn sweep_rotated(
        &mut self,
        gpu: usize,
        obj: ObjectId,
        pages: std::ops::Range<u64>,
        kind: AccessKind,
        burst: u32,
    ) {
        let parts = self.gpu_count;
        let start =
            crate::trace::block(pages.end - pages.start, parts, gpu % parts).start + pages.start;
        self.seq(gpu, obj, start..pages.end, kind, burst);
        self.seq(gpu, obj, pages.start..start, kind, burst);
    }

    /// GPU `gpu` sweeps `pages` of `obj` performing an in-place
    /// read-modify-write per page: `read_burst` reads immediately followed
    /// by `write_burst` writes before moving on (the FFT butterfly idiom —
    /// unlike separate [`TraceBuilder::seq`] sweeps, a page's reads and
    /// writes stay adjacent in time).
    #[allow(clippy::too_many_arguments)]
    pub fn seq_rw(
        &mut self,
        gpu: usize,
        obj: ObjectId,
        pages: std::ops::Range<u64>,
        read_burst: u32,
        write_burst: u32,
    ) {
        for p in pages {
            self.emit_burst(gpu, obj, p, AccessKind::Read, read_burst);
            self.emit_burst(gpu, obj, p, AccessKind::Write, write_burst);
        }
    }

    /// Like [`TraceBuilder::seq`] but visiting every `stride`-th page
    /// starting at `pages.start + phase_offset` (scatter-gather idiom).
    #[allow(clippy::too_many_arguments)]
    pub fn strided(
        &mut self,
        gpu: usize,
        obj: ObjectId,
        pages: std::ops::Range<u64>,
        stride: u64,
        phase_offset: u64,
        kind: AccessKind,
        burst: u32,
    ) {
        assert!(stride > 0, "stride must be positive");
        let mut p = pages.start + phase_offset;
        while p < pages.end {
            self.emit_burst(gpu, obj, p, kind, burst);
            p += stride;
        }
    }

    /// GPU `gpu` touches `touches` pages of `obj` chosen uniformly at
    /// random within `pages`, issuing `burst` transactions per touch
    /// (random-pattern idiom).
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        &mut self,
        gpu: usize,
        obj: ObjectId,
        pages: std::ops::Range<u64>,
        touches: u64,
        kind: AccessKind,
        burst: u32,
        rng: &mut SimRng,
    ) {
        assert!(!pages.is_empty(), "empty page range");
        for _ in 0..touches {
            let p = rng.gen_range(pages.clone());
            self.emit_burst(gpu, obj, p, kind, burst);
        }
    }

    /// Shuffles GPU `gpu`'s stream of the current phase (models unordered
    /// thread-block scheduling for random-pattern apps).
    pub fn shuffle_stream(&mut self, gpu: usize, rng: &mut SimRng) {
        rng.shuffle(self.stream(gpu));
    }

    /// Finishes the trace.
    pub fn finish(mut self) -> Trace {
        self.flush_phase();
        Trace {
            app: self.app,
            gpu_count: self.gpu_count,
            objects: self.objects,
            phases: self.phases,
        }
    }
}

/// Splits `pages` pages into `parts` contiguous blocks and returns block
/// `idx` (the standard owner-computes partitioning).
pub fn block(pages: u64, parts: usize, idx: usize) -> std::ops::Range<u64> {
    assert!(idx < parts, "block index out of range");
    let parts = parts as u64;
    let idx = idx as u64;
    let base = pages / parts;
    let rem = pages % parts;
    let start = idx * base + idx.min(rem);
    let len = base + u64::from(idx < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_phases_truncates_but_keeps_at_least_one() {
        let mut b = TraceBuilder::new("T", 1);
        let obj = b.alloc("a", 4096);
        for name in ["p0", "p1", "p2"] {
            b.begin_phase(name);
            b.seq(0, obj, 0..1, AccessKind::Read, 1);
        }
        let mut t = b.finish();
        assert_eq!(t.phases.len(), 3);
        t.retain_phases(2);
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[1].name, "p1");
        t.retain_phases(0);
        assert_eq!(t.phases.len(), 1, "must keep at least one phase");
        t.retain_phases(10);
        assert_eq!(t.phases.len(), 1, "over-long retain is a no-op");
    }

    #[test]
    fn block_partition_covers_everything_once() {
        for pages in [1u64, 7, 16, 8192, 8191] {
            for parts in [1usize, 2, 3, 4, 8, 16] {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..parts {
                    let b = block(pages, parts, i);
                    assert_eq!(b.start, next, "blocks must be contiguous");
                    next = b.end;
                    covered += b.end - b.start;
                }
                assert_eq!(covered, pages);
                assert_eq!(next, pages);
            }
        }
    }

    #[test]
    fn seq_emits_bursts_within_pages() {
        let mut b = TraceBuilder::new("T", 2);
        let o = b.alloc("buf", 3 * 4096);
        b.begin_phase("k");
        b.seq(0, o, 0..3, AccessKind::Read, 4);
        let t = b.finish();
        let s = &t.phases[0].per_gpu[0];
        assert_eq!(s.len(), 12);
        // First page's burst: offsets 0, 64, 128, 192.
        assert_eq!(s[0].offset, 0);
        assert_eq!(s[1].offset, 64);
        assert_eq!(s[3].offset, 192);
        // Second page starts at 4096.
        assert_eq!(s[4].offset, 4096);
        assert!(t.phases[0].per_gpu[1].is_empty());
    }

    #[test]
    fn strided_visits_every_nth_page() {
        let mut b = TraceBuilder::new("T", 1);
        let o = b.alloc("buf", 8 * 4096);
        b.begin_phase("k");
        b.strided(0, o, 0..8, 4, 1, AccessKind::Write, 1);
        let t = b.finish();
        let pages: Vec<u64> = t.phases[0].per_gpu[0]
            .iter()
            .map(|a| a.offset / 4096)
            .collect();
        assert_eq!(pages, vec![1, 5]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut b = TraceBuilder::new("T", 1);
            let o = b.alloc("buf", 64 * 4096);
            b.begin_phase("k");
            b.random(0, o, 0..64, 20, AccessKind::Read, 2, &mut rng);
            b.finish()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn random_stays_in_range() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut b = TraceBuilder::new("T", 1);
        let o = b.alloc("buf", 64 * 4096);
        b.begin_phase("k");
        b.random(0, o, 16..32, 100, AccessKind::Read, 1, &mut rng);
        let t = b.finish();
        for a in &t.phases[0].per_gpu[0] {
            let page = a.offset / 4096;
            assert!((16..32).contains(&page));
        }
    }

    #[test]
    fn phases_close_automatically() {
        let mut b = TraceBuilder::new("T", 1);
        let o = b.alloc("buf", 4096);
        b.begin_phase("k1");
        b.seq(0, o, 0..1, AccessKind::Read, 1);
        b.begin_phase("k2");
        b.seq(0, o, 0..1, AccessKind::Write, 1);
        let t = b.finish();
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].name, "k1");
        assert_eq!(t.phases[1].name, "k2");
        assert_eq!(t.total_accesses(), 2);
    }

    #[test]
    fn offsets_never_exceed_object_size() {
        let mut b = TraceBuilder::new("T", 1);
        let o = b.alloc("odd", 4096 + 100); // 2 pages, second mostly absent
        b.begin_phase("k");
        b.seq(0, o, 0..2, AccessKind::Write, 8);
        let t = b.finish();
        for a in &t.phases[0].per_gpu[0] {
            assert!(a.offset < 4096 + 100);
        }
    }

    #[test]
    fn footprint_accounts_all_objects() {
        let mut b = TraceBuilder::new("T", 1);
        b.alloc("a", 1000);
        b.alloc("b", 2000);
        assert_eq!(b.finish().footprint_bytes(), 3000);
    }

    #[test]
    fn pages_of_rounds_up() {
        let mut b = TraceBuilder::new("T", 1);
        let o = b.alloc("a", 4097);
        assert_eq!(b.pages_of(o), 2);
    }
}
