//! Pre-resolved access buffers: the trace compiled against a concrete
//! address-space binding.
//!
//! `System::run` used to re-derive, for every access of every epoch, the
//! object base (tagged-pointer lookup), the bounds check, the virtual
//! address, and the page number — all of which are invariant for the whole
//! run once objects are allocated. Compiling the trace performs that work
//! exactly once per access up front, leaving the simulation loop a flat,
//! cache-friendly buffer of fully resolved transactions.
//!
//! Compilation is semantically invisible: invalid accesses (unknown
//! object, out-of-range offset) are carried through as marked entries so
//! the simulator can raise the *same* typed error at the *same* step it
//! always did, and the per-phase / per-GPU stream shapes are preserved so
//! barrier indices keep their meaning.

use oasis_mem::types::{AccessKind, ObjectId, PageSize, Va, Vpn};

use crate::trace::Trace;

/// One fully resolved memory transaction.
///
/// For a valid access, `va`/`vpn` are the final (tagged) virtual address
/// and page number — the simulator consumes them directly. For an invalid
/// access (`valid == false`) they are zero and the original `obj`/`offset`
/// coordinates are used to reconstruct the typed trace error.
#[derive(Debug, Clone, Copy)]
pub struct CompiledAccess {
    /// Tagged virtual address (base of the owning object + offset).
    pub va: Va,
    /// Virtual page number of `va` under the compiling page size.
    pub vpn: Vpn,
    /// Original intra-object byte offset (error reporting).
    pub offset: u64,
    /// Transaction size in bytes.
    pub bytes: u32,
    /// Original object id (error reporting).
    pub obj: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// Whether the access resolved (known object, in-range offset).
    pub valid: bool,
}

/// One trace phase's streams, pre-resolved. Stream lengths and ordering
/// match the source [`Phase::per_gpu`](crate::trace::Phase::per_gpu)
/// exactly, so the phase's barrier indices apply unchanged.
#[derive(Debug, Clone)]
pub struct CompiledPhase {
    /// Per-GPU resolved access streams.
    pub per_gpu: Vec<Vec<CompiledAccess>>,
}

/// A [`Trace`] compiled against one address-space binding (object bases
/// and sizes) and page size. Valid only for the system that produced the
/// binding; a different placement of objects needs a fresh compile.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// Pre-resolved phases, index-aligned with the source trace's.
    pub phases: Vec<CompiledPhase>,
}

impl CompiledTrace {
    /// Resolves every access of `trace` against the object binding:
    /// `bases[i]`/`sizes[i]` are the tagged base address and byte size of
    /// object `i`. Accesses naming an object outside `bases` or an offset
    /// at/past its size compile to invalid entries.
    pub fn compile(trace: &Trace, bases: &[Va], sizes: &[u64], page: PageSize) -> Self {
        let invalid = |a: &crate::trace::Access| CompiledAccess {
            va: Va(0),
            vpn: Vpn(0),
            offset: a.offset,
            bytes: a.bytes,
            obj: a.obj,
            kind: a.kind,
            valid: false,
        };
        CompiledTrace {
            phases: trace
                .phases
                .iter()
                .map(|phase| CompiledPhase {
                    per_gpu: phase
                        .per_gpu
                        .iter()
                        .map(|stream| {
                            stream
                                .iter()
                                .map(|a| {
                                    let i = a.obj.0 as usize;
                                    match bases.get(i) {
                                        Some(base) if a.offset < sizes[i] => {
                                            let va = Va(base.0 + a.offset);
                                            CompiledAccess {
                                                va,
                                                vpn: va.vpn(page),
                                                offset: a.offset,
                                                bytes: a.bytes,
                                                obj: a.obj,
                                                kind: a.kind,
                                                valid: true,
                                            }
                                        }
                                        _ => invalid(a),
                                    }
                                })
                                .collect()
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{App, WorkloadParams};

    #[test]
    fn compile_preserves_stream_shapes_and_resolves_addresses() {
        let trace = crate::generate(App::Mm, &WorkloadParams::small(App::Mm, 4));
        let n_objects = trace.objects.len();
        // A synthetic dense binding: object i based at i * 1 GiB.
        let bases: Vec<Va> = (0..n_objects).map(|i| Va((i as u64) << 30)).collect();
        let sizes: Vec<u64> = trace.objects.iter().map(|o| o.bytes).collect();
        let page = PageSize::Small4K;
        let compiled = CompiledTrace::compile(&trace, &bases, &sizes, page);
        assert_eq!(compiled.phases.len(), trace.phases.len());
        for (cp, p) in compiled.phases.iter().zip(trace.phases.iter()) {
            assert_eq!(cp.per_gpu.len(), p.per_gpu.len());
            for (cs, s) in cp.per_gpu.iter().zip(p.per_gpu.iter()) {
                assert_eq!(cs.len(), s.len());
                for (ca, a) in cs.iter().zip(s.iter()) {
                    assert!(ca.valid);
                    assert_eq!(ca.va.0, bases[a.obj.0 as usize].0 + a.offset);
                    assert_eq!(ca.vpn, ca.va.vpn(page));
                    assert_eq!(ca.bytes, a.bytes);
                    assert_eq!(ca.kind, a.kind);
                }
            }
        }
    }

    #[test]
    fn out_of_binding_accesses_compile_to_invalid_entries() {
        let mut trace = crate::generate(App::Mt, &WorkloadParams::small(App::Mt, 4));
        trace.phases[0].per_gpu[0][0].obj = ObjectId(999); // unknown object
        trace.phases[0].per_gpu[1][2].offset = u64::MAX / 2; // out of range
        let bases: Vec<Va> = trace
            .objects
            .iter()
            .enumerate()
            .map(|(i, _)| Va((i as u64) << 30))
            .collect();
        let sizes: Vec<u64> = trace.objects.iter().map(|o| o.bytes).collect();
        let c = CompiledTrace::compile(&trace, &bases, &sizes, PageSize::Small4K);
        let bad = &c.phases[0].per_gpu[0][0];
        assert!(!bad.valid);
        assert_eq!(bad.obj, ObjectId(999));
        let bad2 = &c.phases[0].per_gpu[1][2];
        assert!(!bad2.valid);
        assert_eq!(bad2.offset, u64::MAX / 2);
        // Everything else still resolves.
        assert!(c.phases[0].per_gpu[0][1].valid);
    }
}
