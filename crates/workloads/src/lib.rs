//! Pattern-faithful multi-GPU workload generators.
//!
//! The paper evaluates OASIS on eleven applications from SHOC, AMDAPPSDK,
//! Hetero-Mark and DNN-Mark (Table II). Their binaries and datasets are not
//! reproducible here, but OASIS's behaviour depends only on the *memory
//! access pattern*: the set of objects (`cudaMallocManaged` allocations),
//! which GPU touches which page when, whether each access reads or writes,
//! and the phase structure. Each generator in this crate reproduces exactly
//! those properties — object inventory and footprints from Table II/III,
//! the sharing pattern (random / adjacent / scatter-gather), read/write
//! mixes, explicit kernel-launch phases, and implicit iteration structure
//! (e.g. ST's buffer swap, Fig. 7) — as a deterministic [`Trace`] of
//! per-GPU access streams.
//!
//! An [`Access`] models one *coalesced memory transaction* (64 B by
//! default), not one thread-level load: per-thread reuse that would hit in
//! on-chip caches is folded into the transaction count.

pub mod apps;
pub mod compiled;
pub mod spec;
pub mod trace;

pub use compiled::{CompiledAccess, CompiledPhase, CompiledTrace};
pub use spec::{App, Pattern, WorkloadParams, ALL_APPS};
pub use trace::{Access, ObjectSpec, Phase, Trace, TraceBuilder};

/// Generates the trace for `app` under `params`.
///
/// # Example
///
/// ```
/// use oasis_workloads::{generate, App, WorkloadParams};
///
/// let trace = generate(App::Mt, &WorkloadParams::paper(App::Mt, 4));
/// assert_eq!(trace.gpu_count, 4);
/// assert_eq!(trace.objects.len(), 3); // Table II: MT has 3 objects
/// ```
pub fn generate(app: App, params: &WorkloadParams) -> Trace {
    match app {
        App::Bfs => apps::bfs::generate(params),
        App::C2d => apps::c2d::generate(params),
        App::Fft => apps::fft::generate(params),
        App::I2c => apps::i2c::generate(params),
        App::Mm => apps::mm::generate(params),
        App::Mt => apps::mt::generate(params),
        App::Pr => apps::pr::generate(params),
        App::St => apps::st::generate(params),
        App::LeNet => apps::dnn::generate_lenet(params),
        App::Vgg16 => apps::dnn::generate_vgg16(params),
        App::ResNet18 => apps::dnn::generate_resnet18(params),
    }
}
