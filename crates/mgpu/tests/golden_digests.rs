//! Pinned golden digest trails: the bit-identity contract for the access
//! fast path.
//!
//! Each trail below was captured from the simulator *before* the
//! pre-resolved access pipeline landed (PR 8) and is asserted byte-for-byte
//! since. The per-epoch digests hash the full snapshot byte stream
//! (tracker, fabric, fault state, TLBs, caches, DRAM channels, driver
//! tables, policy state), so any change to simulation semantics — an extra
//! fault, a different eviction victim, a reordered shootdown — shows up
//! here by name. Performance work must keep every one of these green.

use oasis_mgpu::{simulate, Policy, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams};

fn trail(app: App, policy: Policy) -> Vec<u64> {
    let trace = generate(app, &WorkloadParams::small(app, 4));
    let report = simulate(&SystemConfig::default(), policy, &trace);
    report.digest_trail
}

#[test]
fn c2d_on_touch_trail_is_pinned() {
    assert_eq!(
        trail(App::C2d, Policy::OnTouch),
        vec![
            0x40b96e601bd36c95,
            0x3ea16853d151722f,
            0xad8c45b05a0db0f1,
            0x66d55e065be71f3a,
            0xb8c9700e6fbe7755,
            0x7c9f710eec461662,
            0xe71d643219203298,
            0x5c6ad647bb250c4d,
            0x61e7fb49f621ba43,
        ]
    );
}

#[test]
fn c2d_access_counter_trail_is_pinned() {
    assert_eq!(
        trail(App::C2d, Policy::AccessCounter),
        vec![
            0x32a292a51fa43759,
            0x57f15cd8df0dd9c0,
            0xccb25dc477b643ab,
            0xf8127348dbbd2d4e,
            0x5f63319abc84ab14,
            0xe970528867fb196c,
            0x099e880c951b8e32,
            0xdb7792c8ccb6f0d7,
            0x109bc2b5f64d10fe,
        ]
    );
}

#[test]
fn c2d_duplication_trail_is_pinned() {
    assert_eq!(
        trail(App::C2d, Policy::Duplication),
        vec![
            0x2247f4b65a83e6df,
            0x029b99288e8f001e,
            0xdbb5d95b13c7d4cc,
            0x863b14422a60844f,
            0x62a375c7e8fcd9cc,
            0xd781aae41c308800,
            0x70e821b75f71588c,
            0xf6543f798193e71e,
            0xa322f3dde7485ac4,
        ]
    );
}

#[test]
fn c2d_oasis_trail_is_pinned() {
    assert_eq!(
        trail(App::C2d, Policy::oasis()),
        vec![
            0xed1264e858b97900,
            0xbae9807e83af2b1c,
            0x1e2683a92fa83443,
            0xfb9bfd7938cde3e1,
            0x6d478187a7e39218,
            0x981b5af1b19a7727,
            0xdf52ff9164b7c876,
            0xf2e4e3ebf4a0812d,
            0x7b7861cb80f1773b,
        ]
    );
}

#[test]
fn mm_trails_are_pinned_for_all_four_policies() {
    assert_eq!(trail(App::Mm, Policy::OnTouch), vec![0x640657b856e6a885]);
    assert_eq!(
        trail(App::Mm, Policy::AccessCounter),
        vec![0x0f7ed771fdf07d5d]
    );
    assert_eq!(
        trail(App::Mm, Policy::Duplication),
        vec![0x11dc90e309892a4f]
    );
    assert_eq!(trail(App::Mm, Policy::oasis()), vec![0xb137fa2e4e5e3050]);
}
