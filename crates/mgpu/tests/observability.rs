//! Cross-layer observability guarantees: tracing/metrics must never
//! perturb the simulation, and traces must be deterministic artifacts.

use oasis_engine::chrome_trace_json;
use oasis_mgpu::{simulate, Policy, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams};

fn trace_with_seed(app: App, seed: u64) -> oasis_workloads::Trace {
    let mut params = WorkloadParams::small(app, 4);
    params.seed = seed;
    generate(app, &params)
}

fn observed_config() -> SystemConfig {
    SystemConfig {
        trace_capacity: 1 << 16,
        metrics: true,
        ..SystemConfig::default()
    }
}

#[test]
fn same_seed_runs_produce_byte_identical_chrome_traces() {
    let trace = trace_with_seed(App::C2d, 7);
    let cfg = observed_config();
    let a = simulate(&cfg, Policy::oasis(), &trace);
    let b = simulate(&cfg, Policy::oasis(), &trace);
    let ja = chrome_trace_json(&a.trace_events);
    let jb = chrome_trace_json(&b.trace_events);
    assert!(!a.trace_events.is_empty(), "an observed run records events");
    assert_eq!(ja, jb, "same seed must give a byte-identical trace");
    assert!(ja.starts_with("[\n"), "chrome trace is a JSON array");
    assert!(ja.ends_with("\n]\n"));
}

#[test]
fn different_seeds_produce_different_traces() {
    // BFS is a random-pattern app, so its trace actually varies by seed
    // (the stencil apps are seed-independent by construction).
    let cfg = observed_config();
    let a = simulate(&cfg, Policy::oasis(), &trace_with_seed(App::Bfs, 7));
    let b = simulate(&cfg, Policy::oasis(), &trace_with_seed(App::Bfs, 8));
    assert_ne!(
        chrome_trace_json(&a.trace_events),
        chrome_trace_json(&b.trace_events),
        "different seeds must not collide"
    );
}

#[test]
fn observability_never_perturbs_the_simulation() {
    // The core non-interference invariant: a fully observed run is
    // bit-identical (digest trail, every counter) to a dark one.
    let trace = trace_with_seed(App::Mm, 3);
    let dark = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
    let observed = simulate(&observed_config(), Policy::oasis(), &trace);
    assert_eq!(dark.digest_trail, observed.digest_trail);
    assert!(
        dark.same_simulation(&observed),
        "tracing/metrics changed simulated behavior"
    );
    assert!(dark.trace_events.is_empty(), "dark run records nothing");
    assert_eq!(dark.metrics.counter_count(), 0);
}

#[test]
fn epoch_rollups_cover_the_whole_run() {
    let trace = trace_with_seed(App::C2d, 5);
    let r = simulate(&observed_config(), Policy::oasis(), &trace);
    assert_eq!(r.epoch_rollups.len(), trace.phases.len());
    let accesses: u64 = r.epoch_rollups.iter().map(|e| e.accesses).sum();
    assert_eq!(accesses, r.accesses, "rollup deltas must sum to the totals");
    let faults: u64 = r.epoch_rollups.iter().map(|e| e.uvm.total_faults()).sum();
    assert_eq!(faults, r.uvm.total_faults());
    let sim: u64 = r.epoch_rollups.iter().map(|e| e.sim_time.as_ps()).sum();
    assert_eq!(sim, r.total_time.as_ps(), "epoch times partition the run");
    for (i, e) in r.epoch_rollups.iter().enumerate() {
        assert_eq!(e.epoch, i as u64);
    }
}

#[test]
fn metrics_registry_carries_fault_attribution_and_rollups() {
    let trace = trace_with_seed(App::Mm, 11);
    let r = simulate(&observed_config(), Policy::oasis(), &trace);
    let m = &r.metrics;
    // Phase attribution: every far fault lands one service-time sample.
    let service = m.histogram("uvm.fault.service_ns").expect("service hist");
    assert_eq!(service.count(), r.uvm.total_faults());
    assert!(service.sum_ns() > 0);
    // Access-path counters agree with the report's own totals.
    assert_eq!(m.counter("access.local"), r.local_accesses);
    assert_eq!(m.counter("access.remote"), r.remote_accesses);
    assert_eq!(m.counter("uvm.fault.far"), r.uvm.far_faults);
    // Report-time rollups: fabric links and policy internals are present.
    assert!(m.counter("fabric.nvlink0.bytes") > 0);
    assert!(
        m.counters().any(|(k, _)| k.starts_with("otable.")),
        "OASIS publishes O-Table counters"
    );
    // TLB walks were observed for every L2 miss.
    let walks = m.histogram("tlb.walk_ns").expect("walk hist");
    assert_eq!(walks.count(), r.l2_tlb.1);
}

#[test]
fn verify_replay_holds_with_tracing_enabled() {
    // Kill/resume under full observability: the resumed run must match
    // the straight run exactly (obs state is rebuilt from config, not
    // restored, and must not leak into checkpoints).
    use oasis_mgpu::System;
    let trace = trace_with_seed(App::C2d, 2);
    let cfg = observed_config();
    let straight = simulate(&cfg, Policy::oasis(), &trace);
    let mut buf = Vec::new();
    {
        let mut first = System::new(cfg.clone(), &Policy::oasis());
        first.run_prefix(&trace, 4).expect("prefix");
        first.checkpoint(&mut buf).expect("checkpoint");
    }
    let mut resumed = System::resume(&mut buf.as_slice(), &trace).expect("resume");
    let replayed = resumed.run(&trace).expect("resumed run");
    assert!(replayed.same_simulation(&straight));
    // Rollups restart at the resume point: only post-checkpoint epochs.
    assert_eq!(
        replayed.epoch_rollups.len(),
        trace.phases.len() - 4,
        "a resumed run only rolls up what it executed"
    );
}
