//! Graceful degradation under injected hardware faults: permanent NVLink
//! failures reroute over PCIe, ECC frame poisoning is re-serviced through
//! the driver's bounded-retry path, retry exhaustion is a typed error,
//! and every degraded run stays deterministic — including across a
//! kill/resume taken in the middle of a degraded window.

use oasis_engine::error::{ErrorPolicy, SimError};
use oasis_mgpu::{simulate, try_simulate, FaultPlan, Policy, System, SystemConfig};
use oasis_uvm::ECC_RETRY_BUDGET;
use oasis_workloads::{generate, App, WorkloadParams};

fn trace() -> oasis_workloads::Trace {
    // C2D is multi-phase (9 epochs) with neighbor halo exchange, so
    // link-down windows land mid-run and cross-GPU traffic is guaranteed.
    let mut params = WorkloadParams::small(App::C2d, 4);
    params.footprint_mb = 4;
    generate(App::C2d, &params)
}

fn degraded_config(spec: &str) -> SystemConfig {
    SystemConfig {
        fault_plan: FaultPlan::parse(spec).expect("valid fault plan"),
        ..SystemConfig::default()
    }
}

#[test]
fn link_down_run_completes_over_pcie_for_every_policy() {
    let trace = trace();
    for policy in [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ] {
        let cfg = degraded_config("seed:5,down:0-1@2");
        let r = simulate(&cfg, policy.clone(), &trace);
        assert_eq!(
            r.accesses as usize,
            trace.total_accesses(),
            "{}: degraded run must retire every access",
            policy.name()
        );
        assert_eq!(r.faults.link_faults, 1, "{}", policy.name());
        assert!(
            r.faults.reroutes > 0,
            "{}: traffic over the dead pair must take the PCIe fallback",
            policy.name()
        );
        assert_eq!(r.faults.rerouted_bytes > 0, r.faults.reroutes > 0);
        assert_eq!(r.errors_recorded, 0, "{}", policy.name());
    }
}

#[test]
fn degraded_runs_replay_digest_identical() {
    let trace = trace();
    let cfg = degraded_config("seed:9,down:0-1@2,flaky:2-3@1-6:1/4,ecc:0@3x2");
    let a = simulate(&cfg, Policy::oasis(), &trace);
    let b = simulate(&cfg, Policy::oasis(), &trace);
    assert_eq!(a.digest_trail, b.digest_trail);
    assert!(
        a.same_simulation(&b),
        "same plan + seed must replay exactly"
    );
    assert!(a.faults.link_faults > 0);
}

#[test]
fn kill_and_resume_mid_degradation_window_is_bit_identical() {
    // The link goes down at epoch 2 and the glitch window spans epochs
    // 1..6; the kill lands at epoch 4 — inside both — so the checkpoint
    // must carry the degraded link health, the fault RNG mid-stream, and
    // the recovery counters.
    let trace = trace();
    let spec = "seed:13,down:0-1@2,flaky:2-3@1-6:1/4,ecc:1@3x2";
    for policy in [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ] {
        let cfg = degraded_config(spec);
        let straight = simulate(&cfg, policy.clone(), &trace);
        let mut buf = Vec::new();
        {
            let mut first = System::new(cfg.clone(), &policy);
            first.run_prefix(&trace, 4).expect("prefix runs degraded");
            first.checkpoint(&mut buf).expect("checkpoint writes");
            // `first` drops here: the simulated crash mid-degradation.
        }
        let mut resumed = System::resume(&mut buf.as_slice(), &trace).expect("resume");
        let replayed = resumed.run(&trace).expect("resumed run completes");
        replayed
            .check_digests_against(&straight)
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
        assert!(
            replayed.same_simulation(&straight),
            "{}: kill/resume inside the degraded window diverged",
            policy.name()
        );
        assert_eq!(replayed.faults, straight.faults, "{}", policy.name());
    }
}

#[test]
fn ecc_poisoning_quarantines_and_reservices() {
    let trace = trace();
    let cfg = degraded_config("seed:3,ecc:0@2x3");
    let r = simulate(&cfg, Policy::oasis(), &trace);
    assert_eq!(r.accesses as usize, trace.total_accesses());
    assert!(
        r.uvm.ecc_quarantines > 0,
        "resident frames must be struck at epoch 2"
    );
    assert!(
        r.uvm.fault_retries > 0,
        "lost pages are re-serviced via replayed far faults"
    );
    assert_eq!(r.errors_recorded, 0);
}

#[test]
fn flaky_link_pays_crc_latency_but_completes() {
    let trace = trace();
    let clean = simulate(&SystemConfig::default(), Policy::AccessCounter, &trace);
    let cfg = degraded_config("seed:7,flaky:0-1@0-9:1/2");
    let flaky = simulate(&cfg, Policy::AccessCounter, &trace);
    assert_eq!(flaky.accesses, clean.accesses);
    assert!(
        flaky.faults.crc_retries > 0,
        "the window must tax transfers"
    );
    assert!(
        flaky.total_time > clean.total_time,
        "CRC retransmissions cost real latency ({} vs {})",
        flaky.total_time,
        clean.total_time
    );
}

#[test]
fn dead_links_demote_duplication_in_the_oasis_controller() {
    // With every NVLink pair down, any duplicate served from a GPU owner
    // crosses a dead link and the controller demotes the object's policy.
    let trace = trace();
    let cfg = SystemConfig {
        metrics: true,
        ..degraded_config(
            "seed:2,down:0-1@0,down:0-2@0,down:0-3@0,down:1-2@0,down:1-3@0,down:2-3@0",
        )
    };
    let r = simulate(&cfg, Policy::oasis(), &trace);
    assert_eq!(r.faults.link_faults, 6);
    assert!(
        r.metrics.counter("oasis.link_demotions") > 0,
        "duplication across dead links must be demoted"
    );
    assert_eq!(
        r.metrics.counter("uvm.link_demotions"),
        r.metrics.counter("oasis.link_demotions"),
        "driver notifications and controller demotions must agree"
    );
}

#[test]
fn retry_exhaustion_is_a_typed_error_never_a_panic() {
    // One frame per GPU: the ECC strike quarantines GPU 0's only frame,
    // so re-servicing can never find a destination and the bounded retry
    // loop must surface the typed exhaustion error (fail-fast aborts the
    // run with it; it is never a panic).
    let mut params = WorkloadParams::small(App::C2d, 4);
    params.footprint_mb = 2;
    let trace = generate(App::C2d, &params);
    let cfg = SystemConfig {
        gpu_capacity_pages: Some(1),
        ..degraded_config("seed:1,ecc:0@1x1")
    };
    let err = try_simulate(&cfg, Policy::OnTouch, &trace)
        .expect_err("a frame-starved GPU cannot absorb an ECC strike");
    match err.error {
        SimError::HardwareExhausted { gpu, retries, .. } => {
            assert_eq!(gpu, 0);
            assert_eq!(retries, ECC_RETRY_BUDGET);
        }
        other => panic!("expected HardwareExhausted, got {other}"),
    }
}

#[test]
fn record_and_continue_survives_retry_exhaustion() {
    let mut params = WorkloadParams::small(App::C2d, 4);
    params.footprint_mb = 2;
    let trace = generate(App::C2d, &params);
    let cfg = SystemConfig {
        gpu_capacity_pages: Some(1),
        error_policy: ErrorPolicy::RecordAndContinue,
        ..degraded_config("seed:1,ecc:0@1x1")
    };
    let r = try_simulate(&cfg, Policy::OnTouch, &trace).expect("lenient run limps through");
    assert!(r.errors_recorded > 0);
    assert!(
        r.error_samples.iter().any(|s| s.contains("unrecoverable")),
        "samples: {:?}",
        r.error_samples
    );
}
