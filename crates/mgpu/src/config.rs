//! System configuration (Table I) and policy selection.

use oasis_core::controller::{OasisConfig, OasisController};
use oasis_core::inmem::{InMemCosts, OasisInMem};
use oasis_core::tracker::ObjectTracker;
use oasis_engine::codec::{ByteReader, ByteWriter, CodecError};
use oasis_engine::{Duration, ErrorPolicy};
use oasis_grit::{GritConfig, GritEngine};
use oasis_interconnect::{FabricConfig, FaultPlan};
use oasis_mem::types::PageSize;
use oasis_uvm::costs::UvmCosts;
use oasis_uvm::policy::{
    AccessCounterPolicy, DuplicationPolicy, IdealPolicy, OnTouchPolicy, PolicyEngine,
};

/// Where managed pages start out (Fig. 21's sensitivity study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// All pages begin in host memory (the baseline).
    #[default]
    Host,
    /// Pages are distributed round-robin across the GPUs.
    Striped,
}

/// When the sim-guard runtime invariant checker runs during a simulation.
///
/// The checker ([`oasis_uvm::check_mem_state`] plus the policy engine's
/// [`check_invariants`](oasis_uvm::policy::PolicyEngine::check_invariants)
/// and a TLB-vs-page-table sweep) walks the whole memory state, so its cost
/// scales with footprint; pick the granularity the run can afford.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// Never check (fastest; normal performance sweeps).
    #[default]
    Off,
    /// Check at every epoch boundary (kernel launch) and at end of run.
    Epoch,
    /// Check after every memory transaction (slow; fault-injection runs).
    Step,
}

/// The page-management policy a run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Uniform on-touch migration (the baseline of every figure).
    OnTouch,
    /// Uniform access counter-based migration.
    AccessCounter,
    /// Uniform page duplication.
    Duplication,
    /// The hypothetical Ideal configuration of Section IV-A.
    Ideal,
    /// Hardware OASIS.
    Oasis(OasisConfig),
    /// OASIS-InMem (software-only).
    OasisInMem(OasisConfig),
    /// The GRIT baseline.
    Grit(GritConfig),
}

impl Policy {
    /// OASIS with default parameters.
    pub fn oasis() -> Self {
        Policy::Oasis(OasisConfig::default())
    }

    /// OASIS-InMem with default parameters.
    pub fn oasis_inmem() -> Self {
        Policy::OasisInMem(OasisConfig::default())
    }

    /// GRIT with default parameters.
    pub fn grit() -> Self {
        Policy::Grit(GritConfig::default())
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::OnTouch => "on-touch",
            Policy::AccessCounter => "access-counter",
            Policy::Duplication => "duplication",
            Policy::Ideal => "ideal",
            Policy::Oasis(_) => "oasis",
            Policy::OasisInMem(_) => "oasis-inmem",
            Policy::Grit(_) => "grit",
        }
    }

    /// Instantiates the policy engine.
    pub fn build(&self) -> Box<dyn PolicyEngine> {
        match self {
            Policy::OnTouch => Box::new(OnTouchPolicy),
            Policy::AccessCounter => Box::new(AccessCounterPolicy),
            Policy::Duplication => Box::new(DuplicationPolicy),
            Policy::Ideal => Box::new(IdealPolicy),
            Policy::Oasis(c) => Box::new(OasisController::with_config(*c)),
            Policy::OasisInMem(c) => Box::new(OasisInMem::with_config(*c, InMemCosts::default())),
            Policy::Grit(c) => Box::new(GritEngine::with_config(*c)),
        }
    }

    /// The pointer tracker matching this policy's tagging mode.
    pub fn tracker(&self) -> ObjectTracker {
        match self {
            Policy::Oasis(c) => ObjectTracker::hardware().with_id_bits(c.id_bits),
            Policy::OasisInMem(_) => ObjectTracker::in_mem(),
            // Non-OASIS policies don't tag pointers; the InMem tracker
            // leaves the address bits untouched except the (ignored)
            // config bit, so reuse it with hardware mode off.
            _ => ObjectTracker::in_mem(),
        }
    }
}

/// The simulated platform (Table I defaults).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of GPUs (4 in the baseline; 8/16 in Fig. 17).
    pub gpu_count: usize,
    /// Translation granularity (4 KiB baseline; 2 MiB in Fig. 19).
    pub page_size: PageSize,
    /// Concurrent outstanding accesses per GPU (models the 64 CUs' memory
    /// parallelism at trace granularity).
    pub lanes_per_gpu: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// L1 TLB geometry: (entries, ways). Table I: 32-entry, 32-way.
    pub l1_tlb: (usize, usize),
    /// L2 TLB geometry: (entries, ways). Table I: 512-entry, 16-way.
    pub l2_tlb: (usize, usize),
    /// L2 cache geometry: (bytes, ways, line bytes). Table I: 256 KB,
    /// 16-way.
    pub l2_cache: (u64, usize, u64),
    /// L1 TLB hit latency (cycles).
    pub l1_tlb_cycles: u64,
    /// L2 TLB lookup latency (cycles).
    pub l2_tlb_cycles: u64,
    /// GMMU page-walk latency (cycles).
    pub page_walk_cycles: u64,
    /// L2 cache hit latency.
    pub l2_cache_latency: Duration,
    /// Local DRAM access latency.
    pub dram_latency: Duration,
    /// Extra per-transaction overhead for accesses served from a peer
    /// GPU's memory over NVLink (request serialization at the remote port,
    /// protocol turnaround). This is the exposed cost of *not*
    /// migrating/duplicating data.
    pub remote_access_overhead: Duration,
    /// Same, for accesses served from host memory over PCIe (higher:
    /// longer path, no peer caching).
    pub host_access_overhead: Duration,
    /// Local DRAM bandwidth (bytes/second).
    pub dram_bytes_per_sec: u64,
    /// Interconnect parameters (NVLink 300 GB/s, PCIe 32 GB/s).
    pub fabric: FabricConfig,
    /// UVM driver latency parameters.
    pub uvm_costs: UvmCosts,
    /// Remote accesses per 64 KiB group before a counter migration
    /// (Table I: 256).
    pub counter_threshold: u32,
    /// Real coalesced accesses each sampled trace transaction stands for
    /// (counter increments by this, keeping the effective threshold
    /// faithful despite trace sampling).
    pub counter_weight: u32,
    /// GPU memory capacity in pages (`None` = enough for the workload;
    /// set for the Fig. 25 oversubscription study).
    pub gpu_capacity_pages: Option<u64>,
    /// Initial page placement.
    pub placement: Placement,
    /// Enable the driver's neighborhood group prefetcher (extension; the
    /// paper-faithful baseline leaves it off).
    pub prefetch_group: bool,
    /// Host-side overhead per kernel launch.
    pub kernel_launch_overhead: Duration,
    /// What [`System::run`](crate::System::run) does when an access fails
    /// with a typed error: abort the run (tests, debugging) or record it
    /// and keep simulating (long sweeps).
    pub error_policy: ErrorPolicy,
    /// When the sim-guard invariant checker runs.
    pub guard: GuardMode,
    /// Progress-watchdog window: how many consecutive failed accesses with
    /// no driver state change [`System::run`](crate::System::run) tolerates
    /// before aborting with
    /// [`SimError::Stalled`](oasis_engine::error::SimError). Any retired
    /// access or page-state transition resets the count; only a run that is
    /// truly spinning (every event rejected, nothing moving) trips it.
    pub stall_window: u64,
    /// Event-trace ring capacity. 0 (the default) installs the zero-cost
    /// [`NullTracer`](oasis_engine::NullTracer); nonzero installs a bounded
    /// [`RingTracer`](oasis_engine::RingTracer) keeping the most recent N
    /// events. Tracer *state* is observational — excluded from digests and
    /// checkpoints — but this knob travels with the config section so a
    /// resumed run rebuilds the same observer.
    pub trace_capacity: usize,
    /// Enable the hierarchical metrics registry (counters + latency
    /// histograms surfaced in [`RunReport`](crate::RunReport)).
    pub metrics: bool,
    /// Deterministic hardware-fault plan (link failures, CRC-glitch
    /// windows, ECC page poisoning). Empty by default: the zero-fault data
    /// path is bit-identical to a build without the fault layer.
    pub fault_plan: FaultPlan,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            gpu_count: 4,
            page_size: PageSize::Small4K,
            lanes_per_gpu: 16,
            clock_ghz: 1.0,
            l1_tlb: (32, 32),
            l2_tlb: (512, 16),
            l2_cache: (256 * 1024, 16, 64),
            l1_tlb_cycles: 1,
            l2_tlb_cycles: 10,
            page_walk_cycles: 500,
            l2_cache_latency: Duration::from_ns(150),
            dram_latency: Duration::from_ns(250),
            remote_access_overhead: Duration::from_us(1),
            host_access_overhead: Duration::from_us(3),
            dram_bytes_per_sec: 512_000_000_000,
            fabric: FabricConfig::default(),
            uvm_costs: UvmCosts::default(),
            counter_threshold: 256,
            counter_weight: 2,
            gpu_capacity_pages: None,
            placement: Placement::Host,
            prefetch_group: false,
            kernel_launch_overhead: Duration::from_us(5),
            error_policy: ErrorPolicy::FailFast,
            guard: GuardMode::Off,
            stall_window: 100_000,
            trace_capacity: 0,
            metrics: false,
            fault_plan: FaultPlan::default(),
        }
    }
}

impl SystemConfig {
    /// The baseline with a different GPU count (Fig. 17).
    pub fn with_gpus(gpu_count: usize) -> Self {
        SystemConfig {
            gpu_count,
            ..SystemConfig::default()
        }
    }

    /// The baseline with 2 MiB pages (Fig. 19).
    pub fn with_large_pages() -> Self {
        SystemConfig {
            page_size: PageSize::Large2M,
            ..SystemConfig::default()
        }
    }

    /// Caps each GPU's memory so that the given workload footprint
    /// oversubscribes it by `percent` (e.g. 150 for Fig. 25): total GPU
    /// memory = footprint / (percent/100), split evenly.
    pub fn with_oversubscription(mut self, footprint_bytes: u64, percent: u64) -> Self {
        assert!(percent > 100, "oversubscription needs percent > 100");
        let total_pages = self.page_size.pages_for(footprint_bytes * 100 / percent);
        self.gpu_capacity_pages = Some((total_pages / self.gpu_count as u64).max(1));
        self
    }

    /// L1 TLB hit latency as a duration.
    pub fn l1_tlb_latency(&self) -> Duration {
        Duration::from_cycles(self.l1_tlb_cycles, self.clock_ghz)
    }

    /// L2 TLB lookup latency as a duration.
    pub fn l2_tlb_latency(&self) -> Duration {
        Duration::from_cycles(self.l2_tlb_cycles, self.clock_ghz)
    }

    /// Page-walk latency as a duration.
    pub fn page_walk_latency(&self) -> Duration {
        Duration::from_cycles(self.page_walk_cycles, self.clock_ghz)
    }

    /// Serializes the full configuration into a checkpoint section so a
    /// resumed run rebuilds a geometrically identical platform.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.gpu_count as u64);
        w.u8(match self.page_size {
            PageSize::Small4K => 0,
            PageSize::Large2M => 1,
        });
        w.u64(self.lanes_per_gpu as u64);
        w.f64(self.clock_ghz);
        for (entries, ways) in [self.l1_tlb, self.l2_tlb] {
            w.u64(entries as u64);
            w.u64(ways as u64);
        }
        w.u64(self.l2_cache.0);
        w.u64(self.l2_cache.1 as u64);
        w.u64(self.l2_cache.2);
        w.u64(self.l1_tlb_cycles);
        w.u64(self.l2_tlb_cycles);
        w.u64(self.page_walk_cycles);
        for d in [
            self.l2_cache_latency,
            self.dram_latency,
            self.remote_access_overhead,
            self.host_access_overhead,
        ] {
            w.u64(d.as_ps());
        }
        w.u64(self.dram_bytes_per_sec);
        w.u64(self.fabric.nvlink_bytes_per_sec);
        w.u64(self.fabric.nvlink_latency.as_ps());
        w.u64(self.fabric.pcie_bytes_per_sec);
        w.u64(self.fabric.pcie_latency.as_ps());
        for d in [
            self.uvm_costs.far_fault_base,
            self.uvm_costs.protection_fault_base,
            self.uvm_costs.pte_update,
            self.uvm_costs.invalidation_base,
            self.uvm_costs.invalidation_extra,
            self.uvm_costs.counter_migration_base,
            self.uvm_costs.fault_service,
        ] {
            w.u64(d.as_ps());
        }
        w.u32(self.counter_threshold);
        w.u32(self.counter_weight);
        w.bool(self.gpu_capacity_pages.is_some());
        w.u64(self.gpu_capacity_pages.unwrap_or(0));
        w.u8(match self.placement {
            Placement::Host => 0,
            Placement::Striped => 1,
        });
        w.bool(self.prefetch_group);
        w.u64(self.kernel_launch_overhead.as_ps());
        w.u8(match self.error_policy {
            ErrorPolicy::FailFast => 0,
            ErrorPolicy::RecordAndContinue => 1,
        });
        w.u8(match self.guard {
            GuardMode::Off => 0,
            GuardMode::Epoch => 1,
            GuardMode::Step => 2,
        });
        w.u64(self.stall_window);
        w.u64(self.trace_capacity as u64);
        w.bool(self.metrics);
        self.fault_plan.encode(w);
    }

    /// Reads a configuration [`encode`](SystemConfig::encode)d into a
    /// checkpoint, rejecting unknown enum tags as malformed.
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let gpu_count = r.usize()?;
        let page_size = match r.u8()? {
            0 => PageSize::Small4K,
            1 => PageSize::Large2M,
            b => return Err(r.malformed(format!("invalid page-size byte {b}"))),
        };
        let lanes_per_gpu = r.usize()?;
        let clock_ghz = r.f64()?;
        if !(clock_ghz.is_finite() && clock_ghz > 0.0) {
            return Err(r.malformed(format!("invalid clock frequency {clock_ghz}")));
        }
        let l1_tlb = (r.usize()?, r.usize()?);
        let l2_tlb = (r.usize()?, r.usize()?);
        let l2_cache = (r.u64()?, r.usize()?, r.u64()?);
        let l1_tlb_cycles = r.u64()?;
        let l2_tlb_cycles = r.u64()?;
        let page_walk_cycles = r.u64()?;
        let ps = |r: &mut ByteReader<'_>| r.u64().map(Duration::from_ps);
        let l2_cache_latency = ps(r)?;
        let dram_latency = ps(r)?;
        let remote_access_overhead = ps(r)?;
        let host_access_overhead = ps(r)?;
        let dram_bytes_per_sec = r.u64()?;
        let fabric = FabricConfig {
            nvlink_bytes_per_sec: r.u64()?,
            nvlink_latency: ps(r)?,
            pcie_bytes_per_sec: r.u64()?,
            pcie_latency: ps(r)?,
        };
        let uvm_costs = UvmCosts {
            far_fault_base: ps(r)?,
            protection_fault_base: ps(r)?,
            pte_update: ps(r)?,
            invalidation_base: ps(r)?,
            invalidation_extra: ps(r)?,
            counter_migration_base: ps(r)?,
            fault_service: ps(r)?,
        };
        let counter_threshold = r.u32()?;
        let counter_weight = r.u32()?;
        let capped = r.bool()?;
        let capacity = r.u64()?;
        let gpu_capacity_pages = capped.then_some(capacity);
        let placement = match r.u8()? {
            0 => Placement::Host,
            1 => Placement::Striped,
            b => return Err(r.malformed(format!("invalid placement byte {b}"))),
        };
        let prefetch_group = r.bool()?;
        let kernel_launch_overhead = ps(r)?;
        let error_policy = match r.u8()? {
            0 => ErrorPolicy::FailFast,
            1 => ErrorPolicy::RecordAndContinue,
            b => return Err(r.malformed(format!("invalid error-policy byte {b}"))),
        };
        let guard = match r.u8()? {
            0 => GuardMode::Off,
            1 => GuardMode::Epoch,
            2 => GuardMode::Step,
            b => return Err(r.malformed(format!("invalid guard-mode byte {b}"))),
        };
        let stall_window = r.u64()?;
        let trace_capacity = r.usize()?;
        let metrics = r.bool()?;
        let fault_plan = FaultPlan::decode(r)?;
        Ok(SystemConfig {
            gpu_count,
            page_size,
            lanes_per_gpu,
            clock_ghz,
            l1_tlb,
            l2_tlb,
            l2_cache,
            l1_tlb_cycles,
            l2_tlb_cycles,
            page_walk_cycles,
            l2_cache_latency,
            dram_latency,
            remote_access_overhead,
            host_access_overhead,
            dram_bytes_per_sec,
            fabric,
            uvm_costs,
            counter_threshold,
            counter_weight,
            gpu_capacity_pages,
            placement,
            prefetch_group,
            kernel_launch_overhead,
            error_policy,
            guard,
            stall_window,
            trace_capacity,
            metrics,
            fault_plan,
        })
    }
}

impl Policy {
    /// Serializes the policy selection (variant plus parameters) into a
    /// checkpoint section.
    pub(crate) fn encode(&self, w: &mut ByteWriter) {
        match self {
            Policy::OnTouch => w.u8(0),
            Policy::AccessCounter => w.u8(1),
            Policy::Duplication => w.u8(2),
            Policy::Ideal => w.u8(3),
            Policy::Oasis(c) | Policy::OasisInMem(c) => {
                w.u8(if matches!(self, Policy::Oasis(_)) {
                    4
                } else {
                    5
                });
                w.u8(c.reset_threshold);
                w.u32(c.id_bits);
                w.u64(c.otable_capacity as u64);
                w.bool(c.explicit_resets);
                w.bool(c.host_pt_filter);
            }
            Policy::Grit(c) => {
                w.u8(6);
                w.u8(c.fault_trigger);
                w.u64(c.neighbor_window);
                w.u64(c.pa_cache_entries as u64);
                w.u64(c.attribute_fetch.as_ps());
            }
        }
    }

    /// Reads a policy [`encode`](Policy::encode)d into a checkpoint.
    pub(crate) fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Policy::OnTouch,
            1 => Policy::AccessCounter,
            2 => Policy::Duplication,
            3 => Policy::Ideal,
            tag @ (4 | 5) => {
                let c = OasisConfig {
                    reset_threshold: r.u8()?,
                    id_bits: r.u32()?,
                    otable_capacity: r.usize()?,
                    explicit_resets: r.bool()?,
                    host_pt_filter: r.bool()?,
                };
                if tag == 4 {
                    Policy::Oasis(c)
                } else {
                    Policy::OasisInMem(c)
                }
            }
            6 => Policy::Grit(GritConfig {
                fault_trigger: r.u8()?,
                neighbor_window: r.u64()?,
                pa_cache_entries: r.usize()?,
                attribute_fetch: Duration::from_ps(r.u64()?),
            }),
            b => return Err(r.malformed(format!("invalid policy tag {b}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = SystemConfig::default();
        assert_eq!(c.gpu_count, 4);
        assert_eq!(c.l1_tlb, (32, 32));
        assert_eq!(c.l2_tlb, (512, 16));
        assert_eq!(c.l2_cache.0, 256 * 1024);
        assert_eq!(c.counter_threshold, 256);
        assert_eq!(c.fabric.nvlink_bytes_per_sec, 300_000_000_000);
        assert_eq!(c.fabric.pcie_bytes_per_sec, 32_000_000_000);
        assert_eq!(c.page_size, PageSize::Small4K);
    }

    #[test]
    fn latency_helpers_use_clock() {
        let c = SystemConfig::default();
        assert_eq!(c.l1_tlb_latency(), Duration::from_ns(1));
        assert_eq!(c.l2_tlb_latency(), Duration::from_ns(10));
        assert_eq!(c.page_walk_latency(), Duration::from_ns(500));
    }

    #[test]
    fn oversubscription_caps_capacity() {
        let footprint = 32u64 << 20; // 8192 pages
        let c = SystemConfig::default().with_oversubscription(footprint, 150);
        // 150% oversubscription: capacity = 8192/1.5 ≈ 5461 pages total,
        // ~1365 per GPU.
        let per_gpu = c.gpu_capacity_pages.unwrap();
        assert!((1300..=1400).contains(&per_gpu), "{per_gpu}");
    }

    #[test]
    fn policy_factories() {
        for p in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::Ideal,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            let engine = p.build();
            assert_eq!(engine.name(), p.name());
        }
    }

    #[test]
    fn trackers_match_policy_modes() {
        assert!(Policy::oasis().tracker().is_hardware());
        assert!(!Policy::oasis_inmem().tracker().is_hardware());
        assert!(!Policy::OnTouch.tracker().is_hardware());
    }

    #[test]
    fn config_and_policy_round_trip_through_the_codec() {
        let cfg = SystemConfig {
            gpu_count: 8,
            page_size: PageSize::Large2M,
            clock_ghz: 1.5,
            gpu_capacity_pages: Some(777),
            placement: Placement::Striped,
            error_policy: ErrorPolicy::RecordAndContinue,
            guard: GuardMode::Epoch,
            stall_window: 42,
            trace_capacity: 4096,
            metrics: true,
            fault_plan: FaultPlan::parse("seed:9,down:0-1@2,flaky:2-3@1-6:1/8,ecc:0@3x2")
                .expect("valid plan"),
            ..SystemConfig::default()
        };
        let mut w = ByteWriter::new();
        cfg.encode(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new("config", &buf);
        let back = SystemConfig::decode(&mut r).expect("decode");
        assert!(r.is_empty(), "decode must consume the whole payload");
        let mut w2 = ByteWriter::new();
        back.encode(&mut w2);
        assert_eq!(w2.as_slice(), buf, "re-encoding must be bit-identical");
        assert_eq!(back.gpu_count, 8);
        assert_eq!(back.gpu_capacity_pages, Some(777));
        assert_eq!(back.stall_window, 42);
        assert_eq!(back.trace_capacity, 4096);
        assert!(back.metrics);

        for p in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::Ideal,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            let mut w = ByteWriter::new();
            p.encode(&mut w);
            let buf = w.into_vec();
            let mut r = ByteReader::new("config", &buf);
            let back = Policy::decode(&mut r).expect("decode");
            assert!(r.is_empty());
            assert_eq!(back, p);
        }
    }

    #[test]
    fn bad_enum_tags_are_malformed() {
        let mut r = ByteReader::new("config", &[9]);
        let err = Policy::decode(&mut r).unwrap_err();
        assert!(err.to_string().contains("invalid policy tag"), "{err}");
    }

    #[test]
    fn variant_constructors() {
        assert_eq!(SystemConfig::with_gpus(8).gpu_count, 8);
        assert_eq!(
            SystemConfig::with_large_pages().page_size,
            PageSize::Large2M
        );
    }
}
