//! The assembled system and its trace-driven simulation loop.

use std::io::{Read, Write};
use std::time::Instant;

use oasis_core::tracker::ObjectTracker;
use oasis_engine::codec::{
    fnv1a, ByteWriter, CheckpointReader, CheckpointWriter, CodecError, Restore, Snapshot,
};
use oasis_engine::error::{ErrorPolicy, FaultError, SimError, SimResult, TraceError};
use oasis_engine::{
    CounterHandle, Duration, Endpoint, EventQueue, HistogramHandle, Observer, Time, TraceEvent,
};
use oasis_interconnect::Fabric;
use oasis_mem::layout::AddressSpace;
use oasis_mem::types::{DeviceId, GpuId, ObjectId, Va};
use oasis_uvm::driver::{Outcome, UvmDriver};
use oasis_uvm::fault::PageFault;
use oasis_uvm::guard::check_mem_state;
use oasis_workloads::compiled::{CompiledAccess, CompiledPhase, CompiledTrace};
use oasis_workloads::trace::Trace;

use crate::config::{GuardMode, Placement, Policy, SystemConfig};
use crate::gpu::GpuModel;
use crate::report::{EpochRollup, RunInstrumentation, RunReport};

/// How many recorded-error descriptions a report keeps verbatim.
const ERROR_SAMPLE_CAP: usize = 8;

/// A simulation abort: the typed error plus the 1-based global access
/// number at which it struck. Together with the run's configuration and
/// trace seed this replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// 1-based index of the memory transaction being processed when the
    /// error occurred (0 = during trace load, before any access).
    pub step: u64,
    /// The underlying typed error.
    pub error: SimError,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.step == 0 {
            write!(f, "during trace load: {}", self.error)
        } else {
            write!(f, "at step {}: {}", self.step, self.error)
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A hook invoked at each epoch boundary with the epoch index and driver.
type EpochHook = Box<dyn FnMut(u64, &mut UvmDriver)>;

/// A fully assembled multi-GPU platform ready to execute traces.
pub struct System {
    config: SystemConfig,
    gpus: Vec<GpuModel>,
    fabric: Fabric,
    driver: UvmDriver,
    space: AddressSpace,
    tracker: ObjectTracker,
    tagged_bases: Vec<Va>,
    policy: Policy,
    policy_mix: [u64; 3],
    local_accesses: u64,
    remote_accesses: u64,
    accesses: u64,
    /// Global 1-based access counter (the replay coordinate of errors).
    step: u64,
    /// Errors recorded under [`ErrorPolicy::RecordAndContinue`].
    errors_recorded: u64,
    error_samples: Vec<String>,
    epoch_hook: Option<EpochHook>,
    /// Simulated clock, promoted to a field so a checkpoint can carry it
    /// across process boundaries.
    global: Time,
    /// The next epoch (phase index) to execute; everything before it is
    /// already reflected in the system state.
    next_epoch: u64,
    /// Whether the trace's objects are allocated (by `load` or `resume`).
    loaded: bool,
    /// Fingerprint of the trace this system was loaded with (rejects
    /// resuming a checkpoint against a different trace).
    trace_fingerprint: u64,
    /// Per-epoch state digests accumulated so far.
    digest_trail: Vec<u64>,
    /// The trace pre-resolved against this system's address-space binding
    /// (built lazily on the first `run_*` call, including after resume).
    /// Taken out of the system for the duration of each epoch so the hot
    /// loop can borrow it while mutating everything else.
    compiled: Option<CompiledTrace>,
    /// `OASIS_TRACE_SLOW` / `OASIS_SEG_DEBUG`, sampled once at
    /// construction: a per-access `env::var_os` locks and allocates.
    trace_slow: bool,
    seg_debug: bool,
    /// Pre-resolved metric slots for the per-access path.
    m_local: CounterHandle,
    m_remote: CounterHandle,
    m_walk_ns: HistogramHandle,
    /// Host-side wall-clock measurements.
    instr: RunInstrumentation,
    /// Per-epoch activity deltas. Observational only: never snapshotted,
    /// digested, or checkpointed (a resumed run restarts its rollups).
    epoch_rollups: Vec<EpochRollup>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("policy", &self.policy.name())
            .field("gpus", &self.gpus.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system with the given configuration and policy.
    pub fn new(config: SystemConfig, policy: &Policy) -> Self {
        let gpus = (0..config.gpu_count)
            .map(|_| GpuModel::new(&config))
            .collect();
        let fabric = Fabric::with_plan(config.gpu_count, config.fabric, config.fault_plan.clone());
        let mut driver = UvmDriver::new(
            config.gpu_count,
            config.page_size,
            config.gpu_capacity_pages,
            policy.build(),
            config.uvm_costs,
            config.counter_threshold,
        );
        driver.counter_weight = config.counter_weight;
        driver.prefetch_group = config.prefetch_group;
        driver.obs = Observer::from_config(config.trace_capacity, config.metrics);
        driver.bind_metric_handles();
        let m_local = driver.obs.metrics.counter_handle("access.local");
        let m_remote = driver.obs.metrics.counter_handle("access.remote");
        let m_walk_ns = driver.obs.metrics.histogram_handle("tlb.walk_ns");
        System {
            gpus,
            fabric,
            driver,
            space: AddressSpace::new(),
            tracker: policy.tracker(),
            tagged_bases: Vec::new(),
            policy: policy.clone(),
            policy_mix: [0; 3],
            local_accesses: 0,
            remote_accesses: 0,
            accesses: 0,
            step: 0,
            errors_recorded: 0,
            error_samples: Vec::new(),
            epoch_hook: None,
            global: Time::ZERO,
            next_epoch: 0,
            loaded: false,
            trace_fingerprint: 0,
            digest_trail: Vec::new(),
            compiled: None,
            trace_slow: std::env::var_os("OASIS_TRACE_SLOW").is_some(),
            seg_debug: std::env::var_os("OASIS_SEG_DEBUG").is_some(),
            m_local,
            m_remote,
            m_walk_ns,
            instr: RunInstrumentation::default(),
            epoch_rollups: Vec::new(),
            config,
        }
    }

    /// Installs a hook called at every epoch boundary (kernel launch, after
    /// the policy engine is notified) with the 0-based epoch index and
    /// mutable driver access. Fault-injection campaigns use this for
    /// mid-run perturbations (counter corruption, policy flips).
    pub fn set_epoch_hook(&mut self, hook: impl FnMut(u64, &mut UvmDriver) + 'static) {
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Allocates the trace's objects: VA ranges, pointer tags, page
    /// registration with the configured initial placement.
    fn load(&mut self, trace: &Trace) -> SimResult<()> {
        assert!(
            self.space.is_empty(),
            "System::run consumed; build a fresh System per trace"
        );
        for phase in &trace.phases {
            // A stream for a GPU the system doesn't have can never be
            // scheduled; surface it as a typed trace error up front.
            if phase.per_gpu.len() != self.config.gpu_count {
                return Err(TraceError::GpuOutOfRange {
                    gpu: phase.per_gpu.len(),
                    gpu_count: self.config.gpu_count,
                }
                .into());
            }
        }
        let gpus = self.config.gpu_count as u64;
        for (i, obj) in trace.objects.iter().enumerate() {
            let id = self.space.alloc(obj.name.clone(), obj.bytes);
            debug_assert_eq!(id, ObjectId(i as u16));
            let base = self.space.object(id).base;
            let tagged = self.tracker.tag(id, base);
            self.tagged_bases.push(tagged);
            let placement = self.config.placement;
            self.driver
                .alloc_object(id, base, obj.bytes, |vpn| match placement {
                    Placement::Host => DeviceId::Host,
                    Placement::Striped => DeviceId::Gpu(GpuId((vpn.0 % gpus) as u8)),
                })?;
        }
        self.trace_fingerprint = trace_fingerprint(trace);
        Ok(())
    }

    fn ensure_loaded(&mut self, trace: &Trace) -> Result<(), RunError> {
        if self.loaded {
            return Ok(());
        }
        self.load(trace)
            .map_err(|error| RunError { step: 0, error })?;
        self.loaded = true;
        Ok(())
    }

    /// Compiles the trace against this system's object binding (once per
    /// system; a resumed system compiles on its first `run_*` call). Must
    /// run after `load`/`resume` populated `tagged_bases`.
    fn ensure_compiled(&mut self, trace: &Trace) {
        if self.compiled.is_some() {
            return;
        }
        let sizes: Vec<u64> = (0..self.tagged_bases.len())
            .map(|i| self.space.object(ObjectId(i as u16)).size)
            .collect();
        self.compiled = Some(CompiledTrace::compile(
            trace,
            &self.tagged_bases,
            &sizes,
            self.config.page_size,
        ));
    }

    fn apply_invalidations(&mut self, out: &Outcome) {
        for (g, vpn) in &out.invalidations {
            self.gpus[g.index()].invalidate(*vpn, self.config.page_size);
        }
    }

    /// Reconstructs the typed trace error for an access that failed to
    /// compile — the same error, at the same step, the uncompiled path
    /// raised when it validated per access.
    #[cold]
    fn trace_error(&self, a: &CompiledAccess) -> SimError {
        if (a.obj.0 as usize) >= self.tagged_bases.len() {
            TraceError::UnknownObject { object: a.obj.0 }.into()
        } else {
            TraceError::OffsetOutOfRange {
                object: a.obj.0,
                offset: a.offset,
                size: self.space.object(a.obj).size,
            }
            .into()
        }
    }

    /// Resolves an access whose first PTE probe did not yield a usable
    /// translation: the driver services faults (far or protection) until
    /// one exists, accumulating their latency. Outlined so the fast path
    /// stays small.
    fn resolve_via_faults(
        &mut self,
        now: Time,
        g: usize,
        a: &CompiledAccess,
        latency: &mut Duration,
    ) -> SimResult<oasis_mem::page::Pte> {
        let gpu_id = GpuId(g as u8);
        let vpn = a.vpn;
        let mut rounds = 0u32;
        loop {
            let pte = self.driver.state.local_tables[g].get(vpn).copied();
            let fault = match pte {
                None => PageFault::far(gpu_id, a.va, vpn, a.kind),
                Some(p) if a.kind.is_write() && !p.writable => {
                    PageFault::protection(gpu_id, a.va, vpn)
                }
                Some(p) => return Ok(p),
            };
            if rounds >= 4 {
                // The speculative TLB fill from translate() must not
                // outlive the failed access.
                self.gpus[g].invalidate(vpn, self.config.page_size);
                return Err(FaultError::Unresolvable {
                    vpn: vpn.0,
                    gpu: g as u8,
                    rounds,
                }
                .into());
            }
            let out = match self
                .driver
                .handle_fault(now + *latency, &fault, &mut self.fabric)
            {
                Ok(out) => out,
                Err(e) => {
                    self.gpus[g].invalidate(vpn, self.config.page_size);
                    return Err(e);
                }
            };
            *latency += out.latency;
            self.apply_invalidations(&out);
            rounds += 1;
        }
    }

    /// Executes one pre-resolved memory transaction, returning its total
    /// latency.
    ///
    /// Trace-level validation happened at compile time, so an invalid
    /// access fails here before any state is touched (no residue); a
    /// fault-resolution failure cleans up the TLB fill it caused.
    fn process_access(&mut self, now: Time, g: usize, a: &CompiledAccess) -> SimResult<Duration> {
        if !a.valid {
            return Err(self.trace_error(a));
        }
        self.accesses += 1;
        let va = a.va;
        let vpn = a.vpn;
        let gpu_id = GpuId(g as u8);

        let tlb = self.gpus[g].translate(vpn, &self.config);
        let mut latency = tlb.latency;
        if tlb.l2_miss {
            self.driver
                .obs
                .metrics
                .observe_in(self.m_walk_ns, tlb.latency);
            self.driver.obs.emit(now, || TraceEvent::WalkComplete {
                gpu: g as u8,
                vpn: vpn.0,
                latency: tlb.latency,
            });
        }

        // The local PTE is the source of truth for location and
        // permissions (the TLB models timing only). An L1 TLB hit on a
        // sufficient translation takes the early exit below — one arena
        // probe, no fault scaffolding, no policy or metrics state touched
        // (policy-mix attribution and walk observation only exist on L2
        // misses). Anything else drops into the fault-resolution loop.
        let pte = match self.driver.state.local_tables[g].get(vpn) {
            Some(&p) if !a.kind.is_write() || p.writable => p,
            _ => self.resolve_via_faults(now, g, a, &mut latency)?,
        };
        if tlb.l2_miss {
            self.policy_mix[RunReport::mix_index(pte.policy)] += 1;
        }

        if pte.location == DeviceId::Gpu(gpu_id) {
            self.local_accesses += 1;
            self.driver.obs.metrics.add_to(self.m_local, 1);
            latency +=
                self.gpus[g].local_access(now + latency, va, u64::from(a.bytes), &self.config);
            self.driver.state.frames[g].touch(vpn);
        } else {
            self.remote_accesses += 1;
            self.driver.obs.metrics.add_to(self.m_remote, 1);
            // Request to the remote device, data back over the fabric.
            let depart = now + latency;
            let t = self.fabric.transfer(
                depart,
                pte.location,
                DeviceId::Gpu(gpu_id),
                u64::from(a.bytes),
            );
            let busy = t.latency_from(depart);
            let source = pte.location;
            self.driver.obs.emit(depart, || TraceEvent::LinkTransfer {
                from: device_endpoint(source),
                to: Endpoint::Gpu(g as u8),
                bytes: u64::from(a.bytes),
                busy,
            });
            let overhead = if pte.location.is_host() {
                self.config.host_access_overhead
            } else {
                self.config.remote_access_overhead
            };
            latency += busy + self.config.dram_latency + overhead;
            if let Some(out) =
                self.driver
                    .note_remote_access(now + latency, gpu_id, vpn, &mut self.fabric)?
            {
                latency += out.latency;
                self.apply_invalidations(&out);
            }
        }
        if self.trace_slow && latency > Duration::from_ms(20) {
            eprintln!(
                "slow access: {latency} at {now} gpu{g} vpn {vpn} kind {:?} pte {:?}",
                a.kind,
                self.driver.state.local_tables[g].get(vpn)
            );
        }
        debug_assert!(
            latency < Duration::from_ms(10_000),
            "implausible access latency {latency} at {now} (vpn {vpn})"
        );
        Ok(latency)
    }

    /// Runs the sim-guard invariant sweep over the whole platform:
    /// cross-layer memory state, policy-engine metadata, and
    /// TLB-vs-page-table agreement (a cached translation must be backed by
    /// a live local PTE).
    fn check_guard(&self) -> SimResult<()> {
        let allow_writable_copies = self.policy.name() == "ideal";
        check_mem_state(&self.driver.state, allow_writable_copies)?;
        self.driver.policy.check_invariants()?;
        for (g, gpu) in self.gpus.iter().enumerate() {
            for (level, tlb) in [("L1", &gpu.l1_tlb), ("L2", &gpu.l2_tlb)] {
                for vpn in tlb.cached_vpns() {
                    if self.driver.state.local_tables[g].get(vpn).is_none() {
                        return Err(SimError::invariant(
                            "tlb-maps-unmapped",
                            format!("GPU {g} {level} TLB caches {:#x} with no local PTE", vpn.0),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn guard_due_each_step(&self) -> bool {
        self.config.guard == GuardMode::Step
    }

    /// Routes an access failure per the configured [`ErrorPolicy`]:
    /// `FailFast` aborts the run, `RecordAndContinue` counts it (keeping
    /// the first few verbatim) and lets the simulation proceed.
    fn absorb_error(&mut self, error: SimError) -> Result<(), RunError> {
        match self.config.error_policy {
            ErrorPolicy::FailFast => Err(RunError {
                step: self.step,
                error,
            }),
            ErrorPolicy::RecordAndContinue => {
                self.errors_recorded += 1;
                if self.error_samples.len() < ERROR_SAMPLE_CAP {
                    self.error_samples
                        .push(format!("step {}: {error}", self.step));
                }
                Ok(())
            }
        }
    }

    /// Runs the trace to completion and produces the report, or the typed
    /// error (with its step number) that stopped it.
    ///
    /// On a freshly built system this executes every epoch; on a system
    /// returned by [`System::resume`] (or advanced by
    /// [`System::run_prefix`]) it picks up at the next unexecuted epoch
    /// and the report covers the whole run, as if never interrupted.
    pub fn run(&mut self, trace: &Trace) -> Result<RunReport, RunError> {
        self.run_until(trace, trace.phases.len() as u64)?;
        Ok(self.report(trace))
    }

    /// Runs epochs until `epochs` of the trace have executed (useful for
    /// checkpointing mid-run: run a prefix, checkpoint, drop the system).
    /// Running past the end of the trace is clamped; a prefix the system
    /// has already passed is a no-op.
    pub fn run_prefix(&mut self, trace: &Trace, epochs: u64) -> Result<(), RunError> {
        self.run_until(trace, epochs.min(trace.phases.len() as u64))
    }

    fn run_until(&mut self, trace: &Trace, upto: u64) -> Result<(), RunError> {
        let t0 = Instant::now();
        self.ensure_loaded(trace)?;
        self.ensure_compiled(trace);
        let mut result = Ok(());
        while self.next_epoch < upto {
            // The compiled buffer moves out for the epoch so the hot loop
            // can hold it while mutating the rest of the system.
            let compiled = self.compiled.take().expect("compiled above");
            result = self.run_epoch(trace, &compiled);
            self.compiled = Some(compiled);
            if result.is_err() {
                break;
            }
        }
        self.instr.wall_clock_us += t0.elapsed().as_micros() as u64;
        result
    }

    /// Executes the next epoch (one kernel launch / trace phase) and
    /// records its end-of-epoch state digest.
    fn run_epoch(&mut self, trace: &Trace, compiled: &CompiledTrace) -> Result<(), RunError> {
        let epoch = self.next_epoch;
        let phase = &trace.phases[epoch as usize];
        let cphase = &compiled.phases[epoch as usize];
        let epoch_start = self.global;
        let uvm_before = self.driver.stats;
        let accesses_before = self.accesses;
        self.driver.kernel_launch();
        if let Some(mut hook) = self.epoch_hook.take() {
            hook(epoch, &mut self.driver);
            self.epoch_hook = Some(hook);
        }
        self.global += self.config.kernel_launch_overhead;
        self.apply_scheduled_faults(epoch)?;
        // Grid-wide barriers split the kernel into synchronized
        // segments (in-kernel iteration boundaries). Unlike kernel
        // launches, barriers do not notify the policy engine. Segments are
        // described by index ranges into the per-GPU streams — no
        // per-segment slice vectors.
        let n_barriers = phase.barriers.first().map(Vec::len).unwrap_or(0);
        for seg in 0..=n_barriers {
            let bounds = |g: usize| {
                let start = if seg == 0 {
                    0
                } else {
                    phase.barriers[g][seg - 1]
                };
                let end = if seg == n_barriers {
                    phase.per_gpu[g].len()
                } else {
                    phase.barriers[g][seg]
                };
                (start, end)
            };
            let seg_start = self.global;
            self.global = self.run_segment(seg_start, cphase, &bounds)?;
            if self.seg_debug {
                let n: usize = (0..self.config.gpu_count)
                    .map(|g| {
                        let (s, e) = bounds(g);
                        e - s
                    })
                    .sum();
                eprintln!(
                    "[seg {seg}/{n_barriers} of {}] {n} accesses in {:.3} ms",
                    phase.name,
                    (self.global - seg_start).as_us() / 1000.0
                );
            }
        }
        if self.config.guard == GuardMode::Epoch {
            self.check_guard().map_err(|error| RunError {
                step: self.step,
                error,
            })?;
        }
        self.next_epoch += 1;
        self.epoch_rollups.push(EpochRollup {
            epoch,
            sim_time: self.global - epoch_start,
            accesses: self.accesses - accesses_before,
            uvm: self.driver.stats.minus(&uvm_before),
        });
        self.digest_trail.push(self.digest());
        Ok(())
    }

    /// Applies the fault plan's schedule for the start of `epoch`: marks
    /// freshly failed NVLink pairs down (their traffic takes the staged
    /// PCIe reroute from here on) and poisons scheduled ECC victim
    /// frames, re-servicing the lost pages through the driver's
    /// bounded-retry path. Victims are drawn from the struck GPU's
    /// resident set in recency order with the plan RNG, so the whole
    /// fault stream replays from one seed. Recovery failures (retry
    /// budget exhausted on a frame-starved GPU) route through the
    /// configured [`ErrorPolicy`] like any access failure.
    fn apply_scheduled_faults(&mut self, epoch: u64) -> Result<(), RunError> {
        for (a, b) in self.fabric.begin_epoch(epoch) {
            self.driver.obs.metrics.add("fabric.link_faults", 1);
            self.driver
                .obs
                .emit(self.global, || TraceEvent::LinkFault { a, b });
        }
        for ev in self.fabric.ecc_events_for(epoch) {
            let gpu = GpuId(ev.gpu);
            for _ in 0..ev.frames {
                let resident: Vec<_> = self.driver.state.frames[gpu.index()]
                    .pages_by_recency()
                    .collect();
                if resident.is_empty() {
                    break; // nothing resident left to strike
                }
                let vpn = resident[self.fabric.fault_draw(resident.len())];
                match self
                    .driver
                    .poison_frame(self.global, gpu, vpn, &mut self.fabric)
                {
                    Ok(Some(out)) => {
                        self.global += out.latency;
                        self.apply_invalidations(&out);
                    }
                    Ok(None) => {}
                    Err(error) => self.absorb_error(error)?,
                }
            }
        }
        Ok(())
    }

    /// Runs one synchronized segment of per-GPU streams starting at
    /// `start`, returning the time all GPUs completed it. The segment is
    /// `bounds(g)` index ranges into the phase's pre-resolved streams.
    fn run_segment(
        &mut self,
        start: Time,
        phase: &CompiledPhase,
        bounds: &dyn Fn(usize) -> (usize, usize),
    ) -> Result<Time, RunError> {
        let lanes = self.config.lanes_per_gpu.max(1);
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut next = vec![0usize; phase.per_gpu.len()];
        let mut ends = vec![0usize; phase.per_gpu.len()];
        for g in 0..phase.per_gpu.len() {
            let (lo, hi) = bounds(g);
            next[g] = lo;
            ends[g] = hi;
            for _ in 0..lanes.min((hi - lo).max(1)) {
                queue.push(start, g);
            }
        }
        let mut end = start;
        // Progress watchdog: consecutive failed accesses that also left
        // the driver's page state untouched. Any retired access or
        // page-state transition resets it; `stall_window` of them in a row
        // means the run is spinning without forward progress.
        let mut stalled_events = 0u64;
        while let Some(ev) = queue.pop() {
            let g = ev.payload;
            let idx = next[g];
            if idx >= ends[g] {
                continue; // this lane retires
            }
            next[g] = idx + 1;
            self.step += 1;
            let stats_before = self.driver.stats.progress_token();
            match self.process_access(ev.time, g, &phase.per_gpu[g][idx]) {
                Ok(latency) => {
                    stalled_events = 0;
                    let done = ev.time + latency;
                    end = end.max(done);
                    queue.push(done, g);
                }
                Err(e) => {
                    if self.driver.stats.progress_token() == stats_before {
                        stalled_events += 1;
                        if stalled_events >= self.config.stall_window {
                            return Err(RunError {
                                step: self.step,
                                error: SimError::Stalled {
                                    step: self.step,
                                    window: self.config.stall_window,
                                },
                            });
                        }
                    } else {
                        stalled_events = 0;
                    }
                    self.absorb_error(e)?;
                    // The failed access consumed no simulated time; the
                    // lane moves straight to its next transaction.
                    queue.push(ev.time, g);
                }
            }
            if self.guard_due_each_step() {
                self.check_guard().map_err(|error| RunError {
                    step: self.step,
                    error,
                })?;
            }
        }
        Ok(end)
    }

    /// Builds the report-time metrics view: the live registry's counters
    /// and histograms plus rollups that only exist as component state
    /// (fabric link busy times, TLB shootdowns, page-table churn,
    /// policy-internal counters). Pure derivation — the simulation state
    /// is not touched.
    fn metrics_view(&self) -> oasis_engine::MetricsRegistry {
        let mut m = self.driver.obs.metrics.clone();
        if !m.is_enabled() {
            return m;
        }
        self.driver.policy.publish_metrics(&mut m);
        for ls in self.fabric.link_stats() {
            let prefix = format!("fabric.{}{}", ls.kind, ls.gpu);
            m.set(&format!("{prefix}.busy_ns"), ls.busy.as_ps() / 1_000);
            m.set(&format!("{prefix}.bytes"), ls.bytes);
            m.set(&format!("{prefix}.transfers"), ls.transfers);
        }
        for (g, gpu) in self.gpus.iter().enumerate() {
            m.set(
                &format!("tlb.gpu{g}.shootdowns"),
                gpu.l1_tlb.shootdowns() + gpu.l2_tlb.shootdowns(),
            );
            m.set(
                &format!("pagetable.gpu{g}.updates"),
                self.driver.state.local_tables[g].updates(),
            );
        }
        if self.driver.obs.tracing() {
            m.set("trace.dropped", self.driver.obs.dropped());
        }
        let fc = self.fabric.fault_state().counters();
        m.set("fabric.crc_retries", fc.crc_retries);
        m.set("fabric.reroutes", fc.reroutes);
        m.set("fabric.rerouted_bytes", fc.rerouted_bytes);
        m.set(
            "fabric.links_down",
            self.fabric.fault_state().links_down() as u64,
        );
        m
    }

    fn report(&self, trace: &Trace) -> RunReport {
        let sum2 = |f: &dyn Fn(&GpuModel) -> (u64, u64)| {
            self.gpus
                .iter()
                .map(f)
                .fold((0, 0), |(a, b), (h, m)| (a + h, b + m))
        };
        RunReport {
            app: trace.app.to_string(),
            policy: self.policy.name().to_string(),
            total_time: self.global - Time::ZERO,
            phases: trace.phases.len(),
            accesses: self.accesses,
            local_accesses: self.local_accesses,
            remote_accesses: self.remote_accesses,
            l1_tlb: sum2(&|g: &GpuModel| g.l1_tlb.stats()),
            l2_tlb: sum2(&|g: &GpuModel| g.l2_tlb.stats()),
            l2_cache: sum2(&|g: &GpuModel| g.l2_cache.stats()),
            uvm: self.driver.stats,
            policy_mix: self.policy_mix,
            nvlink_bytes: self.fabric.nvlink_bytes(),
            pcie_bytes: self.fabric.pcie_bytes(),
            faults: self.fabric.fault_state().counters(),
            errors_recorded: self.errors_recorded,
            error_samples: self.error_samples.clone(),
            digest_trail: self.digest_trail.clone(),
            instrumentation: RunInstrumentation {
                retired_steps: self.step,
                ..self.instr.clone()
            },
            epoch_rollups: self.epoch_rollups.clone(),
            metrics: self.metrics_view(),
            trace_events: self.driver.obs.events(),
        }
    }

    /// Serializes every piece of mutable simulation state (not the
    /// configuration) in a fixed order. This is both the payload of the
    /// state digest and the bulk of a checkpoint, so "identical digests"
    /// and "identical checkpoints" mean the same thing.
    fn snapshot_state_into(&self, w: &mut ByteWriter) {
        w.u64(self.global.as_ps());
        w.u64(self.next_epoch);
        w.u64(self.step);
        w.u64(self.accesses);
        w.u64(self.local_accesses);
        w.u64(self.remote_accesses);
        for v in self.policy_mix {
            w.u64(v);
        }
        w.u64(self.errors_recorded);
        self.tracker.snapshot(w);
        self.fabric.snapshot(w);
        self.fabric.fault_state().snapshot(w);
        for g in &self.gpus {
            g.l1_tlb.snapshot(w);
            g.l2_tlb.snapshot(w);
            g.l2_cache.snapshot(w);
            g.dram.snapshot(w);
        }
        self.driver.snapshot(w);
        self.driver.policy.snapshot_state(w);
    }

    /// FNV-1a digest of the full mutable simulation state. Two systems
    /// with the same configuration that executed the same accesses have
    /// the same digest; recorded once per epoch, the trail pins down the
    /// first epoch at which a replay diverged.
    pub fn digest(&self) -> u64 {
        let mut w = ByteWriter::new();
        self.snapshot_state_into(&mut w);
        fnv1a(w.as_slice())
    }

    /// Serializes the whole system — configuration, policy selection,
    /// progress cursor, and every component's mutable state — into `sink`
    /// as one versioned, checksummed checkpoint.
    ///
    /// Call this at an epoch boundary (after [`System::run_prefix`] or
    /// from an epoch hook); mid-segment state lives in a local event queue
    /// and is not captured.
    ///
    /// # Panics
    ///
    /// Panics if no trace was loaded yet (there is no state worth saving).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Codec`] if writing to `sink` fails.
    pub fn checkpoint(&mut self, sink: &mut impl Write) -> Result<(), SimError> {
        assert!(
            self.loaded,
            "checkpoint before load/run has no state to save"
        );
        let t0 = Instant::now();
        let mut cw = CheckpointWriter::new();
        cw.section("config", |w| {
            self.config.encode(w);
            self.policy.encode(w);
        });
        cw.section("progress", |w| {
            w.u64(self.trace_fingerprint);
            w.u64(self.next_epoch);
            w.u64(self.global.as_ps());
            w.u64(self.step);
            w.u64(self.accesses);
            w.u64(self.local_accesses);
            w.u64(self.remote_accesses);
            for v in self.policy_mix {
                w.u64(v);
            }
            w.u64(self.errors_recorded);
            w.u64(self.error_samples.len() as u64);
            for s in &self.error_samples {
                w.str(s);
            }
            w.u64(self.digest_trail.len() as u64);
            for &d in &self.digest_trail {
                w.u64(d);
            }
            w.u64(self.instr.wall_clock_us);
            w.u64(self.instr.checkpoint_write_us);
            w.u64(self.instr.checkpoint_restore_us);
        });
        cw.snapshot("tracker", &self.tracker);
        cw.snapshot("fabric", &self.fabric);
        cw.section("faults", |w| self.fabric.fault_state().snapshot(w));
        cw.section("gpus", |w| {
            w.u64(self.gpus.len() as u64);
            for g in &self.gpus {
                g.l1_tlb.snapshot(w);
                g.l2_tlb.snapshot(w);
                g.l2_cache.snapshot(w);
                g.dram.snapshot(w);
            }
        });
        cw.snapshot("driver", &self.driver);
        cw.section("policy", |w| self.driver.policy.snapshot_state(w));
        let bytes = cw.finish();
        oasis_engine::emit_checkpoint(sink, &bytes).map_err(SimError::Codec)?;
        self.instr.checkpoint_write_us += t0.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Rebuilds a system from a checkpoint written by
    /// [`System::checkpoint`], ready to [`run`](System::run) the remaining
    /// epochs of `trace`. The trace must be the one the checkpointed run
    /// was executing (a fingerprint over its objects and accesses is
    /// verified); the address space is rebuilt from it deterministically
    /// while all driver, policy, and platform state comes from the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Codec`] for unreadable, truncated, corrupted,
    /// or mismatched checkpoints, naming the failing section.
    pub fn resume(source: &mut impl Read, trace: &Trace) -> Result<System, SimError> {
        let t0 = Instant::now();
        let mut bytes = Vec::new();
        source
            .read_to_end(&mut bytes)
            .map_err(|e| SimError::Codec(CodecError::Io(e.to_string())))?;
        let mut cr = CheckpointReader::new(&bytes)?;

        let mut sec = cr.section("config")?;
        let config = SystemConfig::decode(&mut sec)?;
        let policy = Policy::decode(&mut sec)?;
        if !sec.is_empty() {
            return Err(sec
                .malformed("trailing bytes after policy parameters")
                .into());
        }
        let mut sys = System::new(config, &policy);

        let mut sec = cr.section("progress")?;
        let fingerprint = sec.u64()?;
        if fingerprint != trace_fingerprint(trace) {
            return Err(sec
                .malformed(format!(
                    "checkpoint was taken against a different trace \
                     (fingerprint {fingerprint:#018x}, trace {:#018x})",
                    trace_fingerprint(trace)
                ))
                .into());
        }
        sys.next_epoch = sec.u64()?;
        if sys.next_epoch > trace.phases.len() as u64 {
            return Err(sec
                .malformed(format!(
                    "checkpoint is {} epochs in but the trace has {}",
                    sys.next_epoch,
                    trace.phases.len()
                ))
                .into());
        }
        sys.global = Time::from_ps(sec.u64()?);
        sys.step = sec.u64()?;
        sys.accesses = sec.u64()?;
        sys.local_accesses = sec.u64()?;
        sys.remote_accesses = sec.u64()?;
        for v in &mut sys.policy_mix {
            *v = sec.u64()?;
        }
        sys.errors_recorded = sec.u64()?;
        let samples = sec.u64()?;
        if samples > ERROR_SAMPLE_CAP as u64 {
            return Err(sec
                .malformed(format!("{samples} error samples exceed the cap"))
                .into());
        }
        for _ in 0..samples {
            let s = sec.str()?;
            sys.error_samples.push(s);
        }
        let epochs = sec.u64()?;
        if epochs != sys.next_epoch {
            return Err(sec
                .malformed(format!(
                    "digest trail covers {epochs} epochs but the cursor is at {}",
                    sys.next_epoch
                ))
                .into());
        }
        for _ in 0..epochs {
            let d = sec.u64()?;
            sys.digest_trail.push(d);
        }
        sys.instr.wall_clock_us = sec.u64()?;
        sys.instr.checkpoint_write_us = sec.u64()?;
        sys.instr.checkpoint_restore_us = sec.u64()?;
        if !sec.is_empty() {
            return Err(sec.malformed("trailing bytes after progress state").into());
        }
        sys.trace_fingerprint = fingerprint;

        // Rebuild the address space exactly as load() would, but leave
        // page registration alone: the restored driver state already
        // reflects it (re-registering would clobber learned placement).
        for (i, obj) in trace.objects.iter().enumerate() {
            let id = sys.space.alloc(obj.name.clone(), obj.bytes);
            debug_assert_eq!(id, ObjectId(i as u16));
            let base = sys.space.object(id).base;
            let tagged = sys.tracker.tag(id, base);
            sys.tagged_bases.push(tagged);
        }

        cr.restore("tracker", &mut sys.tracker)?;
        cr.restore("fabric", &mut sys.fabric)?;
        let mut sec = cr.section("faults")?;
        sys.fabric.fault_state_mut().restore(&mut sec)?;
        if !sec.is_empty() {
            return Err(sec.malformed("trailing bytes after fault state").into());
        }
        let mut sec = cr.section("gpus")?;
        let n = sec.usize()?;
        if n != sys.gpus.len() {
            return Err(sec
                .malformed(format!(
                    "checkpoint carries {n} GPUs but the configuration builds {}",
                    sys.gpus.len()
                ))
                .into());
        }
        for g in &mut sys.gpus {
            g.l1_tlb.restore(&mut sec)?;
            g.l2_tlb.restore(&mut sec)?;
            g.l2_cache.restore(&mut sec)?;
            g.dram.restore(&mut sec)?;
        }
        if !sec.is_empty() {
            return Err(sec.malformed("trailing bytes after GPU state").into());
        }
        cr.restore("driver", &mut sys.driver)?;
        let mut sec = cr.section("policy")?;
        sys.driver.policy.restore_state(&mut sec)?;
        if !sec.is_empty() {
            return Err(sec.malformed("trailing bytes after policy state").into());
        }
        cr.finish()?;
        sys.loaded = true;
        sys.instr.checkpoint_restore_us += t0.elapsed().as_micros() as u64;
        Ok(sys)
    }

    /// The UVM driver (tests, characterization).
    pub fn driver(&self) -> &UvmDriver {
        &self.driver
    }

    /// The next epoch (trace phase index) this system would execute —
    /// `0` on a fresh system, `trace.phases.len()` once a run finished.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// The policy this system was built with (restored verbatim on
    /// [`System::resume`]).
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Runs the sim-guard sweep on demand (tests, post-run validation).
    pub fn validate(&self) -> SimResult<()> {
        self.check_guard()
    }

    /// The address space built from the trace's allocations.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

/// Trace-event endpoint for a device id.
fn device_endpoint(dev: DeviceId) -> Endpoint {
    match dev {
        DeviceId::Host => Endpoint::Host,
        DeviceId::Gpu(g) => Endpoint::Gpu(g.0),
    }
}

/// FNV-1a fingerprint of a trace's full content — app, object layout,
/// every access, every barrier. Stored in checkpoints so a resume against
/// the wrong trace (or a mutated one) fails loudly instead of silently
/// diverging.
fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut w = ByteWriter::new();
    w.str(trace.app);
    w.u64(trace.gpu_count as u64);
    w.u64(trace.objects.len() as u64);
    for obj in &trace.objects {
        w.str(&obj.name);
        w.u64(obj.bytes);
    }
    w.u64(trace.phases.len() as u64);
    for phase in &trace.phases {
        w.str(&phase.name);
        w.u64(phase.per_gpu.len() as u64);
        for stream in &phase.per_gpu {
            w.u64(stream.len() as u64);
            for a in stream {
                w.u16(a.obj.0);
                w.u64(a.offset);
                w.bool(a.kind.is_write());
                w.u32(a.bytes);
            }
        }
        w.u64(phase.barriers.len() as u64);
        for b in &phase.barriers {
            w.u64(b.len() as u64);
            for &pos in b {
                w.u64(pos as u64);
            }
        }
    }
    fnv1a(w.as_slice())
}

/// Builds a system, runs `trace`, and returns the report.
///
/// This is the fail-fast convenience wrapper: a typed simulation error
/// aborts the process with the error's step coordinate. Callers that want
/// to handle errors (or run record-and-continue campaigns) use
/// [`try_simulate`].
pub fn simulate(config: &SystemConfig, policy: Policy, trace: &Trace) -> RunReport {
    match try_simulate(config, policy, trace) {
        Ok(report) => report,
        Err(e) => panic!("simulation failed {e}"),
    }
}

/// Builds a system, runs `trace`, and returns the report or the typed
/// error (with its replay step) that stopped it.
pub fn try_simulate(
    config: &SystemConfig,
    policy: Policy,
    trace: &Trace,
) -> Result<RunReport, RunError> {
    System::new(config.clone(), &policy).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_workloads::{generate, App, WorkloadParams};

    fn small(app: App) -> oasis_workloads::Trace {
        generate(app, &WorkloadParams::small(app, 4))
    }

    #[test]
    fn on_touch_run_produces_consistent_counters() {
        let trace = small(App::Mt);
        let r = simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
        assert_eq!(r.accesses as usize, trace.total_accesses());
        assert_eq!(r.accesses, r.local_accesses + r.remote_accesses);
        assert!(r.total_time > Duration::ZERO);
        assert!(r.uvm.far_faults > 0);
        // On-touch never duplicates or remote-maps.
        assert_eq!(r.uvm.duplications, 0);
        assert_eq!(r.uvm.remote_maps, 0);
        assert_eq!(r.remote_accesses, 0);
        assert_eq!(r.errors_recorded, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small(App::Bfs);
        let a = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        let b = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.uvm, b.uvm);
        assert_eq!(a.policy_mix, b.policy_mix);
    }

    #[test]
    fn duplication_policy_duplicates_shared_reads() {
        let trace = small(App::Mm);
        let r = simulate(&SystemConfig::default(), Policy::Duplication, &trace);
        assert!(r.uvm.duplications > 0);
    }

    #[test]
    fn access_counter_policy_serves_remotely() {
        let trace = small(App::Mm);
        let r = simulate(&SystemConfig::default(), Policy::AccessCounter, &trace);
        assert!(r.uvm.remote_maps > 0);
        assert!(r.remote_accesses > 0);
    }

    #[test]
    fn ideal_beats_on_touch_on_shared_workloads() {
        let trace = small(App::Mm);
        let base = simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
        let ideal = simulate(&SystemConfig::default(), Policy::Ideal, &trace);
        assert!(
            ideal.speedup_over(&base) > 1.0,
            "ideal {:.2}x",
            ideal.speedup_over(&base)
        );
    }

    #[test]
    fn striped_placement_runs() {
        let trace = small(App::St);
        let cfg = SystemConfig {
            placement: Placement::Striped,
            ..SystemConfig::default()
        };
        let r = simulate(&cfg, Policy::oasis(), &trace);
        assert!(r.total_time > Duration::ZERO);
    }

    #[test]
    fn oversubscription_evicts() {
        let trace = small(App::Mt);
        let cfg = SystemConfig::default().with_oversubscription(trace.footprint_bytes(), 150);
        let r = simulate(&cfg, Policy::OnTouch, &trace);
        assert!(r.uvm.evictions > 0, "capacity pressure must evict");
    }

    #[test]
    fn large_pages_reduce_fault_count() {
        let trace = small(App::Mt);
        let small_pages = simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
        let large_pages = simulate(&SystemConfig::with_large_pages(), Policy::OnTouch, &trace);
        assert!(large_pages.uvm.far_faults < small_pages.uvm.far_faults);
    }

    #[test]
    fn policy_mix_counts_l2_misses_only() {
        let trace = small(App::Mt);
        let r = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        let mix_total: u64 = r.policy_mix.iter().sum();
        assert_eq!(mix_total, r.l2_tlb.1, "one mix sample per L2 TLB miss");
    }

    #[test]
    fn guarded_runs_match_unguarded_results() {
        let trace = small(App::Mm);
        let plain = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        let cfg = SystemConfig {
            guard: GuardMode::Epoch,
            ..SystemConfig::default()
        };
        let guarded = simulate(&cfg, Policy::oasis(), &trace);
        assert_eq!(plain.total_time, guarded.total_time);
        assert_eq!(plain.uvm, guarded.uvm);
    }

    #[test]
    fn unknown_object_is_a_typed_error_with_step() {
        let mut trace = small(App::Mt);
        // Corrupt one access to reference an object the trace never
        // allocated.
        trace.phases[0].per_gpu[1][3].obj = ObjectId(999);
        let err = try_simulate(&SystemConfig::default(), Policy::OnTouch, &trace)
            .expect_err("corrupt trace must fail");
        assert!(err.step > 0, "{err}");
        assert!(matches!(
            err.error,
            SimError::Trace(TraceError::UnknownObject { object: 999 })
        ));
    }

    #[test]
    fn out_of_range_offset_is_a_typed_error() {
        let mut trace = small(App::Mt);
        trace.phases[0].per_gpu[0][0].offset = u64::MAX / 2;
        let err = try_simulate(&SystemConfig::default(), Policy::OnTouch, &trace)
            .expect_err("corrupt trace must fail");
        assert!(matches!(
            err.error,
            SimError::Trace(TraceError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn record_and_continue_finishes_despite_corruption() {
        let mut trace = small(App::Mt);
        trace.phases[0].per_gpu[0][0].obj = ObjectId(999);
        trace.phases[0].per_gpu[2][5].offset = u64::MAX / 2;
        let cfg = SystemConfig {
            error_policy: ErrorPolicy::RecordAndContinue,
            guard: GuardMode::Epoch,
            ..SystemConfig::default()
        };
        let r = try_simulate(&cfg, Policy::OnTouch, &trace).expect("run survives");
        assert_eq!(r.errors_recorded, 2);
        assert_eq!(r.error_samples.len(), 2);
        assert_eq!(r.accesses as usize, trace.total_accesses() - 2);
    }

    #[test]
    fn mismatched_gpu_count_fails_at_load() {
        let trace = small(App::Mt); // 4-GPU trace
        let err = try_simulate(&SystemConfig::with_gpus(8), Policy::OnTouch, &trace)
            .expect_err("4-GPU trace cannot drive 8 GPUs");
        assert_eq!(err.step, 0);
        assert!(matches!(
            err.error,
            SimError::Trace(TraceError::GpuOutOfRange {
                gpu: 4,
                gpu_count: 8
            })
        ));
    }

    #[test]
    fn step_guard_passes_on_healthy_small_run() {
        let mut params = WorkloadParams::small(App::Mt, 4);
        params.footprint_mb = 2; // keep the per-step sweep affordable
        let trace = generate(App::Mt, &params);
        let cfg = SystemConfig {
            guard: GuardMode::Step,
            ..SystemConfig::default()
        };
        let r = try_simulate(&cfg, Policy::oasis(), &trace).expect("guard holds every step");
        assert!(r.accesses > 0);
    }

    /// Runs `trace` halfway, checkpoints, drops the system (the "kill"),
    /// resumes from the serialized bytes, and finishes the run.
    fn kill_and_resume(cfg: &SystemConfig, policy: &Policy, trace: &Trace) -> RunReport {
        let midpoint = (trace.phases.len() as u64 / 2).max(1);
        let mut buf = Vec::new();
        {
            let mut first = System::new(cfg.clone(), policy);
            first.run_prefix(trace, midpoint).expect("prefix runs");
            first.checkpoint(&mut buf).expect("checkpoint writes");
            // `first` drops here: the process "dies".
        }
        let mut resumed = System::resume(&mut buf.as_slice(), trace).expect("resume");
        resumed.run(trace).expect("resumed run completes")
    }

    #[test]
    fn midpoint_kill_resume_is_bit_identical_for_every_policy() {
        for policy in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            // C2D has 9 phases, so the kill lands genuinely mid-trace
            // (epoch 4) rather than at the end of a single-phase run.
            let trace = small(App::C2d);
            let cfg = SystemConfig::default();
            let straight = simulate(&cfg, policy.clone(), &trace);
            let resumed = kill_and_resume(&cfg, &policy, &trace);
            resumed
                .check_digests_against(&straight)
                .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert!(
                resumed.same_simulation(&straight),
                "{} kill/resume diverged from the straight run",
                policy.name()
            );
            assert_eq!(resumed.digest_trail.len(), trace.phases.len());
        }
    }

    #[test]
    fn resume_restores_the_exact_state_digest() {
        let trace = small(App::Bfs);
        let mut sys = System::new(SystemConfig::default(), &Policy::oasis());
        sys.run_prefix(&trace, 1).expect("first epoch");
        let expected = sys.digest();
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        let resumed = System::resume(&mut buf.as_slice(), &trace).expect("resume");
        assert_eq!(resumed.digest(), expected, "restored state must hash alike");
    }

    #[test]
    fn report_instrumentation_counts_steps_and_checkpoint_work() {
        let trace = small(App::Mt);
        let cfg = SystemConfig::default();
        let straight = simulate(&cfg, Policy::OnTouch, &trace);
        assert_eq!(straight.instrumentation.retired_steps, straight.accesses);
        assert_eq!(straight.instrumentation.checkpoint_write_us, 0);
        let resumed = kill_and_resume(&cfg, &Policy::OnTouch, &trace);
        assert_eq!(resumed.instrumentation.retired_steps, resumed.accesses);
    }

    #[test]
    fn truncated_checkpoint_fails_typed_naming_a_section() {
        let trace = small(App::Mt);
        let mut sys = System::new(SystemConfig::default(), &Policy::oasis());
        sys.run_prefix(&trace, 1).expect("first epoch");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        let err = System::resume(&mut &buf[..buf.len() / 2], &trace)
            .expect_err("half a checkpoint must not resume");
        match err {
            SimError::Codec(CodecError::Truncated { section, .. }) => {
                assert!(!section.is_empty(), "truncation names the starving section");
            }
            other => panic!("expected a typed truncation error, got {other}"),
        }
    }

    #[test]
    fn flipped_checksum_byte_fails_typed() {
        let trace = small(App::Mt);
        let mut sys = System::new(SystemConfig::default(), &Policy::OnTouch);
        sys.run_prefix(&trace, 1).expect("first epoch");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        *buf.last_mut().unwrap() ^= 0xFF;
        let err = System::resume(&mut buf.as_slice(), &trace)
            .expect_err("corrupted trailer must not resume");
        assert!(
            matches!(err, SimError::Codec(CodecError::ChecksumMismatch { .. })),
            "expected checksum mismatch, got {err}"
        );
    }

    #[test]
    fn wrong_format_version_fails_typed() {
        let trace = small(App::Mt);
        let mut sys = System::new(SystemConfig::default(), &Policy::OnTouch);
        sys.run_prefix(&trace, 1).expect("first epoch");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = System::resume(&mut buf.as_slice(), &trace)
            .expect_err("future format version must not resume");
        assert!(
            matches!(
                err,
                SimError::Codec(CodecError::UnsupportedVersion { found: 99, .. })
            ),
            "expected unsupported version, got {err}"
        );
    }

    #[test]
    fn resume_rejects_a_different_trace() {
        let trace = small(App::Mt);
        let mut sys = System::new(SystemConfig::default(), &Policy::OnTouch);
        sys.run_prefix(&trace, 1).expect("first epoch");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        let other = small(App::Bfs);
        let err = System::resume(&mut buf.as_slice(), &other)
            .expect_err("checkpoint is bound to its trace");
        assert!(
            err.to_string().contains("different trace"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn watchdog_aborts_a_spinning_run() {
        // Every access references an object that was never allocated, so
        // under record-and-continue each event fails without touching any
        // page state: the definition of no forward progress.
        let mut trace = small(App::Mt);
        for phase in &mut trace.phases {
            for stream in &mut phase.per_gpu {
                for a in stream.iter_mut() {
                    a.obj = ObjectId(999);
                }
            }
        }
        let cfg = SystemConfig {
            error_policy: ErrorPolicy::RecordAndContinue,
            stall_window: 50,
            ..SystemConfig::default()
        };
        let err = try_simulate(&cfg, Policy::OnTouch, &trace).expect_err("watchdog trips");
        assert!(err.step > 0);
        assert!(
            matches!(err.error, SimError::Stalled { window: 50, .. }),
            "expected a stall, got {err}"
        );

        // A window larger than the whole trace lets the same sick run
        // limp to completion, every failure recorded.
        let lenient = SystemConfig {
            error_policy: ErrorPolicy::RecordAndContinue,
            ..SystemConfig::default()
        };
        let r = try_simulate(&lenient, Policy::OnTouch, &trace).expect("lenient window");
        assert_eq!(r.errors_recorded as usize, trace.total_accesses());
        assert_eq!(r.accesses, 0);
    }

    #[test]
    fn watchdog_is_reset_by_real_progress() {
        // A handful of corrupt accesses interleaved with healthy ones must
        // not trip even a tiny window.
        let mut trace = small(App::Mt);
        trace.phases[0].per_gpu[0][0].obj = ObjectId(999);
        trace.phases[0].per_gpu[2][5].obj = ObjectId(999);
        let cfg = SystemConfig {
            error_policy: ErrorPolicy::RecordAndContinue,
            stall_window: 2,
            ..SystemConfig::default()
        };
        let r = try_simulate(&cfg, Policy::OnTouch, &trace).expect("healthy run");
        assert_eq!(r.errors_recorded, 2);
    }

    #[test]
    fn digest_trail_is_deterministic_and_per_epoch() {
        let trace = small(App::Bfs);
        let a = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        let b = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
        assert_eq!(a.digest_trail, b.digest_trail);
        assert_eq!(a.digest_trail.len(), trace.phases.len());
        assert!(a.check_digests_against(&b).is_ok());
    }

    #[test]
    fn epoch_hook_runs_once_per_phase() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let trace = small(App::Mt);
        let seen: Rc<RefCell<Vec<u64>>> = Rc::default();
        let seen2 = Rc::clone(&seen);
        let mut sys = System::new(SystemConfig::default(), &Policy::OnTouch);
        sys.set_epoch_hook(move |epoch, _driver| seen2.borrow_mut().push(epoch));
        sys.run(&trace).expect("run completes");
        let epochs = seen.borrow();
        assert_eq!(epochs.len(), trace.phases.len());
        assert_eq!(epochs[0], 0);
    }
}
