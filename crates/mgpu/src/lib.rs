//! Multi-GPU system assembly and simulation driver.
//!
//! This crate plays MGPUSim's "platform" role: it builds the simulated
//! system of Table I — GPUs with L1/L2 TLBs, an L2 cache and local DRAM,
//! an NVLink/PCIe fabric, and the UVM driver with a chosen page-management
//! policy — then drives a workload [`Trace`](oasis_workloads::Trace)
//! through it with bounded per-GPU concurrency and reports simulated time
//! plus every counter the paper's figures need.
//!
//! ```
//! use oasis_mgpu::{Policy, SystemConfig};
//! use oasis_workloads::{generate, App, WorkloadParams};
//!
//! let trace = generate(App::Mt, &WorkloadParams::small(App::Mt, 4));
//! let report = oasis_mgpu::simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
//! assert!(report.total_time.as_us() > 0.0);
//! ```

pub mod characterize;
pub mod config;
pub mod gpu;
pub mod inject;
pub mod report;
pub mod system;

pub use config::{GuardMode, Placement, Policy, SystemConfig};
pub use inject::{
    run_campaign, run_campaign_supervised, CampaignConfig, CampaignReport, InjectionOutcome,
    Perturbation,
};
pub use oasis_interconnect::{FaultCounters, FaultPlan};
pub use report::{EpochRollup, RunInstrumentation, RunReport};
pub use system::{simulate, try_simulate, RunError, System};
