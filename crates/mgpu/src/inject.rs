//! Deterministic fault-injection harness: sim-guard's adversary.
//!
//! Each campaign perturbs small but complete simulations in ways the
//! robust core must survive — malformed traces, out-of-range accesses,
//! forced oversubscription, corrupted access counters, mid-run policy
//! flips — and records, per scenario, either a clean completion (with the
//! invariant checker enabled throughout) or the typed error and the step
//! at which it struck. Every random choice derives from a caller-supplied
//! master seed through the in-tree [`SimRng`], so a campaign's full output
//! is a pure function of that seed: any failure replays exactly.

use oasis_engine::SimRng;
use oasis_interconnect::FaultPlan;
use oasis_mem::layout::AddressSpace;
use oasis_mem::page::PolicyBits;
use oasis_mem::types::{GpuId, PageSize, Vpn};
use oasis_workloads::trace::Trace;
use oasis_workloads::{generate, App, WorkloadParams};

use crate::config::{GuardMode, Policy, SystemConfig};
use crate::system::System;

/// The perturbation kinds a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perturbation {
    /// Cut every GPU's stream short mid-phase (a truncated trace file).
    TruncateTrace,
    /// Point one access beyond its object's extent (a malformed trace).
    OutOfRangeAccess,
    /// Shrink GPU memory far below the footprint (forced eviction storm).
    CapacityCrunch,
    /// Overwrite hardware access counters with junk at every epoch.
    CorruptCounters,
    /// Rewrite per-page policy bits mid-run at every epoch.
    PolicyFlip,
    /// Kill the simulation at a random epoch boundary, then resume it from
    /// its own checkpoint bytes and require the finished run to be
    /// bit-identical (digest trail and counters) to an uninterrupted one.
    KillAndResume,
    /// Permanently fail one NVLink pair at a seed-chosen epoch: shared
    /// traffic must complete over the staged PCIe fallback.
    LinkDown,
    /// Subject one NVLink pair to a CRC-glitch window covering the whole
    /// run: transfers pay bounded retransmission latency but succeed.
    LinkFlaky,
    /// Poison resident frames with ECC events mid-run: the driver must
    /// quarantine the frames and re-service the victim pages.
    EccPoison,
}

impl Perturbation {
    /// Every kind, in campaign order.
    pub const ALL: [Perturbation; 9] = [
        Perturbation::TruncateTrace,
        Perturbation::OutOfRangeAccess,
        Perturbation::CapacityCrunch,
        Perturbation::CorruptCounters,
        Perturbation::PolicyFlip,
        Perturbation::KillAndResume,
        Perturbation::LinkDown,
        Perturbation::LinkFlaky,
        Perturbation::EccPoison,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::TruncateTrace => "truncate-trace",
            Perturbation::OutOfRangeAccess => "out-of-range-access",
            Perturbation::CapacityCrunch => "capacity-crunch",
            Perturbation::CorruptCounters => "corrupt-counters",
            Perturbation::PolicyFlip => "policy-flip",
            Perturbation::KillAndResume => "kill-and-resume",
            Perturbation::LinkDown => "link-down",
            Perturbation::LinkFlaky => "link-flaky",
            Perturbation::EccPoison => "ecc-poison",
        }
    }

    /// Whether the healthy simulator is *expected* to abort this scenario
    /// with a typed error. An out-of-range access must stop the run and
    /// name the step — completing it would be the bug — so `ok == false`
    /// is the passing result for that kind.
    pub fn expects_abort(self) -> bool {
        matches!(self, Perturbation::OutOfRangeAccess)
    }
}

/// What one injected scenario did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// The perturbation injected.
    pub kind: Perturbation,
    /// The scenario's derived seed (replay coordinate).
    pub seed: u64,
    /// Whether the run completed (with the invariant checker passing).
    pub ok: bool,
    /// One deterministic, human-readable result line.
    pub line: String,
}

impl InjectionOutcome {
    /// Whether the outcome matches what a healthy simulator should do for
    /// this kind: survive with invariants intact, except for kinds that
    /// [`Perturbation::expects_abort`] — there a typed abort is the pass.
    pub fn passed(&self) -> bool {
        self.ok != self.kind.expects_abort()
    }
}

/// The pages the driver will register for `trace`, reconstructed from the
/// deterministic allocator layout (used to aim counter/policy
/// perturbations without iterating hash maps, whose order is not stable).
fn page_candidates(trace: &Trace, page: PageSize) -> Vec<Vpn> {
    let mut space = AddressSpace::new();
    let mut vpns = Vec::new();
    for obj in &trace.objects {
        let id = space.alloc(obj.name.clone(), obj.bytes);
        let o = space.object(id);
        let first = o.base.vpn(page).0;
        let pages = page.pages_for(o.size);
        // A handful per object is plenty of attack surface.
        for i in 0..pages.min(8) {
            vpns.push(Vpn(first + i));
        }
    }
    vpns
}

fn base_config() -> SystemConfig {
    SystemConfig {
        guard: GuardMode::Epoch,
        ..SystemConfig::default()
    }
}

fn small_trace(seed_app: App) -> Trace {
    let mut params = WorkloadParams::small(seed_app, 4);
    params.footprint_mb = 2; // hundreds of pages: fast yet evictable
    generate(seed_app, &params)
}

/// The kill-and-resume scenario: run the app straight through, then run it
/// again but kill it at a seed-chosen epoch boundary, persist a checkpoint,
/// drop the system, resume from the bytes, and demand the finished run be
/// bit-identical (per-epoch digests and all counters) to the straight one.
fn run_kill_and_resume(kind: Perturbation, seed: u64) -> InjectionOutcome {
    let name = kind.name();
    let cfg = base_config();
    // C2D is multi-phase (9 epochs), so the seed-chosen kill point lands
    // genuinely mid-trace instead of degenerating to a full run.
    let trace = small_trace(App::C2d);
    let policy = Policy::oasis();
    let mut rng = SimRng::seed_from_u64(seed);
    let epochs = trace.phases.len() as u64;
    // Kill somewhere strictly inside the run: epoch in [1, epochs-1].
    let kill_epoch = 1 + rng.gen_below(epochs.max(2) as usize - 1) as u64;

    let result = (|| -> Result<String, String> {
        let straight = System::new(cfg.clone(), &policy)
            .run(&trace)
            .map_err(|e| format!("straight run failed: {e}"))?;
        let mut buf = Vec::new();
        {
            let mut first = System::new(cfg.clone(), &policy);
            first
                .run_prefix(&trace, kill_epoch)
                .map_err(|e| format!("prefix run failed: {e}"))?;
            first
                .checkpoint(&mut buf)
                .map_err(|e| format!("checkpoint failed: {e}"))?;
            // `first` drops here: the simulated crash.
        }
        let mut resumed = System::resume(&mut buf.as_slice(), &trace)
            .map_err(|e| format!("resume failed: {e}"))?;
        let report = resumed
            .run(&trace)
            .map_err(|e| format!("resumed run failed: {e}"))?;
        resumed
            .validate()
            .map_err(|e| format!("guard VIOLATED ({e})"))?;
        report
            .check_digests_against(&straight)
            .map_err(|e| e.to_string())?;
        if !report.same_simulation(&straight) {
            return Err("resumed report differs from the straight run".into());
        }
        Ok(format!(
            "killed at epoch {kill_epoch}/{epochs}, checkpoint {} bytes, \
             resumed bit-identical accesses={} guard=ok",
            buf.len(),
            report.accesses
        ))
    })();
    match result {
        Ok(detail) => InjectionOutcome {
            kind,
            seed,
            ok: true,
            line: format!("{name} seed={seed:#018x}: {detail}"),
        },
        Err(detail) => InjectionOutcome {
            kind,
            seed,
            ok: false,
            line: format!("{name} seed={seed:#018x}: {detail}"),
        },
    }
}

fn run_one(kind: Perturbation, seed: u64) -> InjectionOutcome {
    if kind == Perturbation::KillAndResume {
        return run_kill_and_resume(kind, seed);
    }
    let mut rng = SimRng::seed_from_u64(seed);
    let name = kind.name();
    let mut cfg = base_config();
    let mut trace = small_trace(App::Mt);
    let mut policy = Policy::oasis();

    match kind {
        Perturbation::TruncateTrace => {
            // Chop every stream at an arbitrary point and drop the now
            // inconsistent barrier positions: the run must still complete.
            for phase in &mut trace.phases {
                for stream in &mut phase.per_gpu {
                    let keep = rng.gen_below(stream.len() + 1);
                    stream.truncate(keep);
                }
                for b in &mut phase.barriers {
                    b.clear();
                }
            }
        }
        Perturbation::OutOfRangeAccess => {
            // One access reaches past its object's last byte: the run must
            // stop with a typed trace error naming the step.
            policy = Policy::OnTouch;
            let phase = rng.gen_below(trace.phases.len());
            let gpu = rng.gen_below(trace.phases[phase].per_gpu.len());
            let stream = &mut trace.phases[phase].per_gpu[gpu];
            let idx = rng.gen_below(stream.len());
            let bytes = trace.objects[stream[idx].obj.0 as usize].bytes;
            stream[idx].offset = bytes + 4096 * (1 + rng.gen_range(0..16));
        }
        Perturbation::CapacityCrunch => {
            // Far fewer frames than pages: sustained eviction pressure.
            policy = Policy::OnTouch;
            cfg.gpu_capacity_pages = Some(rng.gen_range(8..32));
        }
        Perturbation::CorruptCounters | Perturbation::PolicyFlip => {
            if kind == Perturbation::CorruptCounters {
                // Access counters only steer the counter-based policy.
                policy = Policy::AccessCounter;
            }
        }
        Perturbation::LinkDown => {
            // Duplication keeps pages shared across GPUs, so killing a
            // link forces real traffic onto the PCIe fallback.
            policy = Policy::Duplication;
            let a = rng.gen_below(4) as u8;
            let b = (a + 1 + rng.gen_below(3) as u8) % 4;
            let epoch = rng.gen_below(trace.phases.len());
            cfg.fault_plan = FaultPlan::parse(&format!("seed:{seed},down:{a}-{b}@{epoch}"))
                .expect("generated plan is well-formed");
        }
        Perturbation::LinkFlaky => {
            // Remote mappings put steady read traffic on the fabric for
            // the glitch window to tax.
            policy = Policy::AccessCounter;
            let a = rng.gen_below(4) as u8;
            let b = (a + 1 + rng.gen_below(3) as u8) % 4;
            let to = trace.phases.len().max(1);
            cfg.fault_plan = FaultPlan::parse(&format!("seed:{seed},flaky:{a}-{b}@0-{to}:1/2"))
                .expect("generated plan is well-formed");
        }
        Perturbation::EccPoison => {
            // Strike after at least one epoch so frames are resident.
            let gpu = rng.gen_below(4);
            let epoch = 1 + rng.gen_below(trace.phases.len().max(2) - 1);
            let frames = 1 + rng.gen_below(4);
            cfg.fault_plan = FaultPlan::parse(&format!("seed:{seed},ecc:{gpu}@{epoch}x{frames}"))
                .expect("generated plan is well-formed");
        }
        Perturbation::KillAndResume => unreachable!("dispatched above"),
    }

    let mut sys = System::new(cfg, &policy);
    match kind {
        Perturbation::CorruptCounters => {
            let candidates = page_candidates(&trace, sys.config().page_size);
            let mut hook_rng = SimRng::seed_from_u64(seed ^ 0xC0FF_EE00);
            sys.set_epoch_hook(move |_epoch, driver| {
                for _ in 0..8 {
                    let vpn = candidates[hook_rng.gen_below(candidates.len())];
                    let gpu = GpuId(hook_rng.gen_range(0..4) as u8);
                    let junk = hook_rng.gen_range(0..u32::MAX as u64) as u32;
                    driver.poke_counter(gpu, vpn, junk);
                }
            });
        }
        Perturbation::PolicyFlip => {
            let candidates = page_candidates(&trace, sys.config().page_size);
            let mut hook_rng = SimRng::seed_from_u64(seed ^ 0xF11B_0000);
            sys.set_epoch_hook(move |_epoch, driver| {
                for _ in 0..8 {
                    let vpn = candidates[hook_rng.gen_below(candidates.len())];
                    let bits = match hook_rng.gen_range(0..3) {
                        0 => PolicyBits::OnTouch,
                        1 => PolicyBits::AccessCounter,
                        _ => PolicyBits::Duplication,
                    };
                    let _ = driver.set_page_policy(vpn, bits);
                }
            });
        }
        _ => {}
    }

    match sys.run(&trace) {
        Ok(report) => {
            let guard = match sys.validate() {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("VIOLATED ({e})"),
            };
            let ok = guard == "ok";
            let hardware = match kind {
                Perturbation::LinkDown | Perturbation::LinkFlaky | Perturbation::EccPoison => {
                    format!(
                        " reroutes={} crc-retries={} quarantines={} fault-retries={}",
                        report.faults.reroutes,
                        report.faults.crc_retries,
                        report.uvm.ecc_quarantines,
                        report.uvm.fault_retries
                    )
                }
                _ => String::new(),
            };
            InjectionOutcome {
                kind,
                seed,
                ok,
                line: format!(
                    "{name} seed={seed:#018x}: completed accesses={} evictions={} \
                     recorded-errors={}{hardware} guard={guard}",
                    report.accesses, report.uvm.evictions, report.errors_recorded
                ),
            }
        }
        Err(e) => InjectionOutcome {
            kind,
            seed,
            ok: false,
            line: format!("{name} seed={seed:#018x}: aborted {e}"),
        },
    }
}

/// Supervision knobs for a campaign sweep.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads (1 = the classic serial campaign).
    pub jobs: usize,
    /// Per-scenario wall-clock deadline.
    pub deadline: Option<std::time::Duration>,
    /// Attempts per scenario before it counts as a job failure.
    pub attempts: u32,
    /// Write-ahead sweep journal: dispatches and outcomes are fsync'd
    /// here so a killed campaign can be resumed.
    pub journal: Option<std::path::PathBuf>,
    /// Resume from the journal instead of re-running adjudicated kinds.
    pub resume_sweep: bool,
    /// Cooperative stop: raised by a signal handler to drain the sweep.
    pub stop: Option<oasis_engine::StopHandle>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            jobs: 1,
            deadline: None,
            attempts: 1,
            journal: None,
            resume_sweep: false,
            stop: None,
        }
    }
}

/// A campaign run under the supervised pool: outcomes stay in kind order
/// and scenarios lost to supervision are synthesized as `ok == false`
/// outcomes, so the report shape is stable whatever happens.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One outcome per [`Perturbation::ALL`] kind, in campaign order.
    pub outcomes: Vec<InjectionOutcome>,
    /// Kinds whose *job* failed under supervision (panic, deadline,
    /// retry exhaustion), with the rendered error.
    pub job_failures: Vec<(Perturbation, String)>,
    /// Kinds quarantined after crashing or hanging their worker.
    pub quarantined: Vec<Perturbation>,
    /// Retried attempts across the sweep, computed from per-kind attempt
    /// counts so a resumed campaign reports the same value as a straight
    /// one.
    pub retries: u64,
    /// Workers respawned after deadline abandonments.
    pub workers_respawned: u64,
    /// Kinds merged from a resumed journal instead of re-run.
    pub resumed: u64,
    /// Whether a cooperative stop drained the campaign before every kind
    /// was adjudicated; missing kinds have no outcome line.
    pub interrupted: bool,
    /// Journal recovery warnings (salvaged tail, duplicates).
    pub warnings: Vec<String>,
}

impl CampaignReport {
    /// Whether the campaign is healthy: ran to completion with no
    /// supervision casualties, and every outcome matches its kind's
    /// expectation (see [`InjectionOutcome::passed`]).
    pub fn passed(&self) -> bool {
        !self.interrupted
            && self.job_failures.is_empty()
            && self.outcomes.iter().all(InjectionOutcome::passed)
    }
}

/// The per-kind seeds of a campaign, drawn from an RNG stream with
/// repeats rejected, so every kind is guaranteed a distinct seed for any
/// master seed. (The old XOR-with-multiple derivation could collide two
/// kinds onto one seed, letting the "all kinds exercised, all seeds
/// distinct" assertion in tests/fault_injection.rs dedup away a kind and
/// pass vacuously.)
fn campaign_seeds(master_seed: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(master_seed);
    let mut used = std::collections::BTreeSet::new();
    Perturbation::ALL
        .iter()
        .map(|_| {
            let mut seed = rng.next_u64();
            while !used.insert(seed) {
                seed = rng.next_u64();
            }
            seed
        })
        .collect()
}

/// The journal tag pinning a campaign's identity to its master seed.
fn campaign_tag(master_seed: u64) -> u64 {
    oasis_engine::fnv1a(format!("oasis-inject-campaign-v1 seed={master_seed}").as_bytes())
}

/// One kind's adjudicated end state, live or replayed from a journal.
enum KindOutcome {
    Completed(InjectionOutcome),
    Lost { error: String, quarantined: bool },
}

struct KindRecord {
    outcome: KindOutcome,
    attempts: u32,
}

/// Encodes an adjudicated campaign outcome into the journal payload.
fn encode_kind_payload(outcome: &oasis_engine::JobOutcome<InjectionOutcome>) -> Vec<u8> {
    let mut w = oasis_engine::ByteWriter::new();
    match outcome {
        oasis_engine::JobOutcome::Completed(o) => {
            w.u64(o.seed);
            w.bool(o.ok);
            w.str(&o.line);
        }
        oasis_engine::JobOutcome::Failed(e) | oasis_engine::JobOutcome::Quarantined(e) => {
            w.str(&e.to_string());
        }
    }
    w.into_vec()
}

/// Decodes one journaled adjudication back into a kind record.
fn decode_kind_payload(
    kind: Perturbation,
    adj: &oasis_engine::Adjudication,
) -> Result<KindRecord, String> {
    let mut r = oasis_engine::ByteReader::new("inject-journal-kind", &adj.payload);
    let ctx = |e: oasis_engine::CodecError| {
        format!("journaled outcome for {} is undecodable: {e}", kind.name())
    };
    let outcome = match adj.outcome {
        oasis_engine::AdjudicatedOutcome::Completed => KindOutcome::Completed(InjectionOutcome {
            kind,
            seed: r.u64().map_err(ctx)?,
            ok: r.bool().map_err(ctx)?,
            line: r.str().map_err(ctx)?,
        }),
        oasis_engine::AdjudicatedOutcome::Failed => KindOutcome::Lost {
            error: r.str().map_err(ctx)?,
            quarantined: false,
        },
        oasis_engine::AdjudicatedOutcome::Quarantined => KindOutcome::Lost {
            error: r.str().map_err(ctx)?,
            quarantined: true,
        },
    };
    Ok(KindRecord {
        outcome,
        attempts: adj.attempts,
    })
}

/// Runs the full campaign — one scenario per [`Perturbation`] kind — with
/// every random choice derived from `master_seed`, fanned out over the
/// supervised pool. Outcome content is a deterministic function of the
/// seed alone: `jobs` changes wall-clock, never the report. With
/// [`CampaignConfig::journal`] set, progress is journaled write-ahead and
/// [`CampaignConfig::resume_sweep`] merges a killed campaign's
/// adjudicated kinds instead of re-running them.
///
/// # Errors
///
/// Returns an error only for unusable journals (wrong tag, undecodable
/// payload, append failure); scenario failures stay inside the report.
pub fn run_campaign_supervised(
    master_seed: u64,
    config: &CampaignConfig,
) -> Result<CampaignReport, String> {
    use std::cell::RefCell;

    let seeds = campaign_seeds(master_seed);
    let tag = campaign_tag(master_seed);

    let mut warnings: Vec<String> = Vec::new();
    let mut records: std::collections::BTreeMap<u64, KindRecord> =
        std::collections::BTreeMap::new();
    let journal: Option<oasis_engine::JournalWriter> = match &config.journal {
        None => None,
        Some(path) if config.resume_sweep => {
            let (writer, recovery) = oasis_engine::JournalWriter::resume(path, tag)
                .map_err(|e| format!("cannot resume campaign journal {}: {e}", path.display()))?;
            warnings.extend(recovery.warnings());
            for (&id, adj) in &recovery.adjudicated {
                match Perturbation::ALL.get(id as usize) {
                    Some(&kind) => {
                        records.insert(id, decode_kind_payload(kind, adj)?);
                    }
                    None => warnings.push(format!(
                        "journal adjudicates kind index {id}, beyond the campaign; ignored"
                    )),
                }
            }
            Some(writer)
        }
        Some(path) => {
            let label = format!("inject seed={master_seed}");
            Some(
                oasis_engine::JournalWriter::create(path, tag, &label).map_err(|e| {
                    format!("cannot create campaign journal {}: {e}", path.display())
                })?,
            )
        }
    };
    let resumed = records.len() as u64;
    let journal = RefCell::new(journal);
    let journal_failure: RefCell<Option<String>> = RefCell::new(None);
    let stop = config.stop.clone().unwrap_or_default();

    let pool = oasis_engine::PoolConfig {
        workers: config.jobs.max(1),
        deadline: config.deadline,
        max_attempts: config.attempts.max(1),
        ..oasis_engine::PoolConfig::default()
    };
    // Only kinds without a journaled outcome are dispatched; pool ids are
    // remapped back through `pending` to campaign kind indices.
    let pending: Vec<u64> = (0..Perturbation::ALL.len() as u64)
        .filter(|id| !records.contains_key(id))
        .collect();
    let jobs: Vec<oasis_engine::Job<InjectionOutcome>> = pending
        .iter()
        .map(|&id| {
            let kind = Perturbation::ALL[id as usize];
            let seed = seeds[id as usize];
            oasis_engine::Job::new(kind.name(), move |_ctx| Ok(run_one(kind, seed)))
        })
        .collect();
    let mut on_dispatch = |pool_id: u64, attempt: u32| {
        if let Some(w) = journal.borrow_mut().as_mut() {
            if let Err(e) = w.dispatched(pending[pool_id as usize], attempt) {
                *journal_failure.borrow_mut() =
                    Some(format!("campaign journal append failed: {e}"));
                stop.stop();
            }
        }
    };
    let mut on_adjudicated = |rec: &oasis_engine::JobRecord<InjectionOutcome>| {
        if let Some(w) = journal.borrow_mut().as_mut() {
            let payload = encode_kind_payload(&rec.outcome);
            if let Err(e) = w.adjudicated(
                pending[rec.id as usize],
                oasis_engine::AdjudicatedOutcome::of(&rec.outcome),
                rec.attempts,
                &payload,
            ) {
                *journal_failure.borrow_mut() =
                    Some(format!("campaign journal append failed: {e}"));
                stop.stop();
            }
        }
    };
    let ctrl = oasis_engine::SweepControl {
        stop: Some(stop.clone()),
        on_dispatch: Some(&mut on_dispatch),
        on_adjudicated: Some(&mut on_adjudicated),
    };
    let sweep = oasis_engine::run_sweep_controlled(&pool, jobs, ctrl);
    for record in sweep.jobs {
        let id = pending[record.id as usize];
        let attempts = record.attempts;
        let outcome = match record.outcome {
            oasis_engine::JobOutcome::Completed(o) => KindOutcome::Completed(o),
            oasis_engine::JobOutcome::Failed(e) => KindOutcome::Lost {
                error: e.to_string(),
                quarantined: false,
            },
            oasis_engine::JobOutcome::Quarantined(e) => KindOutcome::Lost {
                error: e.to_string(),
                quarantined: true,
            },
        };
        records.insert(id, KindRecord { outcome, attempts });
    }
    if sweep.interrupted {
        if let Some(w) = journal.borrow_mut().as_mut() {
            if let Err(e) = w.interrupted(records.len() as u64) {
                warnings.push(format!("could not journal the Interrupted trailer: {e}"));
            }
        }
    }
    if let Some(err) = journal_failure.into_inner() {
        return Err(err);
    }

    let mut outcomes = Vec::with_capacity(Perturbation::ALL.len());
    let mut job_failures = Vec::new();
    let mut quarantined = Vec::new();
    let mut retries = 0u64;
    for (&id, rec) in &records {
        let kind = Perturbation::ALL[id as usize];
        let seed = seeds[id as usize];
        retries += u64::from(rec.attempts.saturating_sub(1));
        match &rec.outcome {
            KindOutcome::Completed(outcome) => outcomes.push(outcome.clone()),
            KindOutcome::Lost {
                error,
                quarantined: was_quarantined,
            } => {
                if *was_quarantined {
                    quarantined.push(kind);
                }
                job_failures.push((kind, error.clone()));
                // Synthesize a failed outcome so the report keeps one
                // line per kind whatever supervision saw.
                outcomes.push(InjectionOutcome {
                    kind,
                    seed,
                    ok: false,
                    line: format!(
                        "{} seed={seed:#018x}: job {} after {} attempt(s)",
                        kind.name(),
                        error,
                        rec.attempts
                    ),
                });
            }
        }
    }
    Ok(CampaignReport {
        outcomes,
        job_failures,
        quarantined,
        retries,
        workers_respawned: sweep.workers_respawned,
        resumed,
        interrupted: sweep.interrupted,
        warnings,
    })
}

/// Serial convenience wrapper around [`run_campaign_supervised`]: the
/// classic one-thread campaign returning just the outcomes.
pub fn run_campaign(master_seed: u64) -> Vec<InjectionOutcome> {
    run_campaign_supervised(master_seed, &CampaignConfig::default())
        .expect("an unjournaled campaign cannot fail")
        .outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_every_kind_once() {
        let outcomes = run_campaign(7);
        assert_eq!(outcomes.len(), Perturbation::ALL.len());
        for (o, kind) in outcomes.iter().zip(Perturbation::ALL) {
            assert_eq!(o.kind, kind);
            assert!(o.line.starts_with(kind.name()), "{}", o.line);
        }
    }

    #[test]
    fn campaign_seeds_are_distinct_and_deterministic() {
        for master in [0u64, 7, 42, u64::MAX] {
            let outcomes = run_campaign(master);
            let seeds: std::collections::BTreeSet<u64> = outcomes.iter().map(|o| o.seed).collect();
            assert_eq!(
                seeds.len(),
                Perturbation::ALL.len(),
                "seed collision at master={master}"
            );
            let again = run_campaign(master);
            assert!(
                outcomes
                    .iter()
                    .zip(&again)
                    .all(|(a, b)| a.seed == b.seed && a.line == b.line),
                "campaign not deterministic at master={master}"
            );
        }
    }

    #[test]
    fn out_of_range_scenario_yields_a_typed_error() {
        let outcomes = run_campaign(0xBAD_5EED);
        let oor = &outcomes[1];
        assert_eq!(oor.kind, Perturbation::OutOfRangeAccess);
        assert!(!oor.ok);
        assert!(oor.line.contains("at step"), "{}", oor.line);
        assert!(oor.line.contains("outside object"), "{}", oor.line);
    }

    #[test]
    fn survivors_keep_invariants() {
        for o in run_campaign(42) {
            if o.kind != Perturbation::OutOfRangeAccess {
                assert!(o.ok, "{}", o.line);
                assert!(o.line.contains("guard=ok"), "{}", o.line);
            }
        }
    }

    #[test]
    fn capacity_crunch_actually_evicts() {
        let outcomes = run_campaign(3);
        let crunch = &outcomes[2];
        assert_eq!(crunch.kind, Perturbation::CapacityCrunch);
        assert!(!crunch.line.contains("evictions=0"), "{}", crunch.line);
    }

    #[test]
    fn scenarios_run_with_the_epoch_guard() {
        assert_eq!(base_config().guard, GuardMode::Epoch);
    }

    #[test]
    fn hardware_fault_scenarios_degrade_gracefully() {
        let outcomes = run_campaign(19);
        let down = &outcomes[6];
        assert_eq!(down.kind, Perturbation::LinkDown);
        assert!(down.ok, "{}", down.line);
        assert!(down.line.contains("reroutes="), "{}", down.line);
        let flaky = &outcomes[7];
        assert_eq!(flaky.kind, Perturbation::LinkFlaky);
        assert!(flaky.ok, "{}", flaky.line);
        let ecc = &outcomes[8];
        assert_eq!(ecc.kind, Perturbation::EccPoison);
        assert!(ecc.ok, "{}", ecc.line);
        assert!(ecc.line.contains("quarantines="), "{}", ecc.line);
    }

    #[test]
    fn expected_abort_counts_as_a_pass() {
        let report = run_campaign_supervised(42, &CampaignConfig::default())
            .expect("an unjournaled campaign cannot fail");
        assert!(report.passed(), "healthy campaign must pass");
        assert!(report.job_failures.is_empty());
        assert!(report.quarantined.is_empty());
        let oor = &report.outcomes[1];
        assert_eq!(oor.kind, Perturbation::OutOfRangeAccess);
        assert!(!oor.ok, "the typed abort is the desired behavior");
        assert!(oor.passed(), "…and therefore a pass");
        for o in &report.outcomes {
            if !o.kind.expects_abort() {
                assert_eq!(o.passed(), o.ok, "{}", o.line);
            }
        }
    }

    #[test]
    fn parallel_campaign_matches_the_serial_one() {
        let serial = run_campaign_supervised(7, &CampaignConfig::default())
            .expect("an unjournaled campaign cannot fail");
        let parallel = run_campaign_supervised(
            7,
            &CampaignConfig {
                jobs: 3,
                ..CampaignConfig::default()
            },
        )
        .expect("an unjournaled campaign cannot fail");
        assert_eq!(
            serial.outcomes, parallel.outcomes,
            "jobs must not change content"
        );
        assert!(parallel.passed());
    }

    #[test]
    fn kill_and_resume_scenario_is_bit_identical() {
        let outcomes = run_campaign(11);
        let kr = &outcomes[5];
        assert_eq!(kr.kind, Perturbation::KillAndResume);
        assert!(kr.ok, "{}", kr.line);
        assert!(kr.line.contains("resumed bit-identical"), "{}", kr.line);
        assert!(kr.line.contains("killed at epoch"), "{}", kr.line);
    }
}
