//! Object/page access-pattern characterization (Section IV).
//!
//! Implements the paper's terminology on top of raw traces: private vs
//! shared pages, read-only / write-only / rw-mix pages, the 90 % dominance
//! rule for object patterns, non-uniform objects, and interval/phase
//! scoping. Feeds Figs. 3–7 and 20.

use std::collections::HashMap;

use oasis_mem::types::{ObjectId, PageSize};
use oasis_workloads::trace::Trace;

/// Read/write classification of a page or object over a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RwPattern {
    /// Only read.
    ReadOnly,
    /// Only written.
    WriteOnly,
    /// Both read and written.
    RwMix,
}

/// Sharing classification of a page or object over a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharePattern {
    /// Touched by exactly one GPU.
    Private,
    /// Touched by more than one GPU.
    Shared,
}

/// Raw per-page counters over a scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Bitmask of GPUs that read the page.
    pub readers: u32,
    /// Bitmask of GPUs that wrote the page.
    pub writers: u32,
    /// Read transactions.
    pub reads: u64,
    /// Write transactions.
    pub writes: u64,
}

impl PageStats {
    /// True if any GPU touched the page in the scope.
    pub fn touched(&self) -> bool {
        self.readers | self.writers != 0
    }

    /// Read/write classification (`None` if untouched).
    pub fn rw(&self) -> Option<RwPattern> {
        match (self.reads > 0, self.writes > 0) {
            (false, false) => None,
            (true, false) => Some(RwPattern::ReadOnly),
            (false, true) => Some(RwPattern::WriteOnly),
            (true, true) => Some(RwPattern::RwMix),
        }
    }

    /// Sharing classification (`None` if untouched).
    pub fn share(&self) -> Option<SharePattern> {
        match (self.readers | self.writers).count_ones() {
            0 => None,
            1 => Some(SharePattern::Private),
            _ => Some(SharePattern::Shared),
        }
    }
}

/// The scope a profile is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The entire trace ("overall object pattern").
    Whole,
    /// One explicit phase (kernel launch), by index.
    Phase(usize),
    /// Interval `index` of `of` equal chunks of every stream — the
    /// time-interval axis of Figs. 4 and 7 (approximates implicit phases).
    Interval {
        /// Which chunk.
        index: usize,
        /// Total chunks.
        of: usize,
    },
}

/// Pattern summary for one object over a scope.
#[derive(Debug, Clone)]
pub struct ObjectProfile {
    /// The object.
    pub obj: ObjectId,
    /// Allocation name.
    pub name: String,
    /// Pages the object spans.
    pub pages: u64,
    /// Total transactions to the object in scope.
    pub accesses: u64,
    /// Per-page counters (indexed by page-within-object).
    pub page_stats: Vec<PageStats>,
}

/// The paper's dominance threshold: an object takes a pattern when at
/// least 90 % of its touched pages agree.
pub const DOMINANCE: f64 = 0.90;

impl ObjectProfile {
    /// Dominant read/write pattern under the 90 % rule; `None` if the
    /// object was untouched, `Some(RwMix)` if no pattern dominates.
    pub fn rw_pattern(&self) -> Option<RwPattern> {
        let touched: Vec<RwPattern> = self.page_stats.iter().filter_map(PageStats::rw).collect();
        if touched.is_empty() {
            return None;
        }
        for candidate in [RwPattern::ReadOnly, RwPattern::WriteOnly, RwPattern::RwMix] {
            let n = touched.iter().filter(|p| **p == candidate).count();
            if n as f64 >= DOMINANCE * touched.len() as f64 {
                return Some(candidate);
            }
        }
        Some(RwPattern::RwMix)
    }

    /// Dominant sharing pattern under the 90 % rule; `None` if untouched.
    /// A mixed object ("private-shared-mix") reports `Shared`.
    pub fn share_pattern(&self) -> Option<SharePattern> {
        let touched: Vec<SharePattern> = self
            .page_stats
            .iter()
            .filter_map(PageStats::share)
            .collect();
        if touched.is_empty() {
            return None;
        }
        for candidate in [SharePattern::Private, SharePattern::Shared] {
            let n = touched.iter().filter(|p| **p == candidate).count();
            if n as f64 >= DOMINANCE * touched.len() as f64 {
                return Some(candidate);
            }
        }
        Some(SharePattern::Shared)
    }

    /// The paper's *non-uniform object*: at least one touched page differs
    /// from the object's dominant classification in **both** dimensions.
    pub fn is_non_uniform(&self) -> bool {
        let (Some(rw), Some(share)) = (self.rw_pattern(), self.share_pattern()) else {
            return false;
        };
        self.page_stats.iter().any(|p| {
            matches!((p.rw(), p.share()), (Some(prw), Some(psh))
                if prw != rw && psh != share)
        })
    }

    /// Fraction of touched pages (coverage within the scope).
    pub fn touched_fraction(&self) -> f64 {
        if self.page_stats.is_empty() {
            return 0.0;
        }
        self.page_stats.iter().filter(|p| p.touched()).count() as f64 / self.page_stats.len() as f64
    }
}

/// Profiles every object of `trace` over `scope` at the given page size.
pub fn profile(trace: &Trace, page: PageSize, scope: Scope) -> Vec<ObjectProfile> {
    // Page-within-object indexing: offsets are object-relative, so page
    // index = offset / page_bytes (object bases are 2 MiB-aligned in the
    // simulator, preserving this alignment for both page sizes).
    let mut profiles: Vec<ObjectProfile> = trace
        .objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let pages = page.pages_for(o.bytes).max(1);
            ObjectProfile {
                obj: ObjectId(i as u16),
                name: o.name.clone(),
                pages,
                accesses: 0,
                page_stats: vec![PageStats::default(); pages as usize],
            }
        })
        .collect();

    let phases: Box<dyn Iterator<Item = &oasis_workloads::trace::Phase>> = match scope {
        Scope::Phase(i) => Box::new(trace.phases.get(i).into_iter()),
        _ => Box::new(trace.phases.iter()),
    };
    for ph in phases {
        for (g, stream) in ph.per_gpu.iter().enumerate() {
            let (start, end) = match scope {
                Scope::Interval { index, of } => {
                    assert!(index < of, "interval index out of range");
                    let chunk = stream.len().div_ceil(of.max(1));
                    let s = (index * chunk).min(stream.len());
                    (s, (s + chunk).min(stream.len()))
                }
                _ => (0, stream.len()),
            };
            for a in &stream[start..end] {
                let p = &mut profiles[a.obj.0 as usize];
                let idx = (a.offset / page.bytes()) as usize;
                let stats = &mut p.page_stats[idx];
                if a.kind.is_write() {
                    stats.writers |= 1 << g;
                    stats.writes += 1;
                } else {
                    stats.readers |= 1 << g;
                    stats.reads += 1;
                }
                p.accesses += 1;
            }
        }
    }
    profiles
}

/// Aggregate page-type percentages across an app (Fig. 20): returns
/// `(read-only, write-only, rw-mix)` and `(private, shared)` fractions of
/// touched pages.
pub fn page_type_mix(trace: &Trace, page: PageSize) -> ((f64, f64, f64), (f64, f64)) {
    let profiles = profile(trace, page, Scope::Whole);
    let mut rw = HashMap::new();
    let mut share = HashMap::new();
    let mut touched = 0u64;
    for p in &profiles {
        for s in &p.page_stats {
            if let (Some(r), Some(sh)) = (s.rw(), s.share()) {
                *rw.entry(r).or_insert(0u64) += 1;
                *share.entry(sh).or_insert(0u64) += 1;
                touched += 1;
            }
        }
    }
    if touched == 0 {
        return ((0.0, 0.0, 0.0), (0.0, 0.0));
    }
    let f = |n: u64| n as f64 / touched as f64;
    (
        (
            f(*rw.get(&RwPattern::ReadOnly).unwrap_or(&0)),
            f(*rw.get(&RwPattern::WriteOnly).unwrap_or(&0)),
            f(*rw.get(&RwPattern::RwMix).unwrap_or(&0)),
        ),
        (
            f(*share.get(&SharePattern::Private).unwrap_or(&0)),
            f(*share.get(&SharePattern::Shared).unwrap_or(&0)),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_workloads::{generate, App, WorkloadParams};

    fn mt() -> Trace {
        generate(App::Mt, &WorkloadParams::small(App::Mt, 4))
    }

    #[test]
    fn mt_input_is_shared_read_only_output_private_write_only() {
        let profiles = profile(&mt(), PageSize::Small4K, Scope::Whole);
        let input = &profiles[0];
        assert_eq!(input.rw_pattern(), Some(RwPattern::ReadOnly));
        assert_eq!(input.share_pattern(), Some(SharePattern::Shared));
        let output = &profiles[1];
        assert_eq!(output.rw_pattern(), Some(RwPattern::WriteOnly));
        assert_eq!(output.share_pattern(), Some(SharePattern::Private));
        assert!(!input.is_non_uniform());
        assert!(!output.is_non_uniform());
    }

    #[test]
    fn mt_pattern_is_stable_across_intervals() {
        // Fig. 4's time axis: the pattern holds in all 8 intervals.
        let t = mt();
        for i in 0..8 {
            let profiles = profile(&t, PageSize::Small4K, Scope::Interval { index: i, of: 8 });
            let input = &profiles[0];
            if input.accesses > 0 {
                assert_eq!(input.rw_pattern(), Some(RwPattern::ReadOnly));
            }
            let output = &profiles[1];
            if output.accesses > 0 {
                assert_eq!(output.rw_pattern(), Some(RwPattern::WriteOnly));
            }
        }
    }

    #[test]
    fn st_buffers_are_shared_rw_mix_overall_but_clean_per_interval() {
        let t = generate(App::St, &WorkloadParams::small(App::St, 4));
        let whole = profile(&t, PageSize::Small4K, Scope::Whole);
        assert_eq!(whole[0].rw_pattern(), Some(RwPattern::RwMix));
        assert_eq!(whole[1].rw_pattern(), Some(RwPattern::RwMix));
        // Halo pages make the buffers shared.
        assert_eq!(whole[0].share_pattern(), Some(SharePattern::Shared));
    }

    #[test]
    fn c2d_intermediates_private_per_phase_shared_overall() {
        let t = generate(App::C2d, &WorkloadParams::small(App::C2d, 4));
        let whole = profile(&t, PageSize::Small4K, Scope::Whole);
        // Im2col_Output (obj 1): shared over the run...
        assert_eq!(whole[1].share_pattern(), Some(SharePattern::Shared));
        // ...but private within the im2col phase alone.
        let phase0 = profile(&t, PageSize::Small4K, Scope::Phase(0));
        assert_eq!(phase0[1].share_pattern(), Some(SharePattern::Private));
    }

    #[test]
    fn large_pages_increase_sharing() {
        // Fig. 20: 2 MB pages merge private 4 KB pages into shared ones.
        let t = generate(App::St, &WorkloadParams::small(App::St, 4));
        let (_, (private4k, _)) = page_type_mix(&t, PageSize::Small4K);
        let (_, (private2m, _)) = page_type_mix(&t, PageSize::Large2M);
        assert!(
            private2m <= private4k + 1e-9,
            "2MB private share {private2m} vs 4KB {private4k}"
        );
    }

    #[test]
    fn page_type_mix_fractions_sum_to_one() {
        let t = mt();
        let ((ro, wo, rw), (pr, sh)) = page_type_mix(&t, PageSize::Small4K);
        assert!((ro + wo + rw - 1.0).abs() < 1e-9);
        assert!((pr + sh - 1.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_object_has_no_pattern() {
        let t = mt();
        let profiles = profile(&t, PageSize::Small4K, Scope::Whole);
        // MT_Params is allocated but never accessed by the generator.
        let params = &profiles[2];
        if params.accesses == 0 {
            assert_eq!(params.rw_pattern(), None);
            assert_eq!(params.share_pattern(), None);
            assert_eq!(params.touched_fraction(), 0.0);
        }
    }
}
