//! Simulation results.

use oasis_engine::error::SimError;
use oasis_engine::{Duration, MetricsRegistry, TimedEvent};
use oasis_interconnect::FaultCounters;
use oasis_mem::page::PolicyBits;
use oasis_uvm::stats::UvmStats;

/// Per-epoch activity delta: what one kernel launch (trace phase) cost and
/// did. Derived from cumulative counters at epoch boundaries, so rollups
/// are observational — they carry no state of their own and are excluded
/// from digests, checkpoints, and [`RunReport::same_simulation`] (a
/// resumed run only has rollups for the epochs it executed itself).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochRollup {
    /// 0-based epoch (kernel launch) index.
    pub epoch: u64,
    /// Simulated time this epoch consumed (launch overhead + segments).
    pub sim_time: Duration,
    /// Memory transactions retired during this epoch.
    pub accesses: u64,
    /// UVM driver activity during this epoch (field-wise delta).
    pub uvm: UvmStats,
}

/// Host-side measurements of one run: wall-clock spent simulating and
/// checkpointing, plus the retired-event count. Everything here except
/// `retired_steps` depends on the machine the simulator ran on, so these
/// fields are excluded from [`RunReport::same_simulation`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunInstrumentation {
    /// Wall-clock microseconds spent inside `System::run` (cumulative
    /// across resume: a resumed run carries the original's time forward).
    pub wall_clock_us: u64,
    /// Simulation-loop events retired (attempted accesses, including ones
    /// that failed and were recorded).
    pub retired_steps: u64,
    /// Wall-clock microseconds spent serializing checkpoints.
    pub checkpoint_write_us: u64,
    /// Wall-clock microseconds spent restoring from a checkpoint.
    pub checkpoint_restore_us: u64,
}

/// Everything a run produces; the raw material of every figure.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application abbreviation.
    pub app: String,
    /// Policy name.
    pub policy: String,
    /// Simulated end-to-end execution time (the performance metric; all
    /// figures report its inverse normalized to on-touch).
    pub total_time: Duration,
    /// Kernel launches executed.
    pub phases: usize,
    /// Total memory transactions issued.
    pub accesses: u64,
    /// Transactions served from the issuing GPU's local memory/cache.
    pub local_accesses: u64,
    /// Transactions served from a remote device.
    pub remote_accesses: u64,
    /// Aggregated (hits, misses) over all L1 TLBs.
    pub l1_tlb: (u64, u64),
    /// Aggregated (hits, misses) over all L2 TLBs.
    pub l2_tlb: (u64, u64),
    /// Aggregated (hits, misses) over all L2 caches.
    pub l2_cache: (u64, u64),
    /// UVM driver event counters (faults, migrations, ...).
    pub uvm: UvmStats,
    /// Policy bits in force for each L2-TLB-miss request, indexed
    /// `[on-touch, access-counter, duplication]` (Fig. 23).
    pub policy_mix: [u64; 3],
    /// Bytes moved over NVLink ports.
    pub nvlink_bytes: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Hardware-fault recovery rollup: CRC retransmissions, PCIe-fallback
    /// reroutes (count and payload bytes), and permanent link faults
    /// applied. All zeros under an empty fault plan. Deterministic — part
    /// of [`RunReport::same_simulation`].
    pub faults: FaultCounters,
    /// Typed errors absorbed under
    /// [`ErrorPolicy::RecordAndContinue`](oasis_engine::ErrorPolicy) (0 in
    /// fail-fast runs, which abort instead).
    pub errors_recorded: u64,
    /// The first few recorded errors, verbatim, each prefixed with its
    /// step number for replay.
    pub error_samples: Vec<String>,
    /// FNV-1a digest of the full simulation state at the end of each epoch
    /// (kernel launch), in epoch order. Two runs of the same trace under
    /// the same configuration must produce identical trails; a resumed run
    /// keeps the trail of the epochs that ran before the checkpoint.
    pub digest_trail: Vec<u64>,
    /// Host-side wall-clock and checkpoint-latency measurements (not part
    /// of the deterministic result).
    pub instrumentation: RunInstrumentation,
    /// Per-epoch activity deltas for the epochs *this* system executed
    /// (a resumed run lacks pre-checkpoint rollups). Observational;
    /// excluded from [`RunReport::same_simulation`].
    pub epoch_rollups: Vec<EpochRollup>,
    /// The metrics registry at report time: instrumented-component
    /// counters/histograms plus report-time rollups (fabric link busy
    /// times, TLB shootdowns, policy-internal counters). Empty when
    /// metrics were disabled. Observational; excluded from
    /// [`RunReport::same_simulation`].
    pub metrics: MetricsRegistry,
    /// Events retained by the tracer, in record order. Empty when tracing
    /// was disabled. Observational; excluded from
    /// [`RunReport::same_simulation`].
    pub trace_events: Vec<TimedEvent>,
}

impl RunReport {
    /// Speedup of this run over `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.total_time.as_ps() as f64 / self.total_time.as_ps().max(1) as f64
    }

    /// Fraction of L2-TLB-miss requests governed by `bits`.
    pub fn policy_share(&self, bits: PolicyBits) -> f64 {
        let total: u64 = self.policy_mix.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let idx = match bits {
            PolicyBits::OnTouch => 0,
            PolicyBits::AccessCounter => 1,
            PolicyBits::Duplication => 2,
        };
        self.policy_mix[idx] as f64 / total as f64
    }

    /// Index into [`RunReport::policy_mix`] for `bits`.
    pub fn mix_index(bits: PolicyBits) -> usize {
        match bits {
            PolicyBits::OnTouch => 0,
            PolicyBits::AccessCounter => 1,
            PolicyBits::Duplication => 2,
        }
    }

    /// True when two reports describe the same simulated execution: every
    /// deterministic field (simulated time, counters, digest trail,
    /// retired steps) matches. Wall-clock and checkpoint latencies are
    /// ignored — they vary run to run on the host.
    pub fn same_simulation(&self, other: &RunReport) -> bool {
        self.app == other.app
            && self.policy == other.policy
            && self.total_time == other.total_time
            && self.phases == other.phases
            && self.accesses == other.accesses
            && self.local_accesses == other.local_accesses
            && self.remote_accesses == other.remote_accesses
            && self.l1_tlb == other.l1_tlb
            && self.l2_tlb == other.l2_tlb
            && self.l2_cache == other.l2_cache
            && self.uvm == other.uvm
            && self.policy_mix == other.policy_mix
            && self.nvlink_bytes == other.nvlink_bytes
            && self.pcie_bytes == other.pcie_bytes
            && self.faults == other.faults
            && self.errors_recorded == other.errors_recorded
            && self.error_samples == other.error_samples
            && self.digest_trail == other.digest_trail
            && self.instrumentation.retired_steps == other.instrumentation.retired_steps
    }

    /// Compares this run's per-epoch digest trail against a reference
    /// run's, returning a typed [`SimError::Divergence`] naming the first
    /// epoch whose state digest departed (a missing epoch counts as digest
    /// 0 on the short side).
    pub fn check_digests_against(&self, reference: &RunReport) -> Result<(), SimError> {
        let epochs = self.digest_trail.len().max(reference.digest_trail.len());
        for epoch in 0..epochs {
            let got = self.digest_trail.get(epoch).copied().unwrap_or(0);
            let expected = reference.digest_trail.get(epoch).copied().unwrap_or(0);
            if got != expected {
                return Err(SimError::Divergence {
                    epoch: epoch as u64,
                    expected,
                    got,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(us: u64) -> RunReport {
        RunReport {
            app: "X".into(),
            policy: "p".into(),
            total_time: Duration::from_us(us),
            phases: 1,
            accesses: 0,
            local_accesses: 0,
            remote_accesses: 0,
            l1_tlb: (0, 0),
            l2_tlb: (0, 0),
            l2_cache: (0, 0),
            uvm: UvmStats::default(),
            policy_mix: [0; 3],
            nvlink_bytes: 0,
            pcie_bytes: 0,
            faults: FaultCounters::default(),
            errors_recorded: 0,
            error_samples: Vec::new(),
            digest_trail: Vec::new(),
            instrumentation: RunInstrumentation::default(),
            epoch_rollups: Vec::new(),
            metrics: MetricsRegistry::disabled(),
            trace_events: Vec::new(),
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = report(200);
        let fast = report(100);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-9);
        assert!((base.speedup_over(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn policy_share_sums_to_one() {
        let mut r = report(1);
        r.policy_mix = [1, 2, 7];
        let total: f64 = [
            PolicyBits::OnTouch,
            PolicyBits::AccessCounter,
            PolicyBits::Duplication,
        ]
        .into_iter()
        .map(|b| r.policy_share(b))
        .sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((r.policy_share(PolicyBits::Duplication) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_mix_has_zero_share() {
        assert_eq!(report(1).policy_share(PolicyBits::OnTouch), 0.0);
    }

    #[test]
    fn same_simulation_ignores_wall_clock_but_not_results() {
        let a = report(100);
        let mut b = report(100);
        b.instrumentation.wall_clock_us = 123_456;
        b.instrumentation.checkpoint_write_us = 9;
        b.epoch_rollups.push(EpochRollup::default());
        b.metrics = MetricsRegistry::enabled();
        assert!(
            a.same_simulation(&b),
            "host timings and observability state must not matter"
        );
        b.accesses = 1;
        assert!(!a.same_simulation(&b), "simulated counters must match");
    }

    #[test]
    fn digest_divergence_names_the_first_bad_epoch() {
        let mut reference = report(1);
        reference.digest_trail = vec![10, 20, 30];
        let mut run = reference.clone();
        assert!(run.check_digests_against(&reference).is_ok());
        run.digest_trail[1] = 99;
        match run.check_digests_against(&reference) {
            Err(SimError::Divergence {
                epoch,
                expected,
                got,
            }) => {
                assert_eq!(epoch, 1);
                assert_eq!(expected, 20);
                assert_eq!(got, 99);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        // A truncated trail diverges at the first missing epoch.
        run.digest_trail = vec![10, 20];
        let err = run.check_digests_against(&reference).unwrap_err();
        assert!(matches!(err, SimError::Divergence { epoch: 2, .. }));
    }
}
