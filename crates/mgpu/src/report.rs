//! Simulation results.

use oasis_engine::Duration;
use oasis_mem::page::PolicyBits;
use oasis_uvm::stats::UvmStats;

/// Everything a run produces; the raw material of every figure.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application abbreviation.
    pub app: String,
    /// Policy name.
    pub policy: String,
    /// Simulated end-to-end execution time (the performance metric; all
    /// figures report its inverse normalized to on-touch).
    pub total_time: Duration,
    /// Kernel launches executed.
    pub phases: usize,
    /// Total memory transactions issued.
    pub accesses: u64,
    /// Transactions served from the issuing GPU's local memory/cache.
    pub local_accesses: u64,
    /// Transactions served from a remote device.
    pub remote_accesses: u64,
    /// Aggregated (hits, misses) over all L1 TLBs.
    pub l1_tlb: (u64, u64),
    /// Aggregated (hits, misses) over all L2 TLBs.
    pub l2_tlb: (u64, u64),
    /// Aggregated (hits, misses) over all L2 caches.
    pub l2_cache: (u64, u64),
    /// UVM driver event counters (faults, migrations, ...).
    pub uvm: UvmStats,
    /// Policy bits in force for each L2-TLB-miss request, indexed
    /// `[on-touch, access-counter, duplication]` (Fig. 23).
    pub policy_mix: [u64; 3],
    /// Bytes moved over NVLink ports.
    pub nvlink_bytes: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Typed errors absorbed under
    /// [`ErrorPolicy::RecordAndContinue`](oasis_engine::ErrorPolicy) (0 in
    /// fail-fast runs, which abort instead).
    pub errors_recorded: u64,
    /// The first few recorded errors, verbatim, each prefixed with its
    /// step number for replay.
    pub error_samples: Vec<String>,
}

impl RunReport {
    /// Speedup of this run over `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.total_time.as_ps() as f64 / self.total_time.as_ps().max(1) as f64
    }

    /// Fraction of L2-TLB-miss requests governed by `bits`.
    pub fn policy_share(&self, bits: PolicyBits) -> f64 {
        let total: u64 = self.policy_mix.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let idx = match bits {
            PolicyBits::OnTouch => 0,
            PolicyBits::AccessCounter => 1,
            PolicyBits::Duplication => 2,
        };
        self.policy_mix[idx] as f64 / total as f64
    }

    /// Index into [`RunReport::policy_mix`] for `bits`.
    pub fn mix_index(bits: PolicyBits) -> usize {
        match bits {
            PolicyBits::OnTouch => 0,
            PolicyBits::AccessCounter => 1,
            PolicyBits::Duplication => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(us: u64) -> RunReport {
        RunReport {
            app: "X".into(),
            policy: "p".into(),
            total_time: Duration::from_us(us),
            phases: 1,
            accesses: 0,
            local_accesses: 0,
            remote_accesses: 0,
            l1_tlb: (0, 0),
            l2_tlb: (0, 0),
            l2_cache: (0, 0),
            uvm: UvmStats::default(),
            policy_mix: [0; 3],
            nvlink_bytes: 0,
            pcie_bytes: 0,
            errors_recorded: 0,
            error_samples: Vec::new(),
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = report(200);
        let fast = report(100);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-9);
        assert!((base.speedup_over(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn policy_share_sums_to_one() {
        let mut r = report(1);
        r.policy_mix = [1, 2, 7];
        let total: f64 = [
            PolicyBits::OnTouch,
            PolicyBits::AccessCounter,
            PolicyBits::Duplication,
        ]
        .into_iter()
        .map(|b| r.policy_share(b))
        .sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((r.policy_share(PolicyBits::Duplication) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_mix_has_zero_share() {
        assert_eq!(report(1).policy_share(PolicyBits::OnTouch), 0.0);
    }
}
