//! The per-GPU hardware model: TLB hierarchy, L2 cache, local DRAM.

use oasis_engine::{Channel, Duration};
use oasis_mem::cache::Cache;
use oasis_mem::tlb::Tlb;
use oasis_mem::types::{PageSize, Va, Vpn};

use crate::config::SystemConfig;

/// One GPU's on-chip memory-system state.
#[derive(Debug)]
pub struct GpuModel {
    /// CU-side L1 TLB (Table I: 32-entry, 32-way).
    pub l1_tlb: Tlb,
    /// GPU-shared L2 TLB (Table I: 512-entry, 16-way).
    pub l2_tlb: Tlb,
    /// GPU-shared L2 data cache (Table I: 256 KB, 16-way).
    pub l2_cache: Cache,
    /// Local DRAM modelled as a bandwidth-serialized channel.
    pub dram: Channel,
}

/// The translation outcome of one access, for timing and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbOutcome {
    /// Latency of the TLB/walk portion.
    pub latency: Duration,
    /// Whether the access missed the L2 TLB (a "L2 TLB miss request",
    /// the population of Fig. 23).
    pub l2_miss: bool,
}

impl GpuModel {
    /// Builds a GPU per the system configuration.
    pub fn new(config: &SystemConfig) -> Self {
        GpuModel {
            l1_tlb: Tlb::new(config.l1_tlb.0, config.l1_tlb.1),
            l2_tlb: Tlb::new(config.l2_tlb.0, config.l2_tlb.1),
            l2_cache: Cache::new(config.l2_cache.0, config.l2_cache.1, config.l2_cache.2),
            dram: Channel::new(config.dram_bytes_per_sec, config.dram_latency),
        }
    }

    /// Walks the TLB hierarchy for `vpn`, filling on the way back.
    pub fn translate(&mut self, vpn: Vpn, config: &SystemConfig) -> TlbOutcome {
        let mut latency = config.l1_tlb_latency();
        if self.l1_tlb.access(vpn) {
            return TlbOutcome {
                latency,
                l2_miss: false,
            };
        }
        latency += config.l2_tlb_latency();
        if self.l2_tlb.access(vpn) {
            self.l1_tlb.fill(vpn);
            return TlbOutcome {
                latency,
                l2_miss: false,
            };
        }
        latency += config.page_walk_latency();
        self.l2_tlb.fill(vpn);
        self.l1_tlb.fill(vpn);
        TlbOutcome {
            latency,
            l2_miss: true,
        }
    }

    /// Drops the translation and cached data for `vpn` (a shootdown).
    pub fn invalidate(&mut self, vpn: Vpn, page: PageSize) {
        self.l1_tlb.invalidate(vpn);
        self.l2_tlb.invalidate(vpn);
        self.l2_cache.invalidate_page(vpn, page);
    }

    /// Charges a local data access: L2 cache hit, or miss + DRAM.
    pub fn local_access(
        &mut self,
        now: oasis_engine::Time,
        va: Va,
        bytes: u64,
        config: &SystemConfig,
    ) -> Duration {
        if self.l2_cache.access(va) {
            config.l2_cache_latency
        } else {
            let t = self.dram.reserve(now, bytes);
            config.l2_cache_latency + t.latency_from(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_engine::Time;

    #[test]
    fn translate_latencies_escalate() {
        let cfg = SystemConfig::default();
        let mut g = GpuModel::new(&cfg);
        let cold = g.translate(Vpn(7), &cfg);
        assert!(cold.l2_miss);
        assert_eq!(cold.latency, Duration::from_ns(511)); // 1 + 10 + 500
        let warm = g.translate(Vpn(7), &cfg);
        assert!(!warm.l2_miss);
        assert_eq!(warm.latency, Duration::from_ns(1));
    }

    #[test]
    fn l1_miss_l2_hit_path() {
        let cfg = SystemConfig::default();
        let mut g = GpuModel::new(&cfg);
        g.translate(Vpn(7), &cfg);
        g.l1_tlb.invalidate(Vpn(7));
        let o = g.translate(Vpn(7), &cfg);
        assert!(!o.l2_miss);
        assert_eq!(o.latency, Duration::from_ns(11));
    }

    #[test]
    fn invalidate_clears_both_tlbs_and_cache() {
        let cfg = SystemConfig::default();
        let mut g = GpuModel::new(&cfg);
        g.translate(Vpn(7), &cfg);
        g.l2_cache.access(Va(7 << 12));
        g.invalidate(Vpn(7), PageSize::Small4K);
        assert!(g.translate(Vpn(7), &cfg).l2_miss);
        assert!(!g.l2_cache.access(Va(7 << 12))); // miss again
    }

    #[test]
    fn local_access_cache_hit_vs_dram() {
        let cfg = SystemConfig::default();
        let mut g = GpuModel::new(&cfg);
        let miss = g.local_access(Time::ZERO, Va(0x1000), 64, &cfg);
        assert!(miss >= cfg.dram_latency);
        let hit = g.local_access(Time::ZERO, Va(0x1000), 64, &cfg);
        assert_eq!(hit, cfg.l2_cache_latency);
    }
}
