//! End-to-end simulation benchmarks: whole-app runs at reduced footprints,
//! one group per page-management policy. These measure *simulator*
//! throughput (the wall-clock cost of reproducing a figure), not simulated
//! time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oasis_mgpu::{simulate, Policy, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams};

fn tiny(app: App) -> WorkloadParams {
    WorkloadParams {
        footprint_mb: (app.footprint_mb(4) / 16).max(2),
        ..WorkloadParams::small(app, 4)
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for app in [App::Mt, App::St] {
        let trace = generate(app, &tiny(app));
        for policy in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(policy.name(), app.abbr()),
                &trace,
                |b, trace| b.iter(|| simulate(&SystemConfig::default(), policy.clone(), trace)),
            );
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    for app in [App::Mm, App::LeNet] {
        group.bench_function(app.abbr(), |b| b.iter(|| generate(app, &tiny(app))));
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_trace_generation);
criterion_main!(benches);
