//! End-to-end simulation benchmarks: whole-app runs at reduced footprints,
//! one measurement per page-management policy. These measure *simulator*
//! throughput (the wall-clock cost of reproducing a figure), not simulated
//! time.
//!
//! Timing uses the in-tree [`oasis_bench::timing`] harness (the build
//! environment is offline, so no criterion). Run with
//! `cargo bench --features bench-harness`.

use oasis_bench::timing::{bench, black_box};
use oasis_mgpu::{simulate, Policy, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams};

fn tiny(app: App) -> WorkloadParams {
    WorkloadParams {
        footprint_mb: (app.footprint_mb(4) / 16).max(2),
        ..WorkloadParams::small(app, 4)
    }
}

fn bench_policies() {
    for app in [App::Mt, App::St] {
        let trace = generate(app, &tiny(app));
        for policy in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            bench(
                &format!("end_to_end/{}/{}", policy.name(), app.abbr()),
                || black_box(simulate(&SystemConfig::default(), policy.clone(), &trace)),
            );
        }
    }
}

fn bench_trace_generation() {
    for app in [App::Mm, App::LeNet] {
        bench(&format!("trace_generation/{}", app.abbr()), || {
            black_box(generate(app, &tiny(app)))
        });
    }
}

fn main() {
    bench_policies();
    bench_trace_generation();
}
