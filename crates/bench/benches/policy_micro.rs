//! Microbenchmarks of the policy-engine hot paths: the structures OASIS
//! claims are cheap (O-Table, pointer tagging, shadow map) and the
//! simulator substrate they sit on (TLB, cache, event queue, driver).
//!
//! Timing uses the in-tree [`oasis_bench::timing`] harness (the build
//! environment is offline, so no criterion). Run with
//! `cargo bench --features bench-harness`.

use oasis_bench::timing::{bench, black_box};
use oasis_core::controller::OasisController;
use oasis_core::inmem::{OasisInMem, ShadowMap};
use oasis_core::otable::OTable;
use oasis_core::tracker::{decode, encode};
use oasis_engine::{Channel, Duration, EventQueue, Time};
use oasis_grit::GritEngine;
use oasis_interconnect::{Fabric, FabricConfig};
use oasis_mem::cache::Cache;
use oasis_mem::page::HostEntry;
use oasis_mem::tlb::Tlb;
use oasis_mem::types::{AccessKind, DeviceId, GpuId, ObjectId, PageSize, Va, Vpn};
use oasis_uvm::costs::UvmCosts;
use oasis_uvm::driver::{MemState, UvmDriver};
use oasis_uvm::fault::PageFault;
use oasis_uvm::policy::{OnTouchPolicy, PolicyEngine};

fn bench_structures() {
    {
        let mut t = OTable::new();
        let mut i = 0u16;
        bench("otable/lookup_or_insert", || {
            i = (i + 1) % 24; // forces some LRU churn past 16 entries
            black_box(t.lookup_or_insert(i).pf_count)
        });
    }

    bench("tracker/encode_decode", || {
        let tagged = encode(black_box(Va(0x1234_5000)), ObjectId(7), 4, true);
        black_box(decode(tagged, 4))
    });

    {
        let mut m = ShadowMap::new();
        m.set_range(Va(0x1000_0000), 64 << 20, 42);
        bench("shadow_map/lookup", || black_box(m.lookup(Va(0x1200_0040))));
    }

    {
        let mut t = Tlb::new(512, 16);
        for i in 0..512 {
            t.fill(Vpn(i));
        }
        let mut i = 0u64;
        bench("tlb/access_hit", || {
            i = (i + 1) % 512;
            black_box(t.access(Vpn(i)))
        });
    }

    {
        let mut ca = Cache::new(256 * 1024, 16, 64);
        let mut i = 0u64;
        bench("cache/access", || {
            i = (i + 64) % (1 << 20);
            black_box(ca.access(Va(i)))
        });
    }

    {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        bench("engine/event_queue_push_pop", || {
            t += 10;
            q.push(Time::from_ps(t), 1);
            black_box(q.pop())
        });
    }

    {
        let mut ch = Channel::new(300_000_000_000, Duration::from_ns(500));
        let mut now = Time::ZERO;
        bench("engine/channel_reserve", || {
            now += Duration::from_ns(100);
            black_box(ch.reserve(now, 64))
        });
    }
}

fn shared_state() -> MemState {
    let mut s = MemState::new(4, PageSize::Small4K, None);
    for i in 0..1024u64 {
        s.host_table
            .register(Vpn(i), HostEntry::new_at(DeviceId::Gpu(GpuId(1))))
            .expect("fresh page");
    }
    s
}

fn bench_engines() {
    {
        let mut engine = OasisController::new();
        let state = shared_state();
        let mut i = 0u64;
        bench("oasis/resolve_shared_fault", || {
            i = (i + 1) % 1024;
            let f = PageFault::far(
                GpuId(0),
                encode(Va(0x1000_0000), ObjectId((i % 8) as u16), 4, true),
                Vpn(i),
                AccessKind::Read,
            );
            black_box(engine.resolve(&f, &state))
        });
    }

    {
        let mut engine = OasisInMem::new();
        engine.on_alloc(ObjectId(0), Va(0), 1024 * 4096);
        let state = shared_state();
        let mut i = 0u64;
        bench("oasis_inmem/resolve_shared_fault", || {
            i = (i + 1) % 1024;
            let f = PageFault::far(GpuId(0), Va(i * 4096), Vpn(i), AccessKind::Read);
            black_box(engine.resolve(&f, &state))
        });
    }

    {
        let mut engine = GritEngine::new();
        let state = shared_state();
        let mut i = 0u64;
        bench("grit/resolve_fault", || {
            i = (i + 1) % 1024;
            let f = PageFault::far(GpuId(0), Va(i * 4096), Vpn(i), AccessKind::Read);
            black_box(engine.resolve(&f, &state))
        });
    }

    {
        let mut driver = UvmDriver::new(
            4,
            PageSize::Small4K,
            None,
            Box::new(OnTouchPolicy),
            UvmCosts::default(),
            256,
        );
        driver
            .alloc_object(ObjectId(0), Va(0x1000_0000), 4096 * 4096, |_| {
                DeviceId::Host
            })
            .expect("fresh allocation");
        let mut fabric = Fabric::new(4, FabricConfig::default());
        let mut i = 0u64;
        bench("driver/handle_fault_migrate", || {
            i = (i + 1) % 4096;
            let vpn = Va(0x1000_0000 + i * 4096).vpn(PageSize::Small4K);
            let f = PageFault::far(
                GpuId((i % 4) as u8),
                Va(0x1000_0000 + i * 4096),
                vpn,
                AccessKind::Write,
            );
            black_box(
                driver
                    .handle_fault(Time::ZERO, &f, &mut fabric)
                    .expect("fault resolves")
                    .latency,
            )
        });
    }
}

fn main() {
    bench_structures();
    bench_engines();
}
