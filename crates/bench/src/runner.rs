//! Sweep runner: (app × policy) matrices executed on all cores.

use std::sync::Mutex;

use oasis_mgpu::{simulate, Policy, RunReport, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams, ALL_APPS};

/// The four uniform configurations every figure compares against.
pub const STANDARD_POLICIES: fn() -> Vec<Policy> = || {
    vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::Ideal,
    ]
};

/// One completed simulation.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application.
    pub app: App,
    /// The policy's display name.
    pub policy: String,
    /// Full counters.
    pub report: RunReport,
}

/// What to sweep.
pub struct MatrixArgs {
    /// Base platform configuration.
    pub config: SystemConfig,
    /// Applications (defaults to all eleven).
    pub apps: Vec<App>,
    /// Policies to compare.
    pub policies: Vec<Policy>,
    /// Workload parameters per app (defaults to the paper's Table II
    /// footprints at the configured GPU count).
    pub params: Box<dyn Fn(App) -> WorkloadParams + Sync>,
}

impl MatrixArgs {
    /// The paper's standard setup for a given config and policy list.
    pub fn paper(config: SystemConfig, policies: Vec<Policy>) -> Self {
        let gpus = config.gpu_count;
        MatrixArgs {
            config,
            apps: ALL_APPS.to_vec(),
            policies,
            params: Box::new(move |app| WorkloadParams::paper(app, gpus)),
        }
    }

    /// Scaled-down setup for fast smoke runs.
    pub fn small(config: SystemConfig, policies: Vec<Policy>) -> Self {
        let gpus = config.gpu_count;
        MatrixArgs {
            config,
            apps: ALL_APPS.to_vec(),
            policies,
            params: Box::new(move |app| WorkloadParams::small(app, gpus)),
        }
    }
}

/// Runs every (app, policy) pair, in parallel across OS threads, and
/// returns cells ordered by (app, policy) as given in `args`.
pub fn run_matrix(args: &MatrixArgs) -> Vec<Cell> {
    let jobs: Vec<(usize, usize)> = (0..args.apps.len())
        .flat_map(|a| (0..args.policies.len()).map(move |p| (a, p)))
        .collect();
    let results: Mutex<Vec<Option<Cell>>> = Mutex::new(vec![None; jobs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (ai, pi) = jobs[j];
                let app = args.apps[ai];
                let policy = args.policies[pi].clone();
                let trace = generate(app, &(args.params)(app));
                let report = simulate(&args.config, policy.clone(), &trace);
                let cell = Cell {
                    app,
                    policy: policy.name().to_string(),
                    report,
                };
                results.lock().expect("poisoned").as_mut_slice()[j] = Some(cell);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|c| c.expect("all jobs completed"))
        .collect()
}

/// Finds the cell for `(app, policy)` in a matrix result.
pub fn find<'a>(cells: &'a [Cell], app: App, policy: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.app == app && c.policy == policy)
        .unwrap_or_else(|| panic!("missing cell {app}/{policy}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_all_pairs_in_order() {
        let args = MatrixArgs {
            config: SystemConfig::default(),
            apps: vec![App::Mt, App::Mm],
            policies: vec![Policy::OnTouch, Policy::Ideal],
            params: Box::new(|app| WorkloadParams {
                footprint_mb: 4,
                ..WorkloadParams::small(app, 4)
            }),
        };
        let cells = run_matrix(&args);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].app, App::Mt);
        assert_eq!(cells[0].policy, "on-touch");
        assert_eq!(cells[3].app, App::Mm);
        assert_eq!(cells[3].policy, "ideal");
        let c = find(&cells, App::Mm, "ideal");
        assert!(c.report.total_time.as_us() > 0.0);
    }
}
