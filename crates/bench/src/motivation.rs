//! Motivation & characterization experiments: Tables I–III, Figs. 2–7, 20.

use oasis_mem::types::PageSize;
use oasis_mgpu::characterize::{page_type_mix, profile, RwPattern, Scope, SharePattern};
use oasis_mgpu::{Policy, SystemConfig};
use oasis_workloads::{generate, App, ALL_APPS};

use crate::runner::{find, run_matrix, MatrixArgs};
use crate::table::FigureTable;
use crate::Profile;

/// Table I: the baseline configuration, rendered from the live defaults so
/// the document can never drift from the code.
pub fn table1() -> String {
    let c = SystemConfig::default();
    let mut out = String::from("## Table I: baseline multi-GPU configuration\n");
    let rows = [
        (
            "Compute model".to_string(),
            format!(
                "{} GHz, {} lanes/GPU (trace-level)",
                c.clock_ghz, c.lanes_per_gpu
            ),
        ),
        ("GPUs".to_string(), format!("{}", c.gpu_count)),
        (
            "L1 TLB".to_string(),
            format!(
                "{} entries, {}-way, {} cy",
                c.l1_tlb.0, c.l1_tlb.1, c.l1_tlb_cycles
            ),
        ),
        (
            "L2 TLB".to_string(),
            format!(
                "{} entries, {}-way, {} cy",
                c.l2_tlb.0, c.l2_tlb.1, c.l2_tlb_cycles
            ),
        ),
        (
            "GMMU page walk".to_string(),
            format!("{} cy", c.page_walk_cycles),
        ),
        (
            "L2 cache".to_string(),
            format!(
                "{} KB, {}-way, {} B lines",
                c.l2_cache.0 / 1024,
                c.l2_cache.1,
                c.l2_cache.2
            ),
        ),
        (
            "DRAM".to_string(),
            format!(
                "{} ns, {} GB/s",
                c.dram_latency.as_ns(),
                c.dram_bytes_per_sec / 1_000_000_000
            ),
        ),
        (
            "Inter-GPU network".to_string(),
            format!(
                "{} GB/s NVLink-v2, {} ns",
                c.fabric.nvlink_bytes_per_sec / 1_000_000_000,
                c.fabric.nvlink_latency.as_ns()
            ),
        ),
        (
            "CPU-GPU network".to_string(),
            format!(
                "{} GB/s PCIe-v4, {:.1} us",
                c.fabric.pcie_bytes_per_sec / 1_000_000_000,
                c.fabric.pcie_latency.as_us()
            ),
        ),
        (
            "Access counter threshold".to_string(),
            format!(
                "{} per 64 KB group (x{} sampling weight)",
                c.counter_threshold, c.counter_weight
            ),
        ),
        (
            "Far fault".to_string(),
            format!(
                "{:.0} us base, {:.1} us service",
                c.uvm_costs.far_fault_base.as_us(),
                c.uvm_costs.fault_service.as_us()
            ),
        ),
        ("Page size".to_string(), format!("{}", c.page_size)),
    ];
    for (k, v) in rows {
        out.push_str(&format!("{k:<26} {v}\n"));
    }
    out
}

/// Table II: the application list with pattern, object count, footprint.
pub fn table2() -> String {
    let mut out = String::from("## Table II: applications\n");
    out.push_str(&format!(
        "{:<9} {:<32} {:<12} {:<15} {:>9} {:>10}\n",
        "Abbr", "Application", "Suite", "Pattern", "#Objects", "Footprint"
    ));
    for app in ALL_APPS {
        out.push_str(&format!(
            "{:<9} {:<32} {:<12} {:<15} {:>9} {:>7} MB\n",
            app.abbr(),
            app.full_name(),
            app.suite(),
            app.pattern().to_string(),
            app.object_count(),
            app.footprint_mb(4),
        ));
    }
    out
}

/// Table III: footprints at 8 and 16 GPUs.
pub fn table3() -> FigureTable {
    let mut t = FigureTable::new(
        "Table III: memory footprint (MB) for different GPU counts",
        vec!["4-GPU".into(), "8-GPU".into(), "16-GPU".into()],
    );
    t.decimals = 0;
    for app in ALL_APPS {
        t.push(
            app.abbr(),
            vec![
                app.footprint_mb(4) as f64,
                app.footprint_mb(8) as f64,
                app.footprint_mb(16) as f64,
            ],
        );
    }
    t
}

/// Fig. 2: uniform policies + Ideal, normalized to on-touch.
pub fn fig02(profile: Profile) -> FigureTable {
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::Ideal,
    ];
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies: policies.clone(),
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let cells = run_matrix(&args);
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    let mut t = FigureTable::new(
        "Fig. 2: uniform page-management policies normalized to on-touch",
        names.clone(),
    );
    for app in ALL_APPS {
        let base = find(&cells, app, "on-touch");
        t.push(
            app.abbr(),
            names
                .iter()
                .map(|n| find(&cells, app, n).report.speedup_over(&base.report))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 3: object size distribution per app (pages at 4 KiB).
pub fn fig03() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 3: object size distribution (4 KiB pages per object)",
        vec![
            "min".into(),
            "median".into(),
            "max".into(),
            "%1-page".into(),
        ],
    );
    t.decimals = 1;
    for app in ALL_APPS {
        let trace = generate(app, &Profile::Full.params(app, 4));
        let mut sizes: Vec<u64> = trace
            .objects
            .iter()
            .map(|o| PageSize::Small4K.pages_for(o.bytes).max(1))
            .collect();
        sizes.sort_unstable();
        let single = sizes.iter().filter(|&&s| s == 1).count() as f64 / sizes.len() as f64;
        t.push(
            app.abbr(),
            vec![
                sizes[0] as f64,
                sizes[sizes.len() / 2] as f64,
                *sizes.last().expect("nonempty") as f64,
                single * 100.0,
            ],
        );
    }
    t
}

fn rw_label(p: Option<RwPattern>) -> &'static str {
    match p {
        None => "untouched",
        Some(RwPattern::ReadOnly) => "read-only",
        Some(RwPattern::WriteOnly) => "write-only",
        Some(RwPattern::RwMix) => "rw-mix",
    }
}

fn share_label(p: Option<SharePattern>) -> &'static str {
    match p {
        None => "untouched",
        Some(SharePattern::Private) => "private",
        Some(SharePattern::Shared) => "shared",
    }
}

/// Fig. 4: MT's per-object page patterns, overall and across 8 time
/// intervals.
pub fn fig04() -> String {
    let trace = generate(App::Mt, &Profile::Full.params(App::Mt, 4));
    let mut out = String::from("## Fig. 4: MT page access patterns (per object, 8 intervals)\n");
    let whole = profile(&trace, PageSize::Small4K, Scope::Whole);
    for p in whole.iter().filter(|p| p.accesses > 0) {
        out.push_str(&format!(
            "{:<12} pages 0..{:<6} overall: {} / {}\n",
            p.name,
            p.pages,
            share_label(p.share_pattern()),
            rw_label(p.rw_pattern()),
        ));
    }
    out.push_str(&format!("{:<10}", "interval"));
    for p in whole.iter().filter(|p| p.accesses > 0) {
        out.push_str(&format!(" {:>12}", p.name));
    }
    out.push('\n');
    for i in 0..8 {
        let iv = profile(
            &trace,
            PageSize::Small4K,
            Scope::Interval { index: i, of: 8 },
        );
        out.push_str(&format!("{i:<10}"));
        for (idx, p) in whole.iter().enumerate() {
            if p.accesses == 0 {
                continue;
            }
            out.push_str(&format!(" {:>12}", rw_label(iv[idx].rw_pattern())));
        }
        out.push('\n');
    }
    out
}

/// Fig. 5: object behaviour and access share for I2C, MM, ST.
pub fn fig05() -> String {
    let mut out = String::from("## Fig. 5: object behaviour (pattern, pages, % of accesses)\n");
    for app in [App::I2c, App::Mm, App::St] {
        let trace = generate(app, &Profile::Full.params(app, 4));
        let profiles = profile(&trace, PageSize::Small4K, Scope::Whole);
        let total: u64 = profiles.iter().map(|p| p.accesses).sum();
        out.push_str(&format!("{}:\n", app.abbr()));
        for p in profiles.iter().filter(|p| p.accesses > 0) {
            out.push_str(&format!(
                "  {:<14} {:<8}-{:<11} {:>7} pages  {:>5.1}% of accesses\n",
                p.name,
                share_label(p.share_pattern()),
                rw_label(p.rw_pattern()),
                p.pages,
                p.accesses as f64 / total as f64 * 100.0,
            ));
        }
    }
    out
}

/// Fig. 6: C2D object patterns per explicit phase vs overall.
pub fn fig06() -> String {
    let trace = generate(App::C2d, &Profile::Full.params(App::C2d, 4));
    let mut out = String::from("## Fig. 6: C2D object patterns across explicit phases\n");
    let whole = profile(&trace, PageSize::Small4K, Scope::Whole);
    let main_objects: Vec<usize> = whole
        .iter()
        .enumerate()
        .filter(|(_, p)| p.accesses > 0 && p.pages > 16)
        .map(|(i, _)| i)
        .collect();
    out.push_str(&format!("{:<16}", "phase"));
    for &i in &main_objects {
        out.push_str(&format!(" {:>22}", whole[i].name));
    }
    out.push('\n');
    for (pi, ph) in trace.phases.iter().enumerate().take(3) {
        let pp = profile(&trace, PageSize::Small4K, Scope::Phase(pi));
        out.push_str(&format!("{:<16}", ph.name));
        for &i in &main_objects {
            let label = if pp[i].accesses == 0 {
                "-".to_string()
            } else {
                format!(
                    "{}/{}",
                    share_label(pp[i].share_pattern()),
                    rw_label(pp[i].rw_pattern())
                )
            };
            out.push_str(&format!(" {label:>22}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "overall"));
    for &i in &main_objects {
        out.push_str(&format!(
            " {:>22}",
            format!(
                "{}/{}",
                share_label(whole[i].share_pattern()),
                rw_label(whole[i].rw_pattern())
            )
        ));
    }
    out.push('\n');
    out
}

/// Fig. 7: ST buffer patterns across iterations (as stream intervals).
pub fn fig07() -> String {
    let trace = generate(App::St, &Profile::Full.params(App::St, 4));
    let iters = oasis_workloads::apps::st::ITERATIONS;
    let mut out = String::from("## Fig. 7: ST buffer read/write alternation across iterations\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12}\n",
        "interval", "ST_Data1", "ST_Data2"
    ));
    for i in 0..iters {
        let iv = profile(
            &trace,
            PageSize::Small4K,
            Scope::Interval {
                index: i,
                of: iters,
            },
        );
        out.push_str(&format!(
            "{:<10} {:>12} {:>12}\n",
            i,
            rw_label(iv[0].rw_pattern()),
            rw_label(iv[1].rw_pattern()),
        ));
    }
    out
}

/// Fig. 20: page-type percentages at 4 KiB vs 2 MiB pages.
pub fn fig20() -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 20: page-type mix (percent of touched pages), 4KB vs 2MB",
        vec![
            "4K-ro".into(),
            "4K-wo".into(),
            "4K-rw".into(),
            "4K-shared".into(),
            "2M-ro".into(),
            "2M-wo".into(),
            "2M-rw".into(),
            "2M-shared".into(),
        ],
    );
    t.decimals = 1;
    for app in ALL_APPS {
        let trace = generate(app, &Profile::Full.params(app, 4));
        let ((ro4, wo4, rw4), (_, sh4)) = page_type_mix(&trace, PageSize::Small4K);
        let ((ro2, wo2, rw2), (_, sh2)) = page_type_mix(&trace, PageSize::Large2M);
        t.push(
            app.abbr(),
            vec![
                ro4 * 100.0,
                wo4 * 100.0,
                rw4 * 100.0,
                sh4 * 100.0,
                ro2 * 100.0,
                wo2 * 100.0,
                rw2 * 100.0,
                sh2 * 100.0,
            ],
        );
    }
    t
}
