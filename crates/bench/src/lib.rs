//! Experiment harness shared code: running policy sweeps across apps and
//! emitting the paper's tables/figures as text + CSV.

pub mod evaluation;
pub mod motivation;
pub mod runner;
pub mod table;
pub mod timing;

pub use runner::{run_matrix, Cell, MatrixArgs, STANDARD_POLICIES};
pub use table::{geomean, write_csv, FigureTable};

/// Speed profile for experiment binaries: `Full` reproduces the paper's
/// Table II/III sizes; `Fast` shrinks footprints for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Paper-size inputs.
    Full,
    /// Reduced inputs (~8× smaller footprints).
    Fast,
}

impl Profile {
    /// Reads the profile from the `OASIS_FAST` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("OASIS_FAST").is_ok_and(|v| v != "0") {
            Profile::Fast
        } else {
            Profile::Full
        }
    }

    /// Workload parameters for `app` at `gpus` under this profile.
    pub fn params(self, app: oasis_workloads::App, gpus: usize) -> oasis_workloads::WorkloadParams {
        match self {
            Profile::Full => oasis_workloads::WorkloadParams::paper(app, gpus),
            Profile::Fast => oasis_workloads::WorkloadParams::small(app, gpus),
        }
    }
}
