//! Prints Table III (footprints at 8/16 GPUs).
fn main() {
    oasis_bench::motivation::table3().emit("table3_footprints");
}
