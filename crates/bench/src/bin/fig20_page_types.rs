//! Regenerates Fig. 20: page-type mix at 4 KB vs 2 MB pages.
fn main() {
    oasis_bench::motivation::fig20().emit("fig20_page_types");
}
