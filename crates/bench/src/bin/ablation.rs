//! Ablation study of OASIS's design choices (Section V / VI-C):
//!
//! * self-correction off (PF-count reset threshold never reached),
//! * explicit kernel-launch resets off,
//! * host-page-table private/shared filter off,
//! * O-Table shrunk to 4 entries,
//! * GRIT without Neighboring-Aware Prediction.
//!
//! All normalized to on-touch, on the phase-heavy / object-heavy apps where
//! each mechanism matters.

use oasis_bench::runner::{find, run_matrix, MatrixArgs};
use oasis_bench::{FigureTable, Profile};
use oasis_core::controller::OasisConfig;
use oasis_grit::GritConfig;
use oasis_mgpu::{Policy, SystemConfig};
use oasis_workloads::App;

fn main() {
    let profile = Profile::from_env();
    let apps = vec![App::C2d, App::St, App::Mm, App::LeNet, App::Bfs];
    let variants: Vec<(&str, Policy)> = vec![
        ("on-touch", Policy::OnTouch),
        ("oasis", Policy::oasis()),
        (
            "no-self-corr",
            Policy::Oasis(OasisConfig::default().without_self_correction()),
        ),
        (
            "no-launch-reset",
            Policy::Oasis(OasisConfig::default().without_explicit_resets()),
        ),
        (
            "no-pt-filter",
            Policy::Oasis(OasisConfig::default().without_host_pt_filter()),
        ),
        (
            "otable-4",
            Policy::Oasis(OasisConfig {
                otable_capacity: 4,
                ..OasisConfig::default()
            }),
        ),
        ("grit", Policy::grit()),
        (
            "grit-no-nap",
            Policy::Grit(GritConfig {
                neighbor_window: 0,
                ..GritConfig::default()
            }),
        ),
    ];
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: apps.clone(),
        policies: variants.iter().map(|(_, p)| p.clone()).collect(),
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let mut cells = run_matrix(&args);
    // Rename cells (several variants share engine names).
    for (i, c) in cells.iter_mut().enumerate() {
        c.policy = variants[i % variants.len()].0.to_string();
    }
    let names: Vec<String> = variants[1..].iter().map(|(n, _)| n.to_string()).collect();
    let mut t = FigureTable::new(
        "Ablation: OASIS/GRIT design choices (normalized to on-touch)",
        names.clone(),
    );
    for app in &apps {
        let base = find(&cells, *app, "on-touch");
        t.push(
            app.abbr(),
            names
                .iter()
                .map(|n| find(&cells, *app, n).report.speedup_over(&base.report))
                .collect(),
        );
    }
    t.push_geomean();
    t.emit("ablation");

    // Substrate ablation: the UVM neighborhood prefetcher (extension), for
    // the baseline and for OASIS.
    let prefetch_cfg = SystemConfig {
        prefetch_group: true,
        ..SystemConfig::default()
    };
    let pf_args = MatrixArgs {
        config: prefetch_cfg,
        apps: apps.clone(),
        policies: vec![Policy::OnTouch, Policy::oasis()],
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let pf_cells = run_matrix(&pf_args);
    let mut t2 = FigureTable::new(
        "Ablation: UVM group prefetcher on (speedup vs no-prefetch run)",
        vec!["on-touch+pf".into(), "oasis+pf".into()],
    );
    for app in &apps {
        let base_plain = find(&cells, *app, "on-touch");
        let oasis_plain = find(&cells, *app, "oasis");
        let base_pf = find(&pf_cells, *app, "on-touch");
        let oasis_pf = find(&pf_cells, *app, "oasis");
        t2.push(
            app.abbr(),
            vec![
                base_pf.report.speedup_over(&base_plain.report),
                oasis_pf.report.speedup_over(&oasis_plain.report),
            ],
        );
    }
    t2.push_geomean();
    t2.emit("ablation_prefetch");
}
