//! Regenerates Fig. 3: object size distribution.
fn main() {
    oasis_bench::motivation::fig03().emit("fig03_object_sizes");
}
