//! Regenerates Fig. 22: OASIS vs GRIT.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig22(p).emit("fig22_vs_grit");
}
