//! Regenerates Fig. 23: policy mix of L2-TLB-miss requests.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig23(p).emit("fig23_policy_mix");
}
