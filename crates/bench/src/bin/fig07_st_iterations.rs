//! Regenerates Fig. 7: ST buffer alternation across iterations.
fn main() {
    print!("{}", oasis_bench::motivation::fig07());
}
