//! Verifies the paper's Observation 2 on the generated traces: "pages
//! within a single object typically exhibit the same patterns".
//!
//! The paper evaluates the 7 single-explicit-phase applications (BFS, FFT,
//! I2C, MM, MT, PR, ST) and finds only 2 of 26 objects *non-uniform* (at
//! least one page differing from the rest in both the private/shared and
//! read/write dimensions), with only ST qualifying as a non-uniform app.

use oasis_bench::Profile;
use oasis_mem::types::PageSize;
use oasis_mgpu::characterize::{profile, Scope};
use oasis_workloads::{generate, App};

fn main() {
    let single_phase = [
        App::Bfs,
        App::Fft,
        App::I2c,
        App::Mm,
        App::Mt,
        App::Pr,
        App::St,
    ];
    println!("## Observation 2: object uniformity (single-explicit-phase apps)");
    let mut objects = 0usize;
    let mut non_uniform_objects = 0usize;
    let mut non_uniform_apps = 0usize;
    for app in single_phase {
        let trace = generate(app, &Profile::Full.params(app, 4));
        let profiles = profile(&trace, PageSize::Small4K, Scope::Whole);
        let mut app_non_uniform = false;
        for p in profiles.iter().filter(|p| p.accesses > 0) {
            objects += 1;
            let nu = p.is_non_uniform();
            if nu {
                non_uniform_objects += 1;
                app_non_uniform = true;
                println!("  {} {:<16} NON-UNIFORM", app.abbr(), p.name);
            }
        }
        if app_non_uniform {
            non_uniform_apps += 1;
        }
    }
    println!(
        "{non_uniform_objects} of {objects} touched objects non-uniform \
         (paper: 2 of 26); {non_uniform_apps} of {} apps non-uniform (paper: 1 of 7)",
        single_phase.len()
    );
}
