//! Regenerates Fig. 18: large inputs (16-GPU sizes on 4 GPUs).
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig18(p).emit("fig18_input_size");
}
