//! Regenerates Fig. 16: reset-threshold sensitivity (4/8/32).
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig16(p).emit("fig16_reset_threshold");
}
