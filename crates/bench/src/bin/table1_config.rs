//! Prints Table I (the live baseline configuration).
fn main() {
    print!("{}", oasis_bench::motivation::table1());
}
