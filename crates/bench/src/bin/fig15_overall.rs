//! Regenerates Fig. 15: OASIS / OASIS-InMem vs uniform policies.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig15(p).emit("fig15_overall");
}
