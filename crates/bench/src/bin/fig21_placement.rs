//! Regenerates Fig. 21: striped initial placement.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig21(p).emit("fig21_placement");
}
