//! Debug tool: dump full counters for one app under every policy.
//! Usage: `debug_app <APP> [small]`

use oasis_bench::runner::{run_matrix, MatrixArgs};
use oasis_mgpu::{Policy, SystemConfig};
use oasis_workloads::{WorkloadParams, ALL_APPS};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FFT".into());
    let small = std::env::args().nth(2).is_some();
    let fp_override: Option<u64> = std::env::var("FOOTPRINT_MB")
        .ok()
        .and_then(|v| v.parse().ok());
    let app = *ALL_APPS
        .iter()
        .find(|a| a.abbr().eq_ignore_ascii_case(&name))
        .expect("unknown app");
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
        Policy::grit(),
        Policy::Ideal,
    ];
    let config = if std::env::var("LARGE_PAGES").is_ok() {
        SystemConfig::with_large_pages()
    } else {
        SystemConfig::default()
    };
    let args = MatrixArgs {
        config,
        apps: vec![app],
        policies,
        params: Box::new(move |a| {
            let mut p = if small {
                WorkloadParams::small(a, 4)
            } else {
                WorkloadParams::paper(a, 4)
            };
            if let Some(fp) = fp_override {
                p.footprint_mb = fp;
            }
            p
        }),
    };
    let cells = run_matrix(&args);
    println!(
        "{:<16} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "policy",
        "time(ms)",
        "farF",
        "protF",
        "migr",
        "ctrMigr",
        "dup",
        "collapse",
        "rmaps",
        "remoteAcc",
        "localAcc"
    );
    for c in &cells {
        let r = &c.report;
        println!(
            "{:<16} {:>9.2} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            r.policy,
            r.total_time.as_us() / 1000.0,
            r.uvm.far_faults,
            r.uvm.protection_faults,
            r.uvm.migrations,
            r.uvm.counter_migrations,
            r.uvm.duplications,
            r.uvm.collapses,
            r.uvm.remote_maps,
            r.remote_accesses,
            r.local_accesses,
        );
    }
}
