//! Calibration probe: prints the normalized-performance matrix for every
//! app × policy at paper sizes, plus the headline averages. Not a paper
//! figure — use it to check shapes while tuning the cost model.

use oasis_bench::{geomean, run_matrix, FigureTable, MatrixArgs};
use oasis_mgpu::{Policy, SystemConfig};

fn main() {
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
        Policy::oasis_inmem(),
        Policy::grit(),
        Policy::Ideal,
    ];
    let mut config = SystemConfig::default();
    if let Ok(v) = std::env::var("REMOTE_US") {
        config.remote_access_overhead =
            oasis_engine::Duration::from_ns((v.parse::<f64>().unwrap() * 1000.0) as u64);
    }
    if let Ok(v) = std::env::var("CTR_WEIGHT") {
        config.counter_weight = v.parse().unwrap();
    }
    if let Ok(v) = std::env::var("FAULT_SVC_US") {
        config.uvm_costs.fault_service =
            oasis_engine::Duration::from_ns((v.parse::<f64>().unwrap() * 1000.0) as u64);
    }
    let args = MatrixArgs::paper(config, policies.clone());
    let cells = run_matrix(&args);
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    let mut table = FigureTable::new(
        "Probe: speedup over on-touch (4 GPUs, Table II sizes)",
        names.clone(),
    );
    for app in &args.apps {
        let base = oasis_bench::runner::find(&cells, *app, "on-touch");
        let row: Vec<f64> = names
            .iter()
            .map(|p| {
                oasis_bench::runner::find(&cells, *app, p)
                    .report
                    .speedup_over(&base.report)
            })
            .collect();
        table.push(app.abbr(), row);
    }
    table.push_geomean();
    println!("{}", table.render());

    // Headline comparisons.
    let gm = |target: &str, base: &str| {
        geomean(
            &args
                .apps
                .iter()
                .map(|a| {
                    let t = oasis_bench::runner::find(&cells, *a, target);
                    let b = oasis_bench::runner::find(&cells, *a, base);
                    t.report.speedup_over(&b.report)
                })
                .collect::<Vec<_>>(),
        )
    };
    println!(
        "oasis vs on-touch      : {:+.1}% (paper +64%)",
        (gm("oasis", "on-touch") - 1.0) * 100.0
    );
    println!(
        "oasis vs access-counter: {:+.1}% (paper +35%)",
        (gm("oasis", "access-counter") - 1.0) * 100.0
    );
    println!(
        "oasis vs duplication   : {:+.1}% (paper +42%)",
        (gm("oasis", "duplication") - 1.0) * 100.0
    );
    println!(
        "oasis vs grit          : {:+.1}% (paper +12%)",
        (gm("oasis", "grit") - 1.0) * 100.0
    );
    println!(
        "inmem vs oasis         : {:+.1}% (paper ~-2%)",
        (gm("oasis-inmem", "oasis") - 1.0) * 100.0
    );

    // Fault counts (Fig. 24 shape).
    let faults = |p: &str| -> u64 {
        args.apps
            .iter()
            .map(|a| {
                oasis_bench::runner::find(&cells, *a, p)
                    .report
                    .uvm
                    .total_faults()
            })
            .sum()
    };
    let (fo, fg) = (faults("oasis"), faults("grit"));
    println!(
        "faults oasis/grit      : {:.2} (paper ~0.78)",
        fo as f64 / fg as f64
    );
}
