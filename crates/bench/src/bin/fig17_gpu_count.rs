//! Regenerates Fig. 17: OASIS at 8 and 16 GPUs.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig17(p).emit("fig17_gpu_count");
}
