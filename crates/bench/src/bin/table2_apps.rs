//! Prints Table II (the application list).
fn main() {
    print!("{}", oasis_bench::motivation::table2());
}
