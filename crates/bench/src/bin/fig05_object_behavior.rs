//! Regenerates Fig. 5: object behaviour of I2C, MM and ST.
fn main() {
    print!("{}", oasis_bench::motivation::fig05());
}
