//! Regenerates Fig. 25: 150% memory oversubscription.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig25(p).emit("fig25_oversubscription");
}
