//! Regenerates Fig. 19: 2 MB pages.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig19(p).emit("fig19_large_pages");
}
