//! Runs every table and figure of the paper in sequence, printing each and
//! writing CSVs under `results/`. Set `OASIS_FAST=1` for a quick smoke run
//! with reduced input sizes.

use std::time::Instant;

use oasis_bench::{evaluation, motivation, Profile};

fn main() {
    let profile = Profile::from_env();
    println!("Reproducing all OASIS (HPCA 2025) experiments [{profile:?} profile]\n");
    let t0 = Instant::now();

    let step = |name: &str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        eprintln!("[{name} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    };

    step("table1", &mut || println!("{}", motivation::table1()));
    step("table2", &mut || println!("{}", motivation::table2()));
    step("table3", &mut || {
        motivation::table3().emit("table3_footprints")
    });
    step("fig02", &mut || {
        motivation::fig02(profile).emit("fig02_uniform_policies")
    });
    step("fig03", &mut || {
        motivation::fig03().emit("fig03_object_sizes")
    });
    step("fig04", &mut || println!("{}", motivation::fig04()));
    step("fig05", &mut || println!("{}", motivation::fig05()));
    step("fig06", &mut || println!("{}", motivation::fig06()));
    step("fig07", &mut || println!("{}", motivation::fig07()));
    step("fig15", &mut || {
        evaluation::fig15(profile).emit("fig15_overall")
    });
    step("fig16", &mut || {
        evaluation::fig16(profile).emit("fig16_reset_threshold")
    });
    step("fig17", &mut || {
        evaluation::fig17(profile).emit("fig17_gpu_count")
    });
    step("fig18", &mut || {
        evaluation::fig18(profile).emit("fig18_input_size")
    });
    step("fig19", &mut || {
        evaluation::fig19(profile).emit("fig19_large_pages")
    });
    step("fig20", &mut || {
        motivation::fig20().emit("fig20_page_types")
    });
    step("fig21", &mut || {
        evaluation::fig21(profile).emit("fig21_placement")
    });
    step("fig22", &mut || {
        evaluation::fig22(profile).emit("fig22_vs_grit")
    });
    step("fig23", &mut || {
        evaluation::fig23(profile).emit("fig23_policy_mix")
    });
    step("fig24", &mut || {
        evaluation::fig24(profile).emit("fig24_faults")
    });
    step("fig25", &mut || {
        evaluation::fig25(profile).emit("fig25_oversubscription")
    });

    eprintln!(
        "All experiments reproduced in {:.1}s; CSVs in results/",
        t0.elapsed().as_secs_f64()
    );
}
