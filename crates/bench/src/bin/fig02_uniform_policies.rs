//! Regenerates Fig. 2: uniform policies + Ideal vs on-touch.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::motivation::fig02(p).emit("fig02_uniform_policies");
}
