//! Regenerates Fig. 4: MT page access patterns over time.
fn main() {
    print!("{}", oasis_bench::motivation::fig04());
}
