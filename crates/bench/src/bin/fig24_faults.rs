//! Regenerates Fig. 24: GPU page faults, OASIS vs GRIT.
fn main() {
    let p = oasis_bench::Profile::from_env();
    oasis_bench::evaluation::fig24(p).emit("fig24_faults");
}
