//! Regenerates Fig. 6: C2D object patterns across explicit phases.
fn main() {
    print!("{}", oasis_bench::motivation::fig06());
}
