//! Minimal wall-clock timing harness for the `cargo bench` targets.
//!
//! The build environment is offline, so instead of criterion the bench
//! targets use this ~80-line harness: auto-calibrated batch sizes, a few
//! samples, median-of-samples reporting. It measures honestly but makes no
//! statistical claims beyond that — for publication-grade numbers, rerun
//! the same closures under a full harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 7;

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub best_ns: f64,
    /// Iterations per measured batch (after calibration).
    pub batch: u64,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12.1} ns/iter (best {:>10.1}, {} iters/batch)",
            self.name, self.median_ns, self.best_ns, self.batch
        )
    }
}

/// Times `f`, printing and returning the measurement.
///
/// Calibrates a batch size so one batch runs for roughly
/// [`BATCH_TARGET`], then takes [`SAMPLES`] batches and reports the
/// median per-iteration time.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    // Calibrate: double the batch until it takes long enough to time.
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= BATCH_TARGET || batch >= 1 << 28 {
            break;
        }
        // Jump close to the target, never more than 16x at once.
        let factor = (BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
        batch = (batch * (factor as u64).clamp(2, 16)).min(1 << 28);
    }

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            start.elapsed().as_secs_f64() * 1e9 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let m = Measurement {
        name: name.to_string(),
        median_ns: per_iter[SAMPLES / 2],
        best_ns: per_iter[0],
        batch,
    };
    println!("{m}");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let m = bench("test/add", || {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(m.median_ns > 0.0);
        assert!(m.best_ns <= m.median_ns);
        assert!(m.batch >= 1);
    }

    #[test]
    fn display_carries_the_name() {
        let m = Measurement {
            name: "x/y".into(),
            median_ns: 12.5,
            best_ns: 10.0,
            batch: 1024,
        };
        assert!(m.to_string().contains("x/y"));
    }
}
