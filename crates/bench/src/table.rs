//! Figure/table formatting: aligned text tables and CSV dumps.

use std::fmt::Write as _;
use std::path::Path;

use oasis_engine::SimError;

/// Geometric mean of strictly positive values (the paper's averaging
/// convention for normalized speedups).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A figure rendered as rows (apps) × columns (series).
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Title printed above the table.
    pub title: String,
    /// Name of the row-label column ("App").
    pub row_label: String,
    /// Series names.
    pub columns: Vec<String>,
    /// (row label, values per column).
    pub rows: Vec<(String, Vec<f64>)>,
    /// How many decimals to print.
    pub decimals: usize,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        FigureTable {
            title: title.into(),
            row_label: "App".to_string(),
            columns,
            rows: Vec::new(),
            decimals: 2,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Appends a geometric-mean summary row over the current rows.
    pub fn push_geomean(&mut self) {
        let cols = self.columns.len();
        let values: Vec<f64> = (0..cols)
            .map(|c| geomean(&self.rows.iter().map(|(_, v)| v[c]).collect::<Vec<_>>()))
            .collect();
        self.rows.push(("GEOMEAN".to_string(), values));
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_label.len()])
            .max()
            .unwrap_or(8)
            .max(4);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(8)).collect();
        let _ = write!(out, "{:<label_w$}", self.row_label);
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_w$}");
            for (v, w) in values.iter().zip(&col_w) {
                let _ = write!(out, "  {:>w$.prec$}", v, prec = self.decimals);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV form (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.row_label.to_lowercase());
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label}");
            for v in values {
                let _ = write!(out, ",{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table to stdout and writes `results/<name>.csv`.
    ///
    /// The CSV write runs under `RecordAndContinue`: a bench table is a
    /// convenience artifact, so a storage failure is warned about (with
    /// the typed error from [`write_csv`]) and the run keeps going —
    /// the rendered table already went to stdout.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = write_csv(name, &self.to_csv()) {
            eprintln!("warning: {e}");
        }
    }
}

/// Writes `contents` to `results/<name>.csv`, creating the directory.
/// The write is atomic, so a crash never leaves a half-written table.
///
/// # Errors
///
/// Returns a typed [`SimError::Io`] naming the artifact (or the failpoint
/// site, when a chaos plan injected the failure). Callers choose the
/// policy: [`FigureTable::emit`] records and continues, `FailFast`
/// callers propagate.
pub fn write_csv(name: &str, contents: &str) -> Result<(), SimError> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)
        .map_err(|e| SimError::io(format!("bench-table {}", dir.display()), e))?;
    let path = dir.join(format!("{name}.csv"));
    oasis_engine::atomic_write(&path, contents.as_bytes())
        .map_err(|e| SimError::io(format!("bench-table {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_render_and_csv() {
        let mut t = FigureTable::new("Fig X", vec!["a".into(), "b".into()]);
        t.push("MM", vec![1.0, 2.0]);
        t.push("MT", vec![3.0, 4.0]);
        t.push_geomean();
        let txt = t.render();
        assert!(txt.contains("Fig X"));
        assert!(txt.contains("GEOMEAN"));
        let csv = t.to_csv();
        assert!(csv.starts_with("app,a,b\n"));
        assert!(csv.contains("MM,1.000000,2.000000"));
        // Geomean row: sqrt(3) and sqrt(8).
        let gm_line = csv.lines().last().unwrap();
        assert!(gm_line.starts_with("GEOMEAN,1.732"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = FigureTable::new("t", vec!["a".into()]);
        t.push("x", vec![1.0, 2.0]);
    }
}
