//! Evaluation experiments: Figs. 15–19 and 21–25.

use oasis_core::controller::OasisConfig;
use oasis_mem::page::PolicyBits;
use oasis_mgpu::{Placement, Policy, SystemConfig};
use oasis_workloads::{App, WorkloadParams, ALL_APPS};

use crate::runner::{find, run_matrix, Cell, MatrixArgs};
use crate::table::FigureTable;
use crate::Profile;

fn speedup_table(
    title: &str,
    cells: &[Cell],
    apps: &[App],
    names: &[String],
    baseline: &str,
) -> FigureTable {
    let mut t = FigureTable::new(title, names.to_vec());
    for app in apps {
        let base = find(cells, *app, baseline);
        t.push(
            app.abbr(),
            names
                .iter()
                .map(|n| find(cells, *app, n).report.speedup_over(&base.report))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 15: OASIS and OASIS-InMem vs the three uniform policies + Ideal.
pub fn fig15(profile: Profile) -> FigureTable {
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
        Policy::oasis_inmem(),
        Policy::Ideal,
    ];
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies: policies.clone(),
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let cells = run_matrix(&args);
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    speedup_table(
        "Fig. 15: OASIS vs uniform policies (normalized to on-touch)",
        &cells,
        &ALL_APPS,
        &names,
        "on-touch",
    )
}

/// Fig. 16: reset-threshold sensitivity (4 / 8 / 32).
pub fn fig16(profile: Profile) -> FigureTable {
    let mut policies = vec![Policy::OnTouch];
    for threshold in [4u8, 8, 32] {
        policies.push(Policy::Oasis(OasisConfig {
            reset_threshold: threshold,
            ..OasisConfig::default()
        }));
    }
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies,
        params: Box::new(move |a| profile.params(a, 4)),
    };
    // All three OASIS variants share the name "oasis"; rebuild cells with
    // distinct labels.
    let mut cells = run_matrix(&args);
    let labels = ["on-touch", "thr-4", "thr-8", "thr-32"];
    for (i, c) in cells.iter_mut().enumerate() {
        c.policy = labels[i % 4].to_string();
    }
    let names: Vec<String> = labels[1..].iter().map(|s| s.to_string()).collect();
    speedup_table(
        "Fig. 16: OASIS reset-threshold sensitivity (normalized to on-touch)",
        &cells,
        &ALL_APPS,
        &names,
        "on-touch",
    )
}

/// Fig. 17: OASIS at 8 and 16 GPUs, each normalized to its own on-touch
/// baseline (Table III inputs).
pub fn fig17(profile: Profile) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 17: OASIS speedup over on-touch at 8 and 16 GPUs",
        vec!["8-GPU".into(), "16-GPU".into()],
    );
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (ci, gpus) in [8usize, 16].into_iter().enumerate() {
        let args = MatrixArgs {
            config: SystemConfig::with_gpus(gpus),
            apps: ALL_APPS.to_vec(),
            policies: vec![Policy::OnTouch, Policy::oasis()],
            params: Box::new(move |a| profile.params(a, gpus)),
        };
        let cells = run_matrix(&args);
        for app in ALL_APPS {
            let base = find(&cells, app, "on-touch");
            let oasis = find(&cells, app, "oasis");
            columns[ci].push(oasis.report.speedup_over(&base.report));
        }
    }
    for (i, app) in ALL_APPS.iter().enumerate() {
        t.push(app.abbr(), vec![columns[0][i], columns[1][i]]);
    }
    t.push_geomean();
    t
}

/// Fig. 18: 16-GPU input sizes run on the 4-GPU system.
pub fn fig18(profile: Profile) -> FigureTable {
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ];
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies: policies.clone(),
        params: Box::new(move |a| {
            let mut p = profile.params(a, 4);
            // Large-input study: the 16-GPU footprint on 4 GPUs.
            p.footprint_mb = match profile {
                Profile::Full => a.footprint_mb(16),
                Profile::Fast => (a.footprint_mb(16) / 8).max(2),
            };
            p
        }),
    };
    let cells = run_matrix(&args);
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    speedup_table(
        "Fig. 18: large inputs (16-GPU sizes on 4 GPUs), normalized to on-touch",
        &cells,
        &ALL_APPS,
        &names,
        "on-touch",
    )
}

/// Fig. 19: 2 MiB pages (normalized to on-touch with 2 MiB pages).
pub fn fig19(profile: Profile) -> FigureTable {
    let policies = vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ];
    let args = MatrixArgs {
        config: SystemConfig::with_large_pages(),
        apps: ALL_APPS.to_vec(),
        policies: policies.clone(),
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let cells = run_matrix(&args);
    let names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    speedup_table(
        "Fig. 19: 2 MB pages (normalized to on-touch with 2 MB pages)",
        &cells,
        &ALL_APPS,
        &names,
        "on-touch",
    )
}

/// Fig. 21: initial pages striped across GPUs instead of host-resident.
pub fn fig21(profile: Profile) -> FigureTable {
    let args = MatrixArgs {
        config: SystemConfig {
            placement: Placement::Striped,
            ..SystemConfig::default()
        },
        apps: ALL_APPS.to_vec(),
        policies: vec![Policy::OnTouch, Policy::oasis()],
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let cells = run_matrix(&args);
    speedup_table(
        "Fig. 21: striped initial placement, OASIS vs on-touch",
        &cells,
        &ALL_APPS,
        &["oasis".to_string()],
        "on-touch",
    )
}

/// Fig. 22: OASIS speedup over GRIT.
pub fn fig22(profile: Profile) -> FigureTable {
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies: vec![Policy::grit(), Policy::oasis()],
        params: Box::new(move |a| profile.params(a, 4)),
    };
    let cells = run_matrix(&args);
    speedup_table(
        "Fig. 22: OASIS normalized to GRIT",
        &cells,
        &ALL_APPS,
        &["oasis".to_string()],
        "grit",
    )
}

/// Figs. 23 and 24 share one GRIT-vs-OASIS sweep.
fn grit_oasis_cells(profile: Profile) -> Vec<Cell> {
    let args = MatrixArgs {
        config: SystemConfig::default(),
        apps: ALL_APPS.to_vec(),
        policies: vec![Policy::grit(), Policy::oasis()],
        params: Box::new(move |a| profile.params(a, 4)),
    };
    run_matrix(&args)
}

/// Fig. 23: policy mix of L2-TLB-miss requests under GRIT and OASIS.
pub fn fig23(profile: Profile) -> FigureTable {
    let cells = grit_oasis_cells(profile);
    let mut t = FigureTable::new(
        "Fig. 23: page-policy share of L2-TLB-miss requests (percent)",
        vec![
            "grit-ot".into(),
            "grit-ac".into(),
            "grit-dup".into(),
            "oasis-ot".into(),
            "oasis-ac".into(),
            "oasis-dup".into(),
        ],
    );
    t.decimals = 1;
    for app in ALL_APPS {
        let mut row = Vec::new();
        for policy in ["grit", "oasis"] {
            let r = &find(&cells, app, policy).report;
            for bits in [
                PolicyBits::OnTouch,
                PolicyBits::AccessCounter,
                PolicyBits::Duplication,
            ] {
                row.push(r.policy_share(bits) * 100.0);
            }
        }
        t.push(app.abbr(), row);
    }
    t
}

/// Fig. 24: total GPU page faults, OASIS normalized to GRIT.
pub fn fig24(profile: Profile) -> FigureTable {
    let cells = grit_oasis_cells(profile);
    let mut t = FigureTable::new(
        "Fig. 24: GPU page faults, OASIS normalized to GRIT (lower is better)",
        vec!["oasis/grit".into()],
    );
    for app in ALL_APPS {
        let g = find(&cells, app, "grit").report.uvm.total_faults();
        let o = find(&cells, app, "oasis").report.uvm.total_faults();
        t.push(app.abbr(), vec![o as f64 / g.max(1) as f64]);
    }
    t.push_geomean();
    t
}

/// Fig. 25: 150 % memory oversubscription.
pub fn fig25(profile: Profile) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 25: OASIS vs on-touch under 150% memory oversubscription",
        vec!["oasis".into()],
    );
    for app in ALL_APPS {
        let params: WorkloadParams = profile.params(app, 4);
        let config = SystemConfig::default().with_oversubscription(params.footprint_bytes(), 150);
        let args = MatrixArgs {
            config,
            apps: vec![app],
            policies: vec![Policy::OnTouch, Policy::oasis()],
            params: Box::new(move |_| params),
        };
        let cells = run_matrix(&args);
        let base = find(&cells, app, "on-touch");
        let oasis = find(&cells, app, "oasis");
        t.push(app.abbr(), vec![oasis.report.speedup_over(&base.report)]);
    }
    t.push_geomean();
    t
}
