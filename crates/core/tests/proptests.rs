//! Property-based tests for the OASIS structures.

use oasis_core::otable::{OTable, PolicyChoice};
use oasis_core::tracker::{decode, encode};
use oasis_core::inmem::ShadowMap;
use oasis_mem::types::{ObjectId, Va};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Pointer tagging round-trips any 48-bit address and any id width.
    #[test]
    fn tag_round_trip(addr in 0u64..(1u64 << 48), id in 0u16..u16::MAX, bits in 1u32..=15, hw in any::<bool>()) {
        let tagged = encode(Va(addr), ObjectId(id), bits, hw);
        let (got_id, got_hw) = decode(tagged, bits);
        prop_assert_eq!(got_hw, hw);
        prop_assert_eq!(u64::from(got_id), u64::from(id) & ((1 << bits) - 1));
        prop_assert_eq!(tagged.canonical(), Va(addr).canonical());
    }

    /// The O-Table never exceeds capacity and keeps per-object state for
    /// resident entries.
    #[test]
    fn otable_capacity_and_state(ops in proptest::collection::vec((0u16..32, any::<bool>()), 1..300)) {
        let mut t = OTable::new();
        let mut shadow: HashMap<u16, (PolicyChoice, u8)> = HashMap::new();
        for (obj, write) in ops {
            // Mirror a decide_shared-like update.
            if let Some((policy, pf)) = shadow.get(&obj).copied() {
                if t.peek(obj).is_some() {
                    let e = t.lookup_or_insert(obj);
                    prop_assert_eq!(e.policy, policy);
                    prop_assert_eq!(e.pf_count, pf);
                }
            }
            let e = t.lookup_or_insert(obj);
            if e.pf_count == 0 {
                e.policy = PolicyChoice::learn(write);
            }
            e.pf_count = (e.pf_count + 1) % 8;
            shadow.insert(obj, (e.policy, e.pf_count));
            prop_assert!(t.len() <= t.capacity());
        }
    }

    /// Shadow map: lookups return exactly what ranges were set, segment by
    /// segment, for arbitrary non-overlapping object layouts.
    #[test]
    fn shadow_map_matches_layout(sizes in proptest::collection::vec(1u64..200_000, 1..20)) {
        let mut m = ShadowMap::new();
        let mut base = 0x1000_0000u64;
        let mut ranges = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            m.set_range(Va(base), *s, i as u16);
            ranges.push((base, *s, i as u16));
            base += s.div_ceil(4096) * 4096; // next 4K boundary, no overlap
        }
        for (b, s, id) in &ranges {
            prop_assert_eq!(m.lookup(Va(*b)).0, Some(*id));
            prop_assert_eq!(m.lookup(Va(*b + s - 1)).0, Some(*id));
        }
        // A cleared range disappears without touching neighbours.
        if let Some((b, s, _)) = ranges.first().copied() {
            m.clear_range(Va(b), s);
            prop_assert_eq!(m.lookup(Va(b)).0, None);
            if let Some((b2, _, id2)) = ranges.get(1).copied() {
                prop_assert_eq!(m.lookup(Va(b2)).0, Some(id2));
            }
        }
    }
}
