//! Randomized property tests for the OASIS structures, driven by the
//! in-tree deterministic [`SimRng`] (the build environment is offline, so
//! no external property-testing framework is available). Each test sweeps
//! many seeded cases; a failing case index pins the exact input.

use oasis_core::inmem::ShadowMap;
use oasis_core::otable::{OTable, PolicyChoice};
use oasis_core::tracker::{decode, encode};
use oasis_engine::SimRng;
use oasis_mem::types::{ObjectId, Va};
use std::collections::HashMap;

const CASES: u64 = 64;

/// Pointer tagging round-trips any 48-bit address and any id width.
#[test]
fn tag_round_trip() {
    for case in 0..CASES * 4 {
        let mut rng = SimRng::seed_from_u64(0x7A60 + case);
        let addr = rng.gen_range(0..(1u64 << 48));
        let id = rng.gen_range(0..u16::MAX as u64) as u16;
        let bits = rng.gen_range(1..16) as u32;
        let hw = rng.gen_bool_ratio(1, 2);
        let tagged = encode(Va(addr), ObjectId(id), bits, hw);
        let (got_id, got_hw) = decode(tagged, bits);
        assert_eq!(got_hw, hw, "case {case}");
        assert_eq!(
            u64::from(got_id),
            u64::from(id) & ((1 << bits) - 1),
            "case {case}"
        );
        assert_eq!(tagged.canonical(), Va(addr).canonical(), "case {case}");
    }
}

/// The O-Table never exceeds capacity, keeps per-object state for resident
/// entries, and stays LRU-well-formed (the sim-guard invariant) throughout.
#[test]
fn otable_capacity_and_state() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x07AB + case);
        let n = rng.gen_range(1..300) as usize;
        let mut t = OTable::new();
        let mut shadow: HashMap<u16, (PolicyChoice, u8)> = HashMap::new();
        for _ in 0..n {
            let obj = rng.gen_range(0..32) as u16;
            let write = rng.gen_bool_ratio(1, 2);
            // Mirror a decide_shared-like update.
            if let Some((policy, pf)) = shadow.get(&obj).copied() {
                if t.peek(obj).is_some() {
                    let e = t.lookup_or_insert(obj);
                    assert_eq!(e.policy, policy, "case {case}");
                    assert_eq!(e.pf_count, pf, "case {case}");
                }
            }
            let e = t.lookup_or_insert(obj);
            if e.pf_count == 0 {
                e.policy = PolicyChoice::learn(write);
            }
            e.pf_count = (e.pf_count + 1) % 8;
            shadow.insert(obj, (e.policy, e.pf_count));
            assert!(t.len() <= t.capacity(), "case {case}");
            t.check_invariants().expect("LRU well-formed");
        }
    }
}

/// Shadow map: lookups return exactly what ranges were set, segment by
/// segment, for arbitrary non-overlapping object layouts.
#[test]
fn shadow_map_matches_layout() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x5AD0 + case);
        let n = rng.gen_range(1..20) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..200_000)).collect();
        let mut m = ShadowMap::new();
        let mut base = 0x1000_0000u64;
        let mut ranges = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            m.set_range(Va(base), *s, i as u16);
            ranges.push((base, *s, i as u16));
            base += s.div_ceil(4096) * 4096; // next 4K boundary, no overlap
        }
        for (b, s, id) in &ranges {
            assert_eq!(m.lookup(Va(*b)).0, Some(*id), "case {case}");
            assert_eq!(m.lookup(Va(*b + s - 1)).0, Some(*id), "case {case}");
        }
        // A cleared range disappears without touching neighbours.
        if let Some((b, s, _)) = ranges.first().copied() {
            m.clear_range(Va(b), s);
            assert_eq!(m.lookup(Va(b)).0, None, "case {case}");
            if let Some((b2, _, id2)) = ranges.get(1).copied() {
                assert_eq!(m.lookup(Va(b2)).0, Some(id2), "case {case}");
            }
        }
    }
}
