//! The Object Tracker: pointer tagging at allocation time.
//!
//! OASIS identifies the object behind every memory access by encoding the
//! object index (`Obj_ID`) and a configuration bit into the unused upper
//! bits of the pointer returned by the managed allocator (Figs. 9–10):
//!
//! ```text
//!  63        49   48   47                                   0
//! | Object Index | Cfg |        Object Virtual Address       |
//!    (4 bits)     (1)               (48 bits)
//! ```
//!
//! The configuration bit distinguishes hardware OASIS (`1`, Obj_ID is in
//! the pointer) from OASIS-InMem (`0`, Obj_ID comes from the shadow map).
//! Dereferencing tagged pointers is safe thanks to Top-Byte-Ignore-style
//! hardware (ARM TBI, Intel LAM, AMD UAI), which the simulator mirrors by
//! masking tags off before translation ([`Va::canonical`]).
//!
//! [`Va::canonical`]: oasis_mem::types::Va::canonical

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_mem::types::{ObjectId, Va, ADDR_BITS, ADDR_MASK};

/// Default number of Obj_ID bits in the pointer (the paper's choice; most
/// evaluated applications have fewer than 2^4 live objects).
pub const DEFAULT_ID_BITS: u32 = 4;

/// Maximum number of Obj_ID bits that fit above the config bit in a 64-bit
/// pointer (Section V-B).
pub const MAX_ID_BITS: u32 = 15;

/// Encodes `obj`'s low `id_bits` and the configuration bit into the upper
/// bits of `ptr`, exactly as the wrapper around `cudaMallocManaged` does in
/// Fig. 10.
///
/// # Panics
///
/// Panics if `id_bits` exceeds [`MAX_ID_BITS`].
pub fn encode(ptr: Va, obj: ObjectId, id_bits: u32, hardware: bool) -> Va {
    assert!(id_bits <= MAX_ID_BITS, "at most {MAX_ID_BITS} Obj_ID bits");
    let id_mask = (1u64 << id_bits) - 1;
    let tag = ((obj.0 as u64 & id_mask) << 1) | u64::from(hardware);
    // ptr_temp = ptr & MASK; ptr = ptr_temp | (tag << ADDR_BITS)
    Va((ptr.0 & ADDR_MASK) | (tag << ADDR_BITS))
}

/// Decodes `(raw Obj_ID, config bit)` from a tagged pointer, assuming
/// `id_bits` of Obj_ID.
pub fn decode(ptr: Va, id_bits: u32) -> (u16, bool) {
    let tag = ptr.0 >> ADDR_BITS;
    let hardware = tag & 1 == 1;
    let id = (tag >> 1) & ((1 << id_bits) - 1);
    (id as u16, hardware)
}

/// The runtime wrapper around the managed allocation APIs: assigns object
/// IDs in allocation order and tags returned pointers.
///
/// # Example
///
/// ```
/// use oasis_core::tracker::ObjectTracker;
/// use oasis_mem::types::Va;
///
/// let mut tracker = ObjectTracker::hardware();
/// let tagged = tracker.on_alloc(Va(0x1000_0000));
/// assert_eq!(tagged.canonical(), Va(0x1000_0000));
/// assert_eq!(tracker.object_of(tagged), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct ObjectTracker {
    id_bits: u32,
    hardware: bool,
    next_id: u16,
}

impl ObjectTracker {
    /// Tracker for hardware OASIS (config bit 1, Obj_ID in the pointer).
    pub fn hardware() -> Self {
        ObjectTracker {
            id_bits: DEFAULT_ID_BITS,
            hardware: true,
            next_id: 0,
        }
    }

    /// Tracker for OASIS-InMem (config bit 0, Obj_ID via shadow map).
    pub fn in_mem() -> Self {
        ObjectTracker {
            id_bits: DEFAULT_ID_BITS,
            hardware: false,
            next_id: 0,
        }
    }

    /// Overrides the number of Obj_ID bits (up to [`MAX_ID_BITS`]).
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds [`MAX_ID_BITS`].
    pub fn with_id_bits(mut self, bits: u32) -> Self {
        assert!(bits <= MAX_ID_BITS, "at most {MAX_ID_BITS} Obj_ID bits");
        self.id_bits = bits;
        self
    }

    /// Number of Obj_ID bits in use.
    pub fn id_bits(&self) -> u32 {
        self.id_bits
    }

    /// Whether pointers carry the Obj_ID (hardware OASIS) or only the
    /// config bit (InMem).
    pub fn is_hardware(&self) -> bool {
        self.hardware
    }

    /// Called when a new object is allocated at `base`; returns the tagged
    /// pointer handed back to the application. IDs are assigned in
    /// allocation order ("the first allocated object is assigned 0000, the
    /// second 0001, and so forth") and wrap modulo `2^id_bits` in the
    /// pointer encoding.
    pub fn on_alloc(&mut self, base: Va) -> Va {
        let id = ObjectId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        if self.hardware {
            encode(base, id, self.id_bits, true)
        } else {
            encode(base, ObjectId(0), 0, false)
        }
    }

    /// Tags an *existing* object id onto a pointer (used when replaying
    /// allocation traces where ids are pre-assigned).
    pub fn tag(&self, obj: ObjectId, ptr: Va) -> Va {
        if self.hardware {
            encode(ptr, obj, self.id_bits, true)
        } else {
            encode(ptr, ObjectId(0), 0, false)
        }
    }

    /// The raw Obj_ID carried by `ptr`, or `None` for InMem-tagged pointers
    /// (whose id must come from the shadow map).
    pub fn object_of(&self, ptr: Va) -> Option<u16> {
        let (id, hardware) = decode(ptr, self.id_bits);
        hardware.then_some(id)
    }
}

impl Snapshot for ObjectTracker {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u32(self.id_bits);
        w.bool(self.hardware);
        w.u16(self.next_id);
    }
}

impl Restore for ObjectTracker {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        // id_bits and mode are configuration; a mismatch means the
        // checkpoint was taken under a different policy setup.
        let id_bits = r.u32()?;
        if id_bits != self.id_bits {
            return Err(r.malformed(format!(
                "checkpoint tracker uses {id_bits} Obj_ID bits, this run uses {}",
                self.id_bits
            )));
        }
        let hardware = r.bool()?;
        if hardware != self.hardware {
            return Err(r.malformed(format!(
                "checkpoint tracker hardware={hardware}, this run hardware={}",
                self.hardware
            )));
        }
        self.next_id = r.u16()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let ptr = Va(0x0000_7fff_dead_b000);
        for id in [0u16, 1, 7, 15] {
            let tagged = encode(ptr, ObjectId(id), 4, true);
            assert_eq!(decode(tagged, 4), (id, true));
            assert_eq!(tagged.canonical(), ptr.canonical());
        }
    }

    #[test]
    fn config_bit_distinguishes_modes() {
        let ptr = Va(0x1000);
        let hw = encode(ptr, ObjectId(3), 4, true);
        let sw = encode(ptr, ObjectId(0), 0, false);
        assert!(decode(hw, 4).1);
        assert!(!decode(sw, 4).1);
    }

    #[test]
    fn id_wraps_at_bit_width() {
        let ptr = Va(0x1000);
        let tagged = encode(ptr, ObjectId(16), 4, true); // 16 mod 2^4 = 0
        assert_eq!(decode(tagged, 4).0, 0);
        let tagged = encode(ptr, ObjectId(17), 4, true);
        assert_eq!(decode(tagged, 4).0, 1);
    }

    #[test]
    fn encode_clears_preexisting_tag() {
        let dirty = Va(0xFFFF_0000_0000_1000);
        let tagged = encode(dirty, ObjectId(2), 4, true);
        assert_eq!(decode(tagged, 4), (2, true));
        assert_eq!(tagged.canonical(), Va(0x1000));
    }

    #[test]
    fn wide_ids_up_to_15_bits() {
        let ptr = Va(0x2000);
        let tagged = encode(ptr, ObjectId(0x7ABC & 0x7FFF), 15, true);
        assert_eq!(decode(tagged, 15).0, 0x7ABC);
    }

    #[test]
    #[should_panic(expected = "at most 15")]
    fn sixteen_bits_rejected() {
        encode(Va(0), ObjectId(0), 16, true);
    }

    #[test]
    fn tracker_assigns_ids_in_allocation_order() {
        let mut t = ObjectTracker::hardware();
        let a = t.on_alloc(Va(0x1000));
        let b = t.on_alloc(Va(0x2000));
        let c = t.on_alloc(Va(0x3000));
        assert_eq!(t.object_of(a), Some(0));
        assert_eq!(t.object_of(b), Some(1));
        assert_eq!(t.object_of(c), Some(2));
    }

    #[test]
    fn in_mem_tracker_leaves_upper_bits_unused() {
        let mut t = ObjectTracker::in_mem();
        let p = t.on_alloc(Va(0x1234_5000));
        assert_eq!(p.0 >> 49, 0, "only the config bit may be set");
        assert_eq!(t.object_of(p), None);
        assert!(!t.is_hardware());
    }

    #[test]
    fn tracker_snapshot_resumes_id_assignment() {
        let mut t = ObjectTracker::hardware();
        t.on_alloc(Va(0x1000));
        t.on_alloc(Va(0x2000));
        let mut w = ByteWriter::new();
        t.snapshot(&mut w);

        let mut fresh = ObjectTracker::hardware();
        let buf = w.into_vec();
        let mut r = ByteReader::new("tracker", &buf);
        fresh.restore(&mut r).expect("valid tracker state");
        let next = fresh.on_alloc(Va(0x3000));
        assert_eq!(fresh.object_of(next), Some(2));

        // A checkpoint from a different tracker mode is rejected.
        let mut inmem = ObjectTracker::in_mem();
        let mut r = ByteReader::new("tracker", &buf);
        assert!(inmem.restore(&mut r).is_err());
    }

    #[test]
    fn tracker_id_bits_configurable() {
        let t = ObjectTracker::hardware().with_id_bits(8);
        assert_eq!(t.id_bits(), 8);
        let tagged = t.tag(ObjectId(200), Va(0x1000));
        assert_eq!(decode(tagged, 8).0, 200);
    }
}
