//! The Object Policy Controller (OP-Controller, Section V-D).
//!
//! Resolution flow for every page fault:
//!
//! 1. **Host page table filter** — the centralized table's physical
//!    location for the page classifies it: data on the host ⇒ *private*
//!    first touch ⇒ resolve with default on-touch migration, never touching
//!    the O-Table; data on another GPU ⇒ *shared* ⇒ consult the O-Table.
//!    Under oversubscription, a host-resident page whose recorded policy
//!    bits differ from on-touch is a previously-shared evicted page and is
//!    treated as shared (Section VI-D).
//! 2. **O-Table** — a PF count of zero means the policy must be (re)learned
//!    from this fault's W bit: read ⇒ duplication, write ⇒ access-counter
//!    migration. Otherwise the recorded policy applies. The PF count
//!    increments on every shared fault and resets to zero at the reset
//!    threshold (implicit-phase self-correction) and at every kernel launch
//!    (explicit phases).
//!
//! The resulting state machine is exactly Fig. 13(b): objects start
//! on-touch, move to duplication or access-counter on the first shared
//! fault, oscillate between those two as relearning dictates, and never
//! return to on-touch.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::SimResult;
use oasis_engine::{Duration, MetricsRegistry};
use oasis_mem::page::PolicyBits;
use oasis_mem::types::{DeviceId, ObjectId, Va};
use oasis_uvm::driver::MemState;
use oasis_uvm::fault::{FaultType, PageFault};
use oasis_uvm::policy::{Decision, PolicyEngine, Resolution};

use crate::otable::{OTable, PolicyChoice};
use crate::tracker::{decode, DEFAULT_ID_BITS};

/// Tunable parameters of the OP-Controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OasisConfig {
    /// Shared page faults per object before the PF count resets and the
    /// policy is relearned (default 8; Fig. 16 sweeps 4/8/32).
    pub reset_threshold: u8,
    /// Obj_ID bits encoded in pointers.
    pub id_bits: u32,
    /// O-Table entries (default 16).
    pub otable_capacity: usize,
    /// Reset PF counts at kernel launches (explicit-phase detection;
    /// disable only for the ablation study).
    pub explicit_resets: bool,
    /// Use the host page table as the private/shared filter (Section V-D);
    /// when disabled every fault consults the O-Table (ablation).
    pub host_pt_filter: bool,
}

impl Default for OasisConfig {
    fn default() -> Self {
        OasisConfig {
            reset_threshold: 8,
            id_bits: DEFAULT_ID_BITS,
            otable_capacity: 16,
            explicit_resets: true,
            host_pt_filter: true,
        }
    }
}

impl OasisConfig {
    /// Ablation: disable the implicit-phase self-correction (the PF count
    /// never reaches the reset threshold).
    pub fn without_self_correction(mut self) -> Self {
        self.reset_threshold = u8::MAX;
        self
    }

    /// Ablation: disable the explicit-phase reset at kernel launches.
    pub fn without_explicit_resets(mut self) -> Self {
        self.explicit_resets = false;
        self
    }

    /// Ablation: disable the host-page-table private/shared filter.
    pub fn without_host_pt_filter(mut self) -> Self {
        self.host_pt_filter = false;
        self
    }
}

/// Counters describing the controller's behaviour (not hardware state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OasisStats {
    /// Faults classified private and resolved on-touch via the host-PT
    /// filter (never reached the O-Table).
    pub private_faults: u64,
    /// Faults classified shared and routed to the O-Table.
    pub shared_faults: u64,
    /// Times a policy was (re)learned from a fault's W bit.
    pub policy_learns: u64,
    /// PF-count resets triggered by reaching the reset threshold
    /// (implicit-phase self-correction).
    pub implicit_resets: u64,
    /// Kernel-launch resets (explicit phases).
    pub explicit_resets: u64,
    /// Duplication policies demoted because the object's shared traffic
    /// crossed a permanently dead link (hardware-fault degradation).
    pub link_demotions: u64,
}

/// The policy logic shared by hardware OASIS and OASIS-InMem.
#[derive(Debug, Clone)]
pub(crate) struct ControllerCore {
    pub(crate) config: OasisConfig,
    pub(crate) otable: OTable,
    pub(crate) stats: OasisStats,
}

impl ControllerCore {
    pub(crate) fn new(config: OasisConfig) -> Self {
        ControllerCore {
            otable: OTable::with_capacity(config.otable_capacity),
            config,
            stats: OasisStats::default(),
        }
    }

    /// The host-page-table private/shared filter.
    pub(crate) fn is_shared(&self, fault: &PageFault, state: &MemState) -> bool {
        if fault.fault_type == FaultType::Protection {
            // Protection faults only arise on duplicated (hence shared)
            // pages.
            return true;
        }
        let entry = match state.host_table.get(fault.vpn) {
            Some(e) => e,
            None => return false,
        };
        match entry.owner {
            DeviceId::Gpu(g) => g != fault.gpu,
            // Host-resident data is a private first touch — unless its
            // policy bits reveal an evicted shared page (Section VI-D) or
            // duplicates exist with the host as master.
            DeviceId::Host => entry.policy != PolicyBits::OnTouch || entry.copy_mask != 0,
        }
    }

    /// The O-Table learn-or-apply step for a shared fault on object `tag`.
    pub(crate) fn decide_shared(
        &mut self,
        tag: u16,
        is_write: bool,
        is_protection: bool,
    ) -> Resolution {
        self.stats.shared_faults += 1;
        let threshold = self.config.reset_threshold;
        let entry = self.otable.lookup_or_insert(tag);
        if entry.pf_count == 0 {
            entry.policy = PolicyChoice::learn(is_write);
            self.stats.policy_learns += 1;
        } else if is_protection && entry.policy == PolicyChoice::Duplication {
            // Fig. 13(b) transition (4): write-protection faults on a
            // duplicated object flip it to access-counter migration
            // directly — waiting out the reset threshold would keep paying
            // write-collapses.
            entry.policy = PolicyChoice::AccessCounter;
            self.stats.policy_learns += 1;
        }
        entry.pf_count += 1;
        let policy = entry.policy;
        if entry.pf_count >= threshold {
            entry.pf_count = 0;
            self.stats.implicit_resets += 1;
        }
        match policy {
            PolicyChoice::Duplication => Resolution::Duplicate,
            PolicyChoice::AccessCounter => Resolution::RemoteMap,
        }
    }

    /// Fig. 13(b)'s protection-fault transition reused for hardware
    /// degradation: shared traffic for `tag` crossed a permanently dead
    /// link, so duplication (which keeps re-fetching over the broken path)
    /// is no longer a good bet. Demote the object to access-counter
    /// migration and restart its learning window.
    pub(crate) fn on_link_degraded(&mut self, tag: u16) {
        let entry = self.otable.lookup_or_insert(tag);
        if entry.policy == PolicyChoice::Duplication {
            entry.policy = PolicyChoice::AccessCounter;
            // Keep the PF count nonzero so the next fault *applies* the
            // demoted policy instead of relearning duplication from its
            // R/W bit (same shape as the protection-fault flip above).
            entry.pf_count = entry.pf_count.max(1);
            self.stats.policy_learns += 1;
            self.stats.link_demotions += 1;
        }
    }

    pub(crate) fn on_kernel_launch(&mut self) {
        if !self.config.explicit_resets {
            return;
        }
        self.otable.reset_all_pf_counts();
        self.stats.explicit_resets += 1;
    }

    /// Serializes the learned state (O-Table) and behaviour counters.
    /// Configuration is not written: it comes from construction, and the
    /// O-Table restore rejects capacity mismatches.
    pub(crate) fn snapshot_state(&self, w: &mut ByteWriter) {
        self.otable.snapshot(w);
        for v in [
            self.stats.private_faults,
            self.stats.shared_faults,
            self.stats.policy_learns,
            self.stats.implicit_resets,
            self.stats.explicit_resets,
            self.stats.link_demotions,
        ] {
            w.u64(v);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.otable.restore(r)?;
        for field in [
            &mut self.stats.private_faults,
            &mut self.stats.shared_faults,
            &mut self.stats.policy_learns,
            &mut self.stats.implicit_resets,
            &mut self.stats.explicit_resets,
            &mut self.stats.link_demotions,
        ] {
            *field = r.u64()?;
        }
        Ok(())
    }
}

/// Hardware OASIS: Obj_ID decoded from the pointer tag, O-Table on chip
/// (zero metadata latency).
#[derive(Debug, Clone)]
pub struct OasisController {
    core: ControllerCore,
}

impl OasisController {
    /// Creates a controller with the paper's defaults.
    pub fn new() -> Self {
        Self::with_config(OasisConfig::default())
    }

    /// Creates a controller with explicit parameters.
    pub fn with_config(config: OasisConfig) -> Self {
        OasisController {
            core: ControllerCore::new(config),
        }
    }

    /// Behaviour counters.
    pub fn stats(&self) -> OasisStats {
        self.core.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> OasisConfig {
        self.core.config
    }

    /// Read-only access to the O-Table (tests, ablations).
    pub fn otable(&self) -> &OTable {
        &self.core.otable
    }

    fn tag_of(&self, va: Va) -> u16 {
        decode(va, self.core.config.id_bits).0
    }
}

impl Default for OasisController {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyEngine for OasisController {
    fn name(&self) -> &str {
        "oasis"
    }

    fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision {
        if self.core.config.host_pt_filter && !self.core.is_shared(fault, state) {
            self.core.stats.private_faults += 1;
            return Decision::free(Resolution::Migrate);
        }
        let tag = self.tag_of(fault.va);
        let resolution = self.core.decide_shared(
            tag,
            fault.is_write(),
            fault.fault_type == FaultType::Protection,
        );
        Decision {
            resolution,
            // The O-Table is a 24-byte on-chip structure; its access
            // latency is negligible (Section V-E).
            metadata_latency: Duration::ZERO,
        }
    }

    fn on_kernel_launch(&mut self) {
        self.core.on_kernel_launch();
    }

    fn on_link_degraded(&mut self, va: Va) {
        let tag = self.tag_of(va);
        self.core.on_link_degraded(tag);
    }

    fn on_alloc(&mut self, obj: ObjectId, _base: Va, _bytes: u64) {
        let mask = (1u32 << self.core.config.id_bits) - 1;
        self.core.otable.init(obj.0 & mask as u16);
    }

    fn on_free(&mut self, obj: ObjectId) {
        let mask = (1u32 << self.core.config.id_bits) - 1;
        self.core.otable.remove(obj.0 & mask as u16);
    }

    fn check_invariants(&self) -> SimResult<()> {
        self.core.otable.check_invariants()
    }

    fn snapshot_state(&self, w: &mut ByteWriter) {
        self.core.snapshot_state(w);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.core.restore_state(r)
    }

    fn publish_metrics(&self, m: &mut MetricsRegistry) {
        let s = self.core.stats;
        m.set("otable.relearn", s.policy_learns);
        m.set("otable.implicit_reset", s.implicit_resets);
        m.set("otable.explicit_reset", s.explicit_resets);
        m.set("oasis.private_faults", s.private_faults);
        m.set("oasis.shared_faults", s.shared_faults);
        m.set("oasis.link_demotions", s.link_demotions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::encode;
    use oasis_mem::page::HostEntry;
    use oasis_mem::types::{AccessKind, GpuId, PageSize, Vpn};

    fn state_with(owner: DeviceId, vpn: Vpn) -> MemState {
        let mut s = MemState::new(4, PageSize::Small4K, None);
        s.host_table
            .register(vpn, HostEntry::new_at(owner))
            .expect("fresh page");
        s
    }

    fn tagged(obj: u16) -> Va {
        encode(Va(0x1000_0000), ObjectId(obj), 4, true)
    }

    fn far(gpu: u8, obj: u16, vpn: u64, kind: AccessKind) -> PageFault {
        PageFault::far(GpuId(gpu), tagged(obj), Vpn(vpn), kind)
    }

    #[test]
    fn host_resident_pages_are_private_on_touch() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Host, Vpn(5));
        let d = c.resolve(&far(0, 1, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(c.stats().private_faults, 1);
        assert_eq!(c.stats().shared_faults, 0);
        // The O-Table was not consulted.
        assert!(c.otable().peek(1).is_none());
    }

    #[test]
    fn shared_read_learns_duplication() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        let d = c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(
            c.otable().peek(2).unwrap().policy,
            PolicyChoice::Duplication
        );
        assert_eq!(c.stats().policy_learns, 1);
    }

    #[test]
    fn shared_write_learns_access_counter() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        let d = c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::RemoteMap);
        assert_eq!(
            c.otable().peek(2).unwrap().policy,
            PolicyChoice::AccessCounter
        );
    }

    #[test]
    fn subsequent_faults_apply_recorded_policy_regardless_of_kind() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        // Learn duplication from a read...
        c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        // ...then a write fault still *applies* duplication (PF count != 0).
        let d = c.resolve(&far(2, 2, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(c.stats().policy_learns, 1);
    }

    #[test]
    fn reset_threshold_triggers_relearning() {
        let mut c = OasisController::with_config(OasisConfig {
            reset_threshold: 4,
            ..OasisConfig::default()
        });
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        // 4 read faults: learn duplication, count 1..4, reset at 4.
        for _ in 0..4 {
            assert_eq!(
                c.resolve(&far(0, 2, 5, AccessKind::Read), &s).resolution,
                Resolution::Duplicate
            );
        }
        assert_eq!(c.stats().implicit_resets, 1);
        // Next fault is a write: relearn to access-counter.
        let d = c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::RemoteMap);
        assert_eq!(c.stats().policy_learns, 2);
    }

    #[test]
    fn kernel_launch_resets_pf_counts() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(c.otable().peek(2).unwrap().pf_count, 1);
        c.on_kernel_launch();
        assert_eq!(c.otable().peek(2).unwrap().pf_count, 0);
        assert_eq!(c.stats().explicit_resets, 1);
        // Next fault relearns from its own W bit.
        let d = c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::RemoteMap);
    }

    #[test]
    fn protection_faults_are_always_shared() {
        let mut c = OasisController::new();
        // Even with the data host-resident (e.g. a duplicated master on
        // host), a protection fault routes to the O-Table.
        let mut s = state_with(DeviceId::Host, Vpn(5));
        s.host_table.get_mut(Vpn(5)).unwrap().copy_mask = 0b1;
        let pf = PageFault::protection(GpuId(0), tagged(2), Vpn(5));
        let d = c.resolve(&pf, &s);
        // First shared fault, W=1: learn access-counter.
        assert_eq!(d.resolution, Resolution::RemoteMap);
        assert_eq!(c.stats().shared_faults, 1);
    }

    #[test]
    fn evicted_shared_pages_keep_shared_treatment() {
        // Section VI-D: host-resident page with non-default policy bits.
        let mut c = OasisController::new();
        let mut s = state_with(DeviceId::Host, Vpn(5));
        s.host_table.get_mut(Vpn(5)).unwrap().policy = PolicyBits::Duplication;
        let d = c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(c.stats().shared_faults, 1);
        assert_eq!(c.stats().private_faults, 0);
    }

    #[test]
    fn refault_on_own_page_is_private() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(0)), Vpn(5));
        let d = c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(c.stats().private_faults, 1);
    }

    #[test]
    fn alloc_initializes_and_free_removes_entries() {
        let mut c = OasisController::new();
        c.on_alloc(ObjectId(3), Va(0x1000), 4096);
        assert!(c.otable().peek(3).is_some());
        c.on_free(ObjectId(3));
        assert!(c.otable().peek(3).is_none());
        // Obj_IDs beyond 4 bits alias into the table.
        c.on_alloc(ObjectId(19), Va(0x2000), 4096);
        assert!(c.otable().peek(3).is_some());
    }

    #[test]
    fn objects_policies_are_independent() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        c.resolve(&far(0, 1, 5, AccessKind::Read), &s);
        c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        assert_eq!(
            c.otable().peek(1).unwrap().policy,
            PolicyChoice::Duplication
        );
        assert_eq!(
            c.otable().peek(2).unwrap().policy,
            PolicyChoice::AccessCounter
        );
    }

    #[test]
    fn ablation_no_explicit_resets_keeps_pf_counts() {
        let mut c = OasisController::with_config(OasisConfig::default().without_explicit_resets());
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        c.on_kernel_launch();
        assert_eq!(c.otable().peek(2).unwrap().pf_count, 1);
        assert_eq!(c.stats().explicit_resets, 0);
    }

    #[test]
    fn ablation_no_self_correction_never_relearns() {
        let mut c = OasisController::with_config(OasisConfig::default().without_self_correction());
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        for _ in 0..40 {
            // Far write faults while the recorded policy is duplication:
            // without resets the policy stays duplication forever.
            let d = c.resolve(&far(2, 2, 5, AccessKind::Write), &s);
            assert_eq!(d.resolution, Resolution::Duplicate);
        }
        assert_eq!(c.stats().implicit_resets, 0);
        assert_eq!(c.stats().policy_learns, 1);
    }

    #[test]
    fn ablation_no_host_pt_filter_routes_everything_to_otable() {
        let mut c = OasisController::with_config(OasisConfig::default().without_host_pt_filter());
        let s = state_with(DeviceId::Host, Vpn(5));
        // Host-resident first touch would normally be private on-touch;
        // without the filter it is learned in the O-Table.
        let d = c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(c.stats().private_faults, 0);
        assert_eq!(c.stats().shared_faults, 1);
    }

    #[test]
    fn snapshot_restores_learned_policies_and_stats() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        c.resolve(&far(0, 1, 5, AccessKind::Read), &s);
        c.resolve(&far(0, 2, 5, AccessKind::Write), &s);
        c.on_kernel_launch();
        let mut w = ByteWriter::new();
        c.snapshot_state(&mut w);
        let buf = w.into_vec();

        let mut fresh = OasisController::new();
        let mut r = ByteReader::new("policy", &buf);
        fresh.restore_state(&mut r).expect("valid policy state");
        assert!(r.is_empty(), "payload fully consumed");
        assert_eq!(fresh.stats(), c.stats());
        assert_eq!(
            fresh.otable().peek(1).unwrap().policy,
            PolicyChoice::Duplication
        );
        assert_eq!(
            fresh.otable().peek(2).unwrap().policy,
            PolicyChoice::AccessCounter
        );
        // The restored controller keeps deciding identically.
        let a = c.resolve(&far(3, 1, 5, AccessKind::Write), &s);
        let b = fresh.resolve(&far(3, 1, 5, AccessKind::Write), &s);
        assert_eq!(a, b);
    }

    #[test]
    fn link_degradation_demotes_duplication_to_access_counter() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        // Learn duplication from a shared read.
        c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(
            c.otable().peek(2).unwrap().policy,
            PolicyChoice::Duplication
        );
        // The driver reports the object's traffic crossing a dead link.
        c.on_link_degraded(tagged(2));
        let e = c.otable().peek(2).unwrap();
        assert_eq!(e.policy, PolicyChoice::AccessCounter);
        assert!(e.pf_count > 0, "next fault applies, not relearns");
        assert_eq!(c.stats().link_demotions, 1);
        assert_eq!(c.stats().policy_learns, 2);
        // Later shared faults apply the demoted policy.
        let d = c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::RemoteMap);
        // Re-notifying an already-demoted object is a no-op.
        c.on_link_degraded(tagged(2));
        assert_eq!(c.stats().link_demotions, 1);
    }

    #[test]
    fn metadata_latency_is_zero_for_on_chip_otable() {
        let mut c = OasisController::new();
        let s = state_with(DeviceId::Gpu(GpuId(1)), Vpn(5));
        let d = c.resolve(&far(0, 2, 5, AccessKind::Read), &s);
        assert_eq!(d.metadata_latency, Duration::ZERO);
        assert_eq!(c.name(), "oasis");
    }
}
