//! OASIS-InMem: the software-only, scalable alternative (Section V-F).
//!
//! When objects outnumber the encodable pointer tags, or the upper pointer
//! bits are reserved for other uses (MTE, implicit memory tagging), the
//! configuration bit is set to 0 and the Obj_ID is retrieved from a
//! **two-level shadow map** in system memory: the first level is (in the
//! paper) a 128 MB array of 2^24 pointers, each addressing a dynamically
//! allocated second-level table of 2^12 N-bit entries, one per 4 KiB of
//! virtual memory. The O-Table also moves to system memory
//! (O-Table-InMem, `(4+N) × #Obj` bits).
//!
//! Both structures are hot in the host CPU's otherwise-underutilized LLC,
//! so lookups usually cost an LLC hit; the first touch of a second-level
//! table or O-Table entry pays a memory access. This module models exactly
//! that cost structure — the policy logic itself is shared with the
//! hardware controller.

use std::collections::{HashMap, HashSet};

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError};
use oasis_engine::error::SimResult;
use oasis_engine::{Duration, MetricsRegistry};
use oasis_mem::types::{ObjectId, Va};
use oasis_uvm::driver::MemState;
use oasis_uvm::fault::PageFault;
use oasis_uvm::policy::{Decision, PolicyEngine, Resolution};

use crate::controller::{ControllerCore, OasisConfig, OasisStats};

/// log2 of entries per second-level shadow-map table.
const L2_BITS: u32 = 12;
/// Entries per second-level table (each covers 4 KiB of VA space).
const L2_ENTRIES: usize = 1 << L2_BITS;
/// Bytes of VA covered by one shadow-map entry (the allocation unit M).
const ENTRY_COVER: u64 = 4096;
/// Sentinel for "no object mapped here".
const NO_OBJ: u16 = u16::MAX;

/// The two-level shadow map assigning an N-bit Obj_ID to every 4 KiB
/// segment of allocated virtual memory.
///
/// The paper's first level is a flat 2^24-slot pointer array (128 MB);
/// this model allocates only its populated slots, but reports the paper's
/// memory accounting via [`ShadowMap::modelled_bytes`].
#[derive(Debug, Clone, Default)]
pub struct ShadowMap {
    l1: HashMap<u64, Box<[u16; L2_ENTRIES]>>,
}

impl ShadowMap {
    /// Creates an empty shadow map.
    pub fn new() -> Self {
        Self::default()
    }

    fn indices(va: Va) -> (u64, usize) {
        let seg = va.canonical().0 / ENTRY_COVER;
        (seg >> L2_BITS, (seg & (L2_ENTRIES as u64 - 1)) as usize)
    }

    /// Writes `obj` into every entry covering `[base, base + bytes)`.
    pub fn set_range(&mut self, base: Va, bytes: u64, obj: u16) {
        assert_ne!(obj, NO_OBJ, "obj id {NO_OBJ} is reserved");
        let start = base.canonical().0 / ENTRY_COVER;
        let end = (base.canonical().0 + bytes.max(1) - 1) / ENTRY_COVER;
        for seg in start..=end {
            let (l1, l2) = (seg >> L2_BITS, (seg & (L2_ENTRIES as u64 - 1)) as usize);
            self.l1
                .entry(l1)
                .or_insert_with(|| Box::new([NO_OBJ; L2_ENTRIES]))[l2] = obj;
        }
    }

    /// Clears every entry covering `[base, base + bytes)` (object freed).
    pub fn clear_range(&mut self, base: Va, bytes: u64) {
        let start = base.canonical().0 / ENTRY_COVER;
        let end = (base.canonical().0 + bytes.max(1) - 1) / ENTRY_COVER;
        for seg in start..=end {
            let (l1, l2) = (seg >> L2_BITS, (seg & (L2_ENTRIES as u64 - 1)) as usize);
            if let Some(t) = self.l1.get_mut(&l1) {
                t[l2] = NO_OBJ;
            }
        }
    }

    /// The Obj_ID covering `va`, if any. Also reports which first-level
    /// slot was traversed (for the LLC warmth model).
    pub fn lookup(&self, va: Va) -> (Option<u16>, u64) {
        let (l1, l2) = Self::indices(va);
        let id = self.l1.get(&l1).map(|t| t[l2]).filter(|&id| id != NO_OBJ);
        (id, l1)
    }

    /// Number of live second-level tables.
    pub fn l2_tables(&self) -> usize {
        self.l1.len()
    }

    /// Memory footprint per the paper's accounting: 128 MB first level +
    /// `2^12 × 2 B` per second-level table.
    pub fn modelled_bytes(&self) -> u64 {
        128 * 1024 * 1024 + self.l1.len() as u64 * (L2_ENTRIES as u64) * 2
    }
}

/// Latency model for in-memory metadata accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InMemCosts {
    /// Host LLC hit (the common case once structures are warm).
    pub llc_hit: Duration,
    /// DRAM access for the first touch of a line.
    pub memory: Duration,
}

impl Default for InMemCosts {
    fn default() -> Self {
        InMemCosts {
            llc_hit: Duration::from_ns(30),
            memory: Duration::from_ns(80),
        }
    }
}

/// OASIS-InMem: identical policy logic to [`OasisController`], with the
/// Obj_ID sourced from the shadow map and metadata latency charged per
/// fault.
///
/// [`OasisController`]: crate::controller::OasisController
#[derive(Debug, Clone)]
pub struct OasisInMem {
    core: ControllerCore,
    shadow: ShadowMap,
    /// Allocation record needed to clear shadow entries on free.
    ranges: HashMap<u16, (Va, u64)>,
    costs: InMemCosts,
    warm_l2: HashSet<u64>,
    warm_entries: HashSet<u16>,
    shadow_lookups: u64,
    shadow_cold: u64,
}

impl OasisInMem {
    /// Creates an InMem controller with the paper's defaults. The
    /// O-Table-InMem has no hardware capacity limit; it grows with the
    /// object count (`(4+N) × #Obj` bits).
    pub fn new() -> Self {
        Self::with_config(OasisConfig::default(), InMemCosts::default())
    }

    /// Creates an InMem controller with explicit parameters.
    pub fn with_config(config: OasisConfig, costs: InMemCosts) -> Self {
        let config = OasisConfig {
            // Full 16-bit ids: no pointer-tag aliasing in software.
            id_bits: 16,
            otable_capacity: 1 << 16,
            ..config
        };
        OasisInMem {
            core: ControllerCore::new(config),
            shadow: ShadowMap::new(),
            ranges: HashMap::new(),
            costs,
            warm_l2: HashSet::new(),
            warm_entries: HashSet::new(),
            shadow_lookups: 0,
            shadow_cold: 0,
        }
    }

    /// Behaviour counters shared with the hardware controller.
    pub fn stats(&self) -> OasisStats {
        self.core.stats
    }

    /// `(total shadow lookups, cold lookups that paid a memory access)`.
    pub fn shadow_stats(&self) -> (u64, u64) {
        (self.shadow_lookups, self.shadow_cold)
    }

    /// The shadow map (inspection / overhead accounting).
    pub fn shadow_map(&self) -> &ShadowMap {
        &self.shadow
    }

    fn charge_lookup(&mut self, l1: u64, tag: u16) -> Duration {
        self.shadow_lookups += 1;
        let mut d = Duration::ZERO;
        // Two-level shadow map walk.
        if self.warm_l2.insert(l1) {
            self.shadow_cold += 1;
            d += self.costs.memory * 2; // both levels cold
        } else {
            d += self.costs.llc_hit * 2;
        }
        // O-Table-InMem access.
        if self.warm_entries.insert(tag) {
            d += self.costs.memory;
        } else {
            d += self.costs.llc_hit;
        }
        d
    }
}

impl Default for OasisInMem {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyEngine for OasisInMem {
    fn name(&self) -> &str {
        "oasis-inmem"
    }

    fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision {
        if !self.core.is_shared(fault, state) {
            self.core.stats.private_faults += 1;
            return Decision::free(Resolution::Migrate);
        }
        let (tag, l1) = self.shadow.lookup(fault.va);
        let Some(tag) = tag else {
            // A shared fault outside any tracked object (should not happen
            // in a well-formed run): fall back to the default policy.
            debug_assert!(false, "shared fault on untracked va {}", fault.va);
            return Decision::free(Resolution::Migrate);
        };
        let metadata_latency = self.charge_lookup(l1, tag);
        let resolution = self.core.decide_shared(
            tag,
            fault.is_write(),
            fault.fault_type == oasis_uvm::fault::FaultType::Protection,
        );
        Decision {
            resolution,
            metadata_latency,
        }
    }

    fn on_kernel_launch(&mut self) {
        self.core.on_kernel_launch();
    }

    fn on_link_degraded(&mut self, va: Va) {
        if let (Some(tag), _) = self.shadow.lookup(va) {
            self.core.on_link_degraded(tag);
        }
    }

    fn on_alloc(&mut self, obj: ObjectId, base: Va, bytes: u64) {
        self.shadow.set_range(base, bytes, obj.0);
        self.ranges.insert(obj.0, (base.canonical(), bytes));
        self.core.otable.init(obj.0);
    }

    fn on_free(&mut self, obj: ObjectId) {
        if let Some((base, bytes)) = self.ranges.remove(&obj.0) {
            self.shadow.clear_range(base, bytes);
        }
        self.core.otable.remove(obj.0);
    }

    fn check_invariants(&self) -> SimResult<()> {
        self.core.otable.check_invariants()
    }

    /// Serializes the shared policy core plus the InMem-only state. The
    /// shadow map itself is not written: it is a pure function of the live
    /// allocation ranges and is rebuilt on restore.
    fn snapshot_state(&self, w: &mut ByteWriter) {
        self.core.snapshot_state(w);
        let mut ranges: Vec<(u16, Va, u64)> = self
            .ranges
            .iter()
            .map(|(obj, (base, bytes))| (*obj, *base, *bytes))
            .collect();
        ranges.sort_unstable_by_key(|(obj, _, _)| *obj);
        w.u64(ranges.len() as u64);
        for (obj, base, bytes) in ranges {
            w.u16(obj);
            w.u64(base.0);
            w.u64(bytes);
        }
        let mut warm_l2: Vec<u64> = self.warm_l2.iter().copied().collect();
        warm_l2.sort_unstable();
        w.u64(warm_l2.len() as u64);
        for slot in warm_l2 {
            w.u64(slot);
        }
        let mut warm_entries: Vec<u16> = self.warm_entries.iter().copied().collect();
        warm_entries.sort_unstable();
        w.u64(warm_entries.len() as u64);
        for tag in warm_entries {
            w.u16(tag);
        }
        w.u64(self.shadow_lookups);
        w.u64(self.shadow_cold);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.core.restore_state(r)?;
        let n = r.usize()?;
        self.shadow = ShadowMap::new();
        self.ranges = HashMap::with_capacity(n);
        for _ in 0..n {
            let obj = r.u16()?;
            if obj == NO_OBJ {
                return Err(r.malformed(format!("object id {NO_OBJ} is reserved")));
            }
            let base = Va(r.u64()?);
            let bytes = r.u64()?;
            if self.ranges.insert(obj, (base, bytes)).is_some() {
                return Err(r.malformed(format!("duplicate allocation range for object {obj}")));
            }
            self.shadow.set_range(base, bytes, obj);
        }
        let n = r.usize()?;
        self.warm_l2 = HashSet::with_capacity(n);
        for _ in 0..n {
            self.warm_l2.insert(r.u64()?);
        }
        let n = r.usize()?;
        self.warm_entries = HashSet::with_capacity(n);
        for _ in 0..n {
            self.warm_entries.insert(r.u16()?);
        }
        self.shadow_lookups = r.u64()?;
        self.shadow_cold = r.u64()?;
        Ok(())
    }

    fn publish_metrics(&self, m: &mut MetricsRegistry) {
        let s = self.core.stats;
        m.set("otable.relearn", s.policy_learns);
        m.set("otable.implicit_reset", s.implicit_resets);
        m.set("otable.explicit_reset", s.explicit_resets);
        m.set("oasis.private_faults", s.private_faults);
        m.set("oasis.shared_faults", s.shared_faults);
        m.set("oasis.link_demotions", s.link_demotions);
        m.set("shadow.lookups", self.shadow_lookups);
        m.set("shadow.cold_lookups", self.shadow_cold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::page::HostEntry;
    use oasis_mem::types::{AccessKind, DeviceId, GpuId, PageSize, Vpn};
    use oasis_uvm::fault::PageFault;

    #[test]
    fn shadow_map_round_trips_ranges() {
        let mut m = ShadowMap::new();
        m.set_range(Va(0x1000_0000), 2 * 1024 * 1024, 7);
        // A 2 MB object occupies 512 entries, all holding the same id.
        assert_eq!(m.lookup(Va(0x1000_0000)).0, Some(7));
        assert_eq!(m.lookup(Va(0x1000_0000 + 2 * 1024 * 1024 - 1)).0, Some(7));
        assert_eq!(m.lookup(Va(0x1000_0000 + 2 * 1024 * 1024)).0, None);
        assert_eq!(m.lookup(Va(0x0FFF_FFFF)).0, None);
    }

    #[test]
    fn shadow_map_clear_removes_only_the_range() {
        let mut m = ShadowMap::new();
        m.set_range(Va(0x1000_0000), 4096, 1);
        m.set_range(Va(0x1000_1000), 4096, 2);
        m.clear_range(Va(0x1000_0000), 4096);
        assert_eq!(m.lookup(Va(0x1000_0000)).0, None);
        assert_eq!(m.lookup(Va(0x1000_1000)).0, Some(2));
    }

    #[test]
    fn shadow_map_ignores_pointer_tags() {
        let mut m = ShadowMap::new();
        m.set_range(Va(0x1000_0000), 4096, 3);
        let tagged = Va(0x1000_0000 | (0b1u64 << 48));
        assert_eq!(m.lookup(tagged).0, Some(3));
    }

    #[test]
    fn shadow_map_memory_accounting() {
        let mut m = ShadowMap::new();
        assert_eq!(m.l2_tables(), 0);
        m.set_range(Va(0x1000_0000), 4096, 1);
        assert_eq!(m.l2_tables(), 1);
        assert_eq!(m.modelled_bytes(), 128 * 1024 * 1024 + (1 << 12) * 2);
    }

    fn shared_state(vpn: Vpn) -> MemState {
        let mut s = MemState::new(4, PageSize::Small4K, None);
        s.host_table
            .register(vpn, HostEntry::new_at(DeviceId::Gpu(GpuId(1))))
            .expect("fresh page");
        s
    }

    #[test]
    fn inmem_learns_like_hardware_but_charges_latency() {
        let mut c = OasisInMem::new();
        c.on_alloc(ObjectId(300), Va(0x1000_0000), 64 * 4096);
        let s = shared_state(Vpn(0x1000_0000 >> 12));
        let f = PageFault::far(
            GpuId(0),
            Va(0x1000_0000),
            Vpn(0x1000_0000 >> 12),
            AccessKind::Read,
        );
        let d = c.resolve(&f, &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
        // Cold lookup: two memory accesses for the shadow walk + one for
        // the O-Table entry.
        assert_eq!(d.metadata_latency, Duration::from_ns(240));
        // Second fault: everything warm in the LLC.
        let d = c.resolve(&f, &s);
        assert_eq!(d.metadata_latency, Duration::from_ns(90));
        assert_eq!(c.shadow_stats(), (2, 1));
    }

    #[test]
    fn inmem_supports_object_counts_beyond_pointer_tags() {
        let mut c = OasisInMem::new();
        // 300 objects — far beyond the 4-bit pointer encoding.
        for i in 0..300u16 {
            c.on_alloc(ObjectId(i), Va(0x1000_0000 + i as u64 * 0x20_0000), 4096);
        }
        let s = shared_state(Vpn((0x1000_0000 + 299 * 0x20_0000) >> 12));
        let f = PageFault::far(
            GpuId(0),
            Va(0x1000_0000 + 299 * 0x20_0000),
            Vpn((0x1000_0000 + 299 * 0x20_0000) >> 12),
            AccessKind::Write,
        );
        assert_eq!(c.resolve(&f, &s).resolution, Resolution::RemoteMap);
        // Distinct entries, no aliasing.
        assert_eq!(c.stats().shared_faults, 1);
    }

    #[test]
    fn inmem_private_path_skips_shadow_map() {
        let mut c = OasisInMem::new();
        c.on_alloc(ObjectId(0), Va(0x1000_0000), 4096);
        let mut s = MemState::new(4, PageSize::Small4K, None);
        s.host_table
            .register(Vpn(0x1000_0000 >> 12), HostEntry::new_on_host())
            .expect("fresh page");
        let f = PageFault::far(
            GpuId(0),
            Va(0x1000_0000),
            Vpn(0x1000_0000 >> 12),
            AccessKind::Write,
        );
        let d = c.resolve(&f, &s);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(d.metadata_latency, Duration::ZERO);
        assert_eq!(c.shadow_stats().0, 0, "host-PT filter avoided the lookup");
    }

    #[test]
    fn inmem_free_clears_shadow_entries() {
        let mut c = OasisInMem::new();
        c.on_alloc(ObjectId(5), Va(0x1000_0000), 4096);
        c.on_free(ObjectId(5));
        assert_eq!(c.shadow_map().lookup(Va(0x1000_0000)).0, None);
    }

    #[test]
    fn inmem_name() {
        assert_eq!(OasisInMem::new().name(), "oasis-inmem");
    }

    #[test]
    fn inmem_snapshot_rebuilds_shadow_map_and_warmth() {
        let mut c = OasisInMem::new();
        c.on_alloc(ObjectId(300), Va(0x1000_0000), 64 * 4096);
        let s = shared_state(Vpn(0x1000_0000 >> 12));
        let f = PageFault::far(
            GpuId(0),
            Va(0x1000_0000),
            Vpn(0x1000_0000 >> 12),
            AccessKind::Read,
        );
        c.resolve(&f, &s); // cold lookup: warms the L2 slot and O-Table entry
        let mut w = oasis_engine::ByteWriter::new();
        c.snapshot_state(&mut w);
        let buf = w.into_vec();

        let mut fresh = OasisInMem::new();
        let mut r = oasis_engine::ByteReader::new("policy", &buf);
        fresh.restore_state(&mut r).expect("valid inmem state");
        assert!(r.is_empty(), "payload fully consumed");
        assert_eq!(fresh.stats(), c.stats());
        assert_eq!(fresh.shadow_stats(), c.shadow_stats());
        assert_eq!(fresh.shadow_map().lookup(Va(0x1000_0000)).0, Some(300));
        // The restored controller is warm: the next lookup charges LLC
        // hits, exactly like the uninterrupted run.
        let a = c.resolve(&f, &s);
        let b = fresh.resolve(&f, &s);
        assert_eq!(a, b);
        assert_eq!(b.metadata_latency, Duration::from_ns(90));
    }
}
