//! The O-Table: OASIS's on-chip object-policy store (Fig. 11).
//!
//! Each entry conceptually occupies 12 bits: a 4-bit Obj_ID, a 1-bit policy
//! (0 = duplication, 1 = access counter-based migration), a 3-bit page
//! fault counter, and 4 LRU bits. The table holds 16 entries; when more
//! live objects exist than entries (possible with wider Obj_ID encodings),
//! LRU replacement applies. On-touch migration is *not* representable here
//! because it is the default policy handled by the host-page-table filter;
//! the O-Table only ever chooses between duplication and access-counter.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::{SimError, SimResult};

/// The single policy bit of an O-Table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyChoice {
    /// Bit value 0: page duplication (learned from a shared *read* fault).
    #[default]
    Duplication,
    /// Bit value 1: access counter-based migration (learned from a shared
    /// *write* fault).
    AccessCounter,
}

impl PolicyChoice {
    /// The raw policy bit.
    pub const fn bit(self) -> u8 {
        match self {
            PolicyChoice::Duplication => 0,
            PolicyChoice::AccessCounter => 1,
        }
    }

    /// Learns the policy from a shared fault's W bit (Section V-D): reads
    /// choose duplication, writes choose access-counter migration.
    pub fn learn(is_write: bool) -> Self {
        if is_write {
            PolicyChoice::AccessCounter
        } else {
            PolicyChoice::Duplication
        }
    }
}

/// One O-Table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OTableEntry {
    /// The object index (matches the Obj_ID bits in the pointer).
    pub obj: u16,
    /// The learned policy bit.
    pub policy: PolicyChoice,
    /// Shared page-fault counter (3 bits at the default reset threshold of
    /// 8; stored wider here so the Fig. 16 threshold sweep up to 32 works).
    pub pf_count: u8,
    lru_stamp: u64,
}

impl OTableEntry {
    fn new(obj: u16, stamp: u64) -> Self {
        OTableEntry {
            obj,
            policy: PolicyChoice::default(),
            pf_count: 0,
            lru_stamp: stamp,
        }
    }
}

/// The 16-entry, LRU-managed O-Table.
///
/// # Example
///
/// ```
/// use oasis_core::otable::{OTable, PolicyChoice};
///
/// let mut table = OTable::new(); // 16 entries, 24 bytes (Section V-E)
/// let entry = table.lookup_or_insert(3);
/// assert_eq!(entry.pf_count, 0); // fresh entry: policy must be learned
/// entry.policy = PolicyChoice::learn(/* is_write */ false);
/// assert_eq!(entry.policy, PolicyChoice::Duplication);
/// ```
#[derive(Debug, Clone)]
pub struct OTable {
    entries: Vec<OTableEntry>,
    capacity: usize,
    stamp: u64,
    evictions: u64,
}

/// The paper's O-Table capacity (2^4 entries, 24 bytes total).
pub const DEFAULT_CAPACITY: usize = 16;

impl OTable {
    /// Creates an O-Table with the paper's default 16 entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an O-Table with a custom capacity (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "O-Table needs at least one entry");
        OTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            evictions: 0,
        }
    }

    /// Looks up the entry for `obj`, refreshing its LRU position; inserts a
    /// fresh entry (policy 0, PF count 0) if absent, evicting the LRU entry
    /// when the table is full.
    pub fn lookup_or_insert(&mut self, obj: u16) -> &mut OTableEntry {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(pos) = self.entries.iter().position(|e| e.obj == obj) {
            self.entries[pos].lru_stamp = stamp;
            return &mut self.entries[pos];
        }
        if self.entries.len() == self.capacity {
            // Capacity is validated > 0, so a full table has a minimum.
            if let Some((lru_pos, _)) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru_stamp)
            {
                self.entries.swap_remove(lru_pos);
                self.evictions += 1;
            }
        }
        self.entries.push(OTableEntry::new(obj, stamp));
        let last = self.entries.len() - 1;
        &mut self.entries[last]
    }

    /// Initializes an entry for a newly allocated object ("when an object
    /// is allocated, its corresponding entry in the O-Table is
    /// initialized"). Equivalent to `lookup_or_insert` but also resets an
    /// aliased pre-existing entry.
    pub fn init(&mut self, obj: u16) {
        let e = self.lookup_or_insert(obj);
        e.policy = PolicyChoice::default();
        e.pf_count = 0;
    }

    /// Removes the entry for a freed object. Returns whether one existed.
    pub fn remove(&mut self, obj: u16) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.obj == obj) {
            self.entries.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Read-only view of the entry for `obj` (no LRU refresh).
    pub fn peek(&self, obj: u16) -> Option<&OTableEntry> {
        self.entries.iter().find(|e| e.obj == obj)
    }

    /// Resets every entry's PF count to zero — the explicit-phase reset
    /// performed at kernel launch (Section V-D). Learned policy bits are
    /// retained; the next shared fault per object relearns.
    pub fn reset_all_pf_counts(&mut self) {
        for e in &mut self.entries {
            e.pf_count = 0;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// LRU evictions performed (a proxy for object-set pressure).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Storage footprint in bits, per the paper's 12-bits-per-entry
    /// accounting (4 Obj_ID + 1 policy + 3 PF + 4 LRU).
    pub fn storage_bits(&self) -> usize {
        self.capacity * 12
    }

    /// Validates the table's LRU well-formedness for the sim-guard runtime
    /// checker: occupancy within capacity, no duplicate object ids, no
    /// duplicate LRU stamps, and no stamp from the future.
    pub fn check_invariants(&self) -> SimResult<()> {
        if self.entries.len() > self.capacity {
            return Err(SimError::invariant(
                "otable-capacity",
                format!(
                    "{} entries exceed capacity {}",
                    self.entries.len(),
                    self.capacity
                ),
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.lru_stamp > self.stamp {
                return Err(SimError::invariant(
                    "otable-lru",
                    format!(
                        "entry for obj {} stamped {} > clock {}",
                        e.obj, e.lru_stamp, self.stamp
                    ),
                ));
            }
            for other in &self.entries[i + 1..] {
                if other.obj == e.obj {
                    return Err(SimError::invariant(
                        "otable-lru",
                        format!("obj {} appears in two entries", e.obj),
                    ));
                }
                if other.lru_stamp == e.lru_stamp {
                    return Err(SimError::invariant(
                        "otable-lru",
                        format!(
                            "objs {} and {} share LRU stamp {} (victim selection ambiguous)",
                            e.obj, other.obj, e.lru_stamp
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for OTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for OTable {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.stamp);
        w.u64(self.evictions);
        // Entry order is part of replacement behaviour (`swap_remove` ties
        // on position), so serialize it verbatim; it is deterministic,
        // being driven only by the fault stream.
        w.u16(self.entries.len() as u16);
        for e in &self.entries {
            w.u16(e.obj);
            w.u8(e.policy.bit());
            w.u8(e.pf_count);
            w.u64(e.lru_stamp);
        }
    }
}

impl Restore for OTable {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        // Capacity is configuration and stays as constructed.
        self.stamp = r.u64()?;
        self.evictions = r.u64()?;
        let n = r.u16()? as usize;
        if n > self.capacity {
            return Err(r.malformed(format!(
                "{n} entries exceed O-Table capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let obj = r.u16()?;
            let policy = match r.u8()? {
                0 => PolicyChoice::Duplication,
                1 => PolicyChoice::AccessCounter,
                b => return Err(r.malformed(format!("invalid policy bit {b}"))),
            };
            let pf_count = r.u8()?;
            let lru_stamp = r.u64()?;
            self.entries.push(OTableEntry {
                obj,
                policy,
                pf_count,
                lru_stamp,
            });
        }
        self.check_invariants()
            .map_err(|e| r.malformed(format!("restored O-Table fails invariants: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_choice_bits_and_learning() {
        assert_eq!(PolicyChoice::Duplication.bit(), 0);
        assert_eq!(PolicyChoice::AccessCounter.bit(), 1);
        assert_eq!(PolicyChoice::learn(false), PolicyChoice::Duplication);
        assert_eq!(PolicyChoice::learn(true), PolicyChoice::AccessCounter);
    }

    #[test]
    fn new_entries_initialized_per_paper() {
        let mut t = OTable::new();
        let e = t.lookup_or_insert(5);
        assert_eq!(e.obj, 5);
        assert_eq!(e.policy.bit(), 0, "policy bit initialized to 0");
        assert_eq!(e.pf_count, 0, "PF count initialized to 000");
    }

    #[test]
    fn lookup_preserves_state() {
        let mut t = OTable::new();
        {
            let e = t.lookup_or_insert(3);
            e.policy = PolicyChoice::AccessCounter;
            e.pf_count = 5;
        }
        let e = t.lookup_or_insert(3);
        assert_eq!(e.policy, PolicyChoice::AccessCounter);
        assert_eq!(e.pf_count, 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = OTable::with_capacity(2);
        t.lookup_or_insert(0);
        t.lookup_or_insert(1);
        t.lookup_or_insert(0); // refresh 0; 1 becomes LRU
        t.lookup_or_insert(2); // evicts 1
        assert!(t.peek(0).is_some());
        assert!(t.peek(1).is_none());
        assert!(t.peek(2).is_some());
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn capacity_matches_paper_defaults() {
        let t = OTable::new();
        assert_eq!(t.capacity(), 16);
        assert_eq!(t.storage_bits(), 192); // 24 bytes
    }

    #[test]
    fn reset_all_pf_counts_keeps_policies() {
        let mut t = OTable::new();
        for i in 0..4 {
            let e = t.lookup_or_insert(i);
            e.policy = PolicyChoice::AccessCounter;
            e.pf_count = 7;
        }
        t.reset_all_pf_counts();
        for i in 0..4 {
            let e = t.peek(i).unwrap();
            assert_eq!(e.pf_count, 0);
            assert_eq!(e.policy, PolicyChoice::AccessCounter);
        }
    }

    #[test]
    fn remove_on_free() {
        let mut t = OTable::new();
        t.lookup_or_insert(9);
        assert!(t.remove(9));
        assert!(!t.remove(9));
        assert!(t.is_empty());
    }

    #[test]
    fn init_resets_aliased_entry() {
        let mut t = OTable::new();
        {
            let e = t.lookup_or_insert(4);
            e.policy = PolicyChoice::AccessCounter;
            e.pf_count = 3;
        }
        // A new object aliasing to tag 4 (e.g. the 20th allocation with
        // 4-bit ids) must start fresh.
        t.init(4);
        let e = t.peek(4).unwrap();
        assert_eq!(e.policy, PolicyChoice::Duplication);
        assert_eq!(e.pf_count, 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        OTable::with_capacity(0);
    }

    #[test]
    fn snapshot_round_trips_lru_and_learned_policies() {
        let mut t = OTable::with_capacity(4);
        for i in 0..10u16 {
            let e = t.lookup_or_insert(i % 6);
            if i % 2 == 0 {
                e.policy = PolicyChoice::AccessCounter;
            }
            e.pf_count = (i % 8) as u8;
        }
        let mut w = ByteWriter::new();
        t.snapshot(&mut w);

        let mut fresh = OTable::with_capacity(4);
        let buf = w.into_vec();
        let mut r = ByteReader::new("otable", &buf);
        fresh.restore(&mut r).expect("valid O-Table state");
        assert!(r.is_empty());
        assert_eq!(fresh.len(), t.len());
        assert_eq!(fresh.evictions(), t.evictions());
        fresh
            .check_invariants()
            .expect("restored table well-formed");
        // Identical next eviction decision.
        fresh.lookup_or_insert(40);
        t.lookup_or_insert(40);
        for i in 0..7u16 {
            assert_eq!(fresh.peek(i).is_some(), t.peek(i).is_some(), "obj {i}");
        }
    }

    #[test]
    fn restore_rejects_overfull_snapshot() {
        let mut big = OTable::with_capacity(16);
        for i in 0..10 {
            big.lookup_or_insert(i);
        }
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut small = OTable::with_capacity(4);
        let mut r = ByteReader::new("otable", &buf);
        assert!(small.restore(&mut r).is_err());
    }

    #[test]
    fn invariants_hold_through_churn_and_catch_corruption() {
        let mut t = OTable::with_capacity(4);
        for i in 0..40 {
            t.lookup_or_insert(i % 7);
            t.check_invariants().expect("well-formed through churn");
        }
        // Corrupt: duplicate object id.
        let mut bad = t.clone();
        let obj = bad.lookup_or_insert(0).obj;
        bad.entries.push(OTableEntry::new(obj, 1));
        assert!(bad.check_invariants().is_err());
    }
}
