//! OASIS: object-aware page management for multi-GPU systems.
//!
//! This crate implements the paper's primary contribution (Section V):
//!
//! * the **Object Tracker** ([`tracker`]) — wraps managed allocation and
//!   encodes a 4-bit object index plus a configuration bit into the unused
//!   upper pointer bits (Figs. 9–10), relying on TBI/LAM/UAI-style tag
//!   ignoring on dereference;
//! * the **O-Table** ([`otable`]) — a 16-entry, LRU-managed on-chip table
//!   holding each live object's learned policy bit and page-fault count
//!   (Fig. 11);
//! * the **Object Policy Controller** ([`controller`]) — uses the host page
//!   table as a private/shared filter, learns a shared object's policy from
//!   the first shared fault's W bit, self-corrects via the PF-count reset
//!   threshold (implicit phases) and kernel-launch resets (explicit phases)
//!   per the state machine of Fig. 13(b);
//! * **OASIS-InMem** ([`inmem`]) — the software-only alternative
//!   (Section V-F): a two-level shadow map in system memory supplies the
//!   object index, and the O-Table lives in memory, cached in the host LLC.
//!
//! Both controllers implement [`oasis_uvm::PolicyEngine`], so they plug
//! into the same simulated UVM driver as the uniform policies.

pub mod controller;
pub mod inmem;
pub mod otable;
pub mod tracker;

pub use controller::{OasisConfig, OasisController, OasisStats};
pub use inmem::{OasisInMem, ShadowMap};
pub use otable::{OTable, OTableEntry, PolicyChoice};
pub use tracker::{decode, encode, ObjectTracker, DEFAULT_ID_BITS, MAX_ID_BITS};
