//! Interconnect model: NVLink fabric between GPUs, PCIe to the host.
//!
//! Matches the baseline platform of Table I: every GPU has a 300 GB/s
//! NVLink-v2 port into an all-to-all fabric, and a 32 GB/s PCIe-v4 link to
//! the host CPU. A transfer occupies both endpoints' ports for its
//! serialization time, so migration storms toward one GPU congest its
//! ingress and heavy fault traffic congests PCIe — the effects that make
//! page ping-ponging and fault-heavy policies expensive in the paper.
//!
//! The fabric can also degrade: a [`FaultPlan`] schedules permanent
//! link-down events (transfers between the pair fall back to the
//! staged-through-host PCIe path, with its real bandwidth penalty) and
//! transient CRC-glitch windows (bounded retransmissions that re-occupy
//! both ports). With an empty plan the data path is byte-for-byte the
//! pre-fault model.

pub mod fault;

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::{Channel, Duration, Time, Transfer};
use oasis_mem::types::DeviceId;

pub use fault::{
    EccEvent, FaultCounters, FaultPlan, FaultSpecError, FaultState, FlakyWindow, LinkDown,
    MAX_CRC_RETRIES,
};

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Per-GPU NVLink port bandwidth in bytes/second (paper: 300 GB/s).
    pub nvlink_bytes_per_sec: u64,
    /// NVLink one-way latency.
    pub nvlink_latency: Duration,
    /// Per-GPU PCIe link bandwidth in bytes/second (paper: 32 GB/s).
    pub pcie_bytes_per_sec: u64,
    /// PCIe one-way latency.
    pub pcie_latency: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nvlink_bytes_per_sec: 300_000_000_000,
            nvlink_latency: Duration::from_ns(500),
            pcie_bytes_per_sec: 32_000_000_000,
            pcie_latency: Duration::from_us(1),
        }
    }
}

/// The system interconnect: per-GPU NVLink ports (all-to-all) plus per-GPU
/// PCIe links to the host.
#[derive(Debug, Clone)]
pub struct Fabric {
    nvlink: Vec<Channel>,
    pcie: Vec<Channel>,
    config: FabricConfig,
    plan: FaultPlan,
    fault: FaultState,
}

impl Fabric {
    /// Builds the fabric for `gpu_count` GPUs with no scheduled faults.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn new(gpu_count: usize, config: FabricConfig) -> Self {
        Self::with_plan(gpu_count, config, FaultPlan::default())
    }

    /// Builds the fabric with a hardware-fault schedule.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or the plan names a GPU outside the
    /// system (validate plans against the GPU count before construction).
    pub fn with_plan(gpu_count: usize, config: FabricConfig, plan: FaultPlan) -> Self {
        assert!(gpu_count > 0, "need at least one GPU");
        if let Some(g) = plan.max_gpu() {
            assert!(
                usize::from(g) < gpu_count,
                "fault plan names GPU {g} but only {gpu_count} exist"
            );
        }
        let fault = FaultState::new(&plan);
        Fabric {
            nvlink: (0..gpu_count)
                .map(|_| Channel::new(config.nvlink_bytes_per_sec, config.nvlink_latency))
                .collect(),
            pcie: (0..gpu_count)
                .map(|_| Channel::new(config.pcie_bytes_per_sec, config.pcie_latency))
                .collect(),
            config,
            plan,
            fault,
        }
    }

    /// Number of GPUs attached.
    pub fn gpu_count(&self) -> usize {
        self.nvlink.len()
    }

    /// The configuration the fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Reserves a bulk transfer of `bytes` from `from` to `to` at `now`,
    /// occupying both endpoints' ports.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (no self-transfers) or a GPU index is out of
    /// range.
    pub fn transfer(&mut self, now: Time, from: DeviceId, to: DeviceId, bytes: u64) -> Transfer {
        assert_ne!(from, to, "self-transfer on the fabric");
        match (from, to) {
            (DeviceId::Gpu(a), DeviceId::Gpu(b)) => {
                let (i, j) = (a.index(), b.index());
                if self.fault.is_down(i as u8, j as u8) {
                    return self.reroute_via_host(now, i, j, bytes);
                }
                // Joint reservation: the transfer starts when both ports are
                // free, then occupies both for its serialization time.
                let hint = now
                    .max(self.nvlink[i].next_free())
                    .max(self.nvlink[j].next_free());
                let mut t = self.nvlink[i].reserve(hint, bytes);
                let t2 = self.nvlink[j].reserve(hint, bytes);
                debug_assert_eq!(t.start, t2.start);
                if !self.plan.flaky.is_empty() {
                    t = self.apply_crc_glitches(t, i, j, bytes);
                }
                t
            }
            (DeviceId::Host, DeviceId::Gpu(g)) | (DeviceId::Gpu(g), DeviceId::Host) => {
                self.pcie[g.index()].reserve(now, bytes)
            }
            (DeviceId::Host, DeviceId::Host) => unreachable!("guarded by assert_ne"),
        }
    }

    /// The PCIe fallback path for a dead NVLink pair: the payload is staged
    /// through host memory, serializing on both endpoints' PCIe links in
    /// sequence — the full bandwidth penalty of losing the direct link.
    fn reroute_via_host(&mut self, now: Time, i: usize, j: usize, bytes: u64) -> Transfer {
        let leg1 = self.pcie[i].reserve(now, bytes);
        let leg2 = self.pcie[j].reserve(leg1.arrive, bytes);
        self.fault.note_reroute(bytes);
        Transfer {
            start: leg1.start,
            depart: leg2.depart,
            arrive: leg2.arrive,
        }
    }

    /// CRC-style link glitches: while a flaky window covers the pair, each
    /// transfer retransmits with the window's probability, re-occupying
    /// both ports per retry (bounded by [`MAX_CRC_RETRIES`]).
    fn apply_crc_glitches(&mut self, first: Transfer, i: usize, j: usize, bytes: u64) -> Transfer {
        let epoch = self.fault.epoch();
        let window = self.plan.flaky.iter().find(|w| {
            let (a, b) = (usize::from(w.a), usize::from(w.b));
            ((a, b) == (i, j) || (a, b) == (j, i)) && epoch >= w.from_epoch && epoch < w.to_epoch
        });
        let Some(&fault::FlakyWindow { num, den, .. }) = window else {
            return first;
        };
        let mut t = first;
        for _ in 0..MAX_CRC_RETRIES {
            if !self.fault.rng().gen_bool_ratio(num, den) {
                break;
            }
            let hint = t.depart;
            let retry = self.nvlink[i].reserve(hint, bytes);
            self.nvlink[j].reserve(hint, bytes);
            t = Transfer {
                start: t.start,
                depart: retry.depart,
                arrive: retry.arrive,
            };
            self.fault.note_crc_retry();
        }
        t
    }

    /// Announces the start of `epoch`: applies scheduled permanent
    /// link-down events and arms the flaky windows. Returns the pairs
    /// newly taken down, in plan order, for event tracing.
    pub fn begin_epoch(&mut self, epoch: u64) -> Vec<(u8, u8)> {
        self.fault.set_epoch(epoch);
        let mut downed = Vec::new();
        for l in &self.plan.link_down {
            if l.epoch == epoch && self.fault.mark_down(l.a, l.b) {
                downed.push((l.a, l.b));
            }
        }
        downed
    }

    /// Whether the NVLink pair between GPUs `a` and `b` is permanently
    /// down (transfers fall back to the PCIe path).
    pub fn link_is_down(&self, a: u8, b: u8) -> bool {
        self.fault.is_down(a, b)
    }

    /// The fault schedule this fabric was built with.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// ECC events the plan schedules for `epoch`, in plan order.
    pub fn ecc_events_for(&self, epoch: u64) -> Vec<EccEvent> {
        self.plan
            .ecc
            .iter()
            .copied()
            .filter(|e| e.epoch == epoch)
            .collect()
    }

    /// One deterministic draw from the fault RNG in `[0, bound)`; used for
    /// ECC victim selection so the whole fault stream replays from one
    /// seed.
    pub fn fault_draw(&mut self, bound: usize) -> usize {
        self.fault.rng().gen_below(bound)
    }

    /// Read access to the mutable fault state (health, counters).
    pub fn fault_state(&self) -> &FaultState {
        &self.fault
    }

    /// Mutable access to the fault state, for checkpoint restore.
    pub fn fault_state_mut(&mut self) -> &mut FaultState {
        &mut self.fault
    }

    /// One-way latency for a small control message (fault packet,
    /// invalidation request/ack) between two devices. Control messages are
    /// assumed not to consume meaningful bandwidth.
    pub fn control_latency(&self, from: DeviceId, to: DeviceId) -> Duration {
        match (from, to) {
            (DeviceId::Gpu(_), DeviceId::Gpu(_)) => self.config.nvlink_latency,
            (DeviceId::Host, DeviceId::Gpu(_)) | (DeviceId::Gpu(_), DeviceId::Host) => {
                self.config.pcie_latency
            }
            (DeviceId::Host, DeviceId::Host) => Duration::ZERO,
        }
    }

    /// Total bytes moved over NVLink ports (each inter-GPU byte counts once
    /// per endpoint port).
    pub fn nvlink_bytes(&self) -> u64 {
        self.nvlink.iter().map(Channel::bytes_moved).sum()
    }

    /// Total bytes moved over PCIe links.
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie.iter().map(Channel::bytes_moved).sum()
    }

    /// Cumulative busy time of the busiest NVLink port.
    pub fn max_nvlink_busy(&self) -> Duration {
        self.nvlink
            .iter()
            .map(Channel::busy_time)
            .fold(Duration::ZERO, Duration::max)
    }

    /// Resets occupancy and statistics on all links, and rewinds the
    /// hardware-fault state (link health, fault RNG, retry/reroute
    /// rollups) to the start of the plan — so `link_stats()` and the
    /// fault counters report zeros after a reset, matching the byte
    /// counters that were always cleared here.
    pub fn reset(&mut self) {
        for c in self.nvlink.iter_mut().chain(self.pcie.iter_mut()) {
            c.reset();
        }
        self.fault = FaultState::new(&self.plan);
    }

    /// Per-link utilization rollup, in deterministic order (all NVLink
    /// ports by GPU index, then all PCIe links). Feeds the metrics
    /// registry at report time.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        let mut out = Vec::with_capacity(self.nvlink.len() + self.pcie.len());
        for (kind, links) in [("nvlink", &self.nvlink), ("pcie", &self.pcie)] {
            for (gpu, c) in links.iter().enumerate() {
                out.push(LinkStats {
                    kind,
                    gpu,
                    busy: c.busy_time(),
                    bytes: c.bytes_moved(),
                    transfers: c.transfers(),
                });
            }
        }
        out
    }
}

/// Utilization summary for one fabric link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Link kind: `"nvlink"` or `"pcie"`.
    pub kind: &'static str,
    /// GPU index the port/link belongs to.
    pub gpu: usize,
    /// Cumulative serialization (busy) time.
    pub busy: Duration,
    /// Total bytes moved.
    pub bytes: u64,
    /// Number of transfers reserved.
    pub transfers: u64,
}

impl Snapshot for Fabric {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.nvlink.len() as u64);
        for c in self.nvlink.iter().chain(self.pcie.iter()) {
            c.snapshot(w);
        }
    }
}

impl Restore for Fabric {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n = r.usize()?;
        if n != self.nvlink.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} GPU ports, this fabric has {}",
                self.nvlink.len()
            )));
        }
        for c in self.nvlink.iter_mut().chain(self.pcie.iter_mut()) {
            c.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::types::GpuId;

    fn gpu(i: u8) -> DeviceId {
        DeviceId::Gpu(GpuId(i))
    }

    #[test]
    fn gpu_to_gpu_uses_nvlink_latency() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let t = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        let expected = Duration::for_transfer(4096, 300_000_000_000) + Duration::from_ns(500);
        assert_eq!(t.latency_from(Time::ZERO), expected);
    }

    #[test]
    fn host_transfers_use_pcie() {
        let mut f = Fabric::new(2, FabricConfig::default());
        let t = f.transfer(Time::ZERO, DeviceId::Host, gpu(1), 4096);
        let expected = Duration::for_transfer(4096, 32_000_000_000) + Duration::from_us(1);
        assert_eq!(t.latency_from(Time::ZERO), expected);
        assert_eq!(f.pcie_bytes(), 4096);
        assert_eq!(f.nvlink_bytes(), 0);
    }

    #[test]
    fn transfers_to_same_gpu_serialize_on_its_port() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let a = f.transfer(Time::ZERO, gpu(0), gpu(3), 1 << 20);
        let b = f.transfer(Time::ZERO, gpu(1), gpu(3), 1 << 20);
        assert!(b.start >= a.depart, "ingress port must serialize");
    }

    #[test]
    fn transfers_between_disjoint_pairs_proceed_in_parallel() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let a = f.transfer(Time::ZERO, gpu(0), gpu(1), 1 << 20);
        let b = f.transfer(Time::ZERO, gpu(2), gpu(3), 1 << 20);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn pcie_links_are_per_gpu() {
        let mut f = Fabric::new(2, FabricConfig::default());
        let a = f.transfer(Time::ZERO, DeviceId::Host, gpu(0), 1 << 20);
        let b = f.transfer(Time::ZERO, DeviceId::Host, gpu(1), 1 << 20);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn control_latencies() {
        let f = Fabric::new(2, FabricConfig::default());
        assert_eq!(f.control_latency(gpu(0), gpu(1)), Duration::from_ns(500));
        assert_eq!(
            f.control_latency(gpu(0), DeviceId::Host),
            Duration::from_us(1)
        );
        assert_eq!(
            f.control_latency(DeviceId::Host, DeviceId::Host),
            Duration::ZERO
        );
    }

    #[test]
    fn reset_clears_stats() {
        let mut f = Fabric::new(2, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        f.reset();
        assert_eq!(f.nvlink_bytes(), 0);
        assert_eq!(f.max_nvlink_busy(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let mut f = Fabric::new(2, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(0), 1);
    }

    #[test]
    fn gpu_count_reported() {
        assert_eq!(Fabric::new(8, FabricConfig::default()).gpu_count(), 8);
    }

    #[test]
    fn snapshot_round_trips_port_occupancy() {
        let mut f = Fabric::new(4, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(1), 1 << 20);
        f.transfer(Time::ZERO, DeviceId::Host, gpu(2), 4096);
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);

        let mut g = Fabric::new(4, FabricConfig::default());
        let buf = w.into_vec();
        let mut r = ByteReader::new("fabric", &buf);
        g.restore(&mut r).expect("valid fabric state");
        assert_eq!(g.nvlink_bytes(), f.nvlink_bytes());
        assert_eq!(g.pcie_bytes(), f.pcie_bytes());
        // Subsequent transfers queue identically.
        let a = f.transfer(Time::ZERO, gpu(1), gpu(0), 4096);
        let b = g.transfer(Time::ZERO, gpu(1), gpu(0), 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_gpu_count_mismatch_is_rejected() {
        let f = Fabric::new(4, FabricConfig::default());
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);
        let buf = w.into_vec();
        let mut g = Fabric::new(2, FabricConfig::default());
        let mut r = ByteReader::new("fabric", &buf);
        assert!(g.restore(&mut r).is_err());
    }

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("valid plan")
    }

    #[test]
    fn empty_plan_leaves_the_data_path_identical() {
        let mut a = Fabric::new(4, FabricConfig::default());
        let mut b = Fabric::with_plan(4, FabricConfig::default(), FaultPlan::default());
        b.begin_epoch(0);
        for (from, to) in [(gpu(0), gpu(1)), (DeviceId::Host, gpu(2)), (gpu(3), gpu(0))] {
            assert_eq!(
                a.transfer(Time::ZERO, from, to, 1 << 16),
                b.transfer(Time::ZERO, from, to, 1 << 16)
            );
        }
        assert_eq!(b.fault_state().counters(), FaultCounters::default());
    }

    #[test]
    fn dead_link_reroutes_over_both_pcie_links() {
        let mut f = Fabric::with_plan(4, FabricConfig::default(), plan("down:0-1@2"));
        assert!(f.begin_epoch(1).is_empty());
        assert!(!f.link_is_down(0, 1));
        let direct = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        assert_eq!(f.pcie_bytes(), 0, "healthy link uses NVLink");

        assert_eq!(f.begin_epoch(2), vec![(0, 1)]);
        assert!(f.link_is_down(0, 1) && f.link_is_down(1, 0));
        let rerouted = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        // Two staged PCIe legs are strictly slower than the direct path.
        assert!(rerouted.arrive > direct.arrive);
        let one_leg = Duration::for_transfer(4096, 32_000_000_000) + Duration::from_us(1);
        assert_eq!(rerouted.latency_from(Time::ZERO), one_leg + one_leg);
        assert_eq!(
            f.pcie_bytes(),
            2 * 4096,
            "both endpoints' PCIe links move the payload"
        );
        let c = f.fault_state().counters();
        assert_eq!((c.reroutes, c.rerouted_bytes, c.link_faults), (1, 4096, 1));
        // The unaffected pair still takes NVLink.
        f.transfer(Time::ZERO, gpu(2), gpu(3), 4096);
        assert_eq!(f.nvlink_bytes(), 2 * 4096 * 2);
    }

    #[test]
    fn flaky_window_adds_bounded_retransmissions_deterministically() {
        let spec = "flaky:0-1@0-4:1/2,seed:11";
        let run = || {
            let mut f = Fabric::with_plan(2, FabricConfig::default(), plan(spec));
            f.begin_epoch(0);
            let mut arrivals = Vec::new();
            for _ in 0..64 {
                arrivals.push(f.transfer(Time::ZERO, gpu(0), gpu(1), 4096).arrive);
            }
            (arrivals, f.fault_state().counters().crc_retries)
        };
        let (a, retries_a) = run();
        let (b, retries_b) = run();
        assert_eq!(a, b, "same seed, same glitch stream");
        assert_eq!(retries_a, retries_b);
        assert!(retries_a > 0, "1/2 glitch rate over 64 transfers must hit");
        assert!(
            retries_a <= 64 * u64::from(MAX_CRC_RETRIES),
            "retries are bounded"
        );

        // Outside the window the same fabric is glitch-free.
        let mut f = Fabric::with_plan(2, FabricConfig::default(), plan(spec));
        f.begin_epoch(4);
        let t = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        let expected = Duration::for_transfer(4096, 300_000_000_000) + Duration::from_ns(500);
        assert_eq!(t.latency_from(Time::ZERO), expected);
        assert_eq!(f.fault_state().counters().crc_retries, 0);
    }

    #[test]
    fn reset_clears_fault_state_and_link_stats() {
        let mut f = Fabric::with_plan(4, FabricConfig::default(), plan("down:0-1@0,seed:5"));
        f.begin_epoch(0);
        f.transfer(Time::ZERO, gpu(0), gpu(1), 4096); // rerouted
        f.transfer(Time::ZERO, gpu(2), gpu(3), 4096);
        assert_ne!(f.fault_state().counters(), FaultCounters::default());
        f.reset();
        assert_eq!(f.fault_state().counters(), FaultCounters::default());
        assert_eq!(f.fault_state().links_down(), 0);
        assert!(!f.link_is_down(0, 1), "health is restored on reset");
        for ls in f.link_stats() {
            assert_eq!(ls.busy, Duration::ZERO, "{}{} busy", ls.kind, ls.gpu);
            assert_eq!(ls.bytes, 0, "{}{} bytes", ls.kind, ls.gpu);
            assert_eq!(ls.transfers, 0, "{}{} transfers", ls.kind, ls.gpu);
        }
    }

    #[test]
    fn fault_state_snapshot_rides_alongside_the_port_snapshot() {
        let mut f = Fabric::with_plan(4, FabricConfig::default(), plan("down:0-1@1,seed:3"));
        f.begin_epoch(1);
        f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);
        f.fault_state().snapshot(&mut w);
        let buf = w.into_vec();

        let mut g = Fabric::with_plan(4, FabricConfig::default(), plan("down:0-1@1,seed:3"));
        let mut r = ByteReader::new("fabric", &buf);
        g.restore(&mut r).expect("ports");
        g.fault_state_mut().restore(&mut r).expect("fault state");
        assert!(r.is_empty());
        assert!(g.link_is_down(0, 1));
        assert_eq!(g.fault_state().counters(), f.fault_state().counters());
        let a = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        let b = g.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        assert_eq!(a, b, "restored fabric schedules identically");
    }

    #[test]
    #[should_panic(expected = "fault plan names GPU 7")]
    fn plan_naming_a_missing_gpu_panics_at_construction() {
        Fabric::with_plan(4, FabricConfig::default(), plan("down:0-7@1"));
    }
}
