//! Interconnect model: NVLink fabric between GPUs, PCIe to the host.
//!
//! Matches the baseline platform of Table I: every GPU has a 300 GB/s
//! NVLink-v2 port into an all-to-all fabric, and a 32 GB/s PCIe-v4 link to
//! the host CPU. A transfer occupies both endpoints' ports for its
//! serialization time, so migration storms toward one GPU congest its
//! ingress and heavy fault traffic congests PCIe — the effects that make
//! page ping-ponging and fault-heavy policies expensive in the paper.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::{Channel, Duration, Time, Transfer};
use oasis_mem::types::DeviceId;

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Per-GPU NVLink port bandwidth in bytes/second (paper: 300 GB/s).
    pub nvlink_bytes_per_sec: u64,
    /// NVLink one-way latency.
    pub nvlink_latency: Duration,
    /// Per-GPU PCIe link bandwidth in bytes/second (paper: 32 GB/s).
    pub pcie_bytes_per_sec: u64,
    /// PCIe one-way latency.
    pub pcie_latency: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nvlink_bytes_per_sec: 300_000_000_000,
            nvlink_latency: Duration::from_ns(500),
            pcie_bytes_per_sec: 32_000_000_000,
            pcie_latency: Duration::from_us(1),
        }
    }
}

/// The system interconnect: per-GPU NVLink ports (all-to-all) plus per-GPU
/// PCIe links to the host.
#[derive(Debug, Clone)]
pub struct Fabric {
    nvlink: Vec<Channel>,
    pcie: Vec<Channel>,
    config: FabricConfig,
}

impl Fabric {
    /// Builds the fabric for `gpu_count` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn new(gpu_count: usize, config: FabricConfig) -> Self {
        assert!(gpu_count > 0, "need at least one GPU");
        Fabric {
            nvlink: (0..gpu_count)
                .map(|_| Channel::new(config.nvlink_bytes_per_sec, config.nvlink_latency))
                .collect(),
            pcie: (0..gpu_count)
                .map(|_| Channel::new(config.pcie_bytes_per_sec, config.pcie_latency))
                .collect(),
            config,
        }
    }

    /// Number of GPUs attached.
    pub fn gpu_count(&self) -> usize {
        self.nvlink.len()
    }

    /// The configuration the fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Reserves a bulk transfer of `bytes` from `from` to `to` at `now`,
    /// occupying both endpoints' ports.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (no self-transfers) or a GPU index is out of
    /// range.
    pub fn transfer(&mut self, now: Time, from: DeviceId, to: DeviceId, bytes: u64) -> Transfer {
        assert_ne!(from, to, "self-transfer on the fabric");
        match (from, to) {
            (DeviceId::Gpu(a), DeviceId::Gpu(b)) => {
                let (i, j) = (a.index(), b.index());
                // Joint reservation: the transfer starts when both ports are
                // free, then occupies both for its serialization time.
                let hint = now
                    .max(self.nvlink[i].next_free())
                    .max(self.nvlink[j].next_free());
                let t = self.nvlink[i].reserve(hint, bytes);
                let t2 = self.nvlink[j].reserve(hint, bytes);
                debug_assert_eq!(t.start, t2.start);
                t
            }
            (DeviceId::Host, DeviceId::Gpu(g)) | (DeviceId::Gpu(g), DeviceId::Host) => {
                self.pcie[g.index()].reserve(now, bytes)
            }
            (DeviceId::Host, DeviceId::Host) => unreachable!("guarded by assert_ne"),
        }
    }

    /// One-way latency for a small control message (fault packet,
    /// invalidation request/ack) between two devices. Control messages are
    /// assumed not to consume meaningful bandwidth.
    pub fn control_latency(&self, from: DeviceId, to: DeviceId) -> Duration {
        match (from, to) {
            (DeviceId::Gpu(_), DeviceId::Gpu(_)) => self.config.nvlink_latency,
            (DeviceId::Host, DeviceId::Gpu(_)) | (DeviceId::Gpu(_), DeviceId::Host) => {
                self.config.pcie_latency
            }
            (DeviceId::Host, DeviceId::Host) => Duration::ZERO,
        }
    }

    /// Total bytes moved over NVLink ports (each inter-GPU byte counts once
    /// per endpoint port).
    pub fn nvlink_bytes(&self) -> u64 {
        self.nvlink.iter().map(Channel::bytes_moved).sum()
    }

    /// Total bytes moved over PCIe links.
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie.iter().map(Channel::bytes_moved).sum()
    }

    /// Cumulative busy time of the busiest NVLink port.
    pub fn max_nvlink_busy(&self) -> Duration {
        self.nvlink
            .iter()
            .map(Channel::busy_time)
            .fold(Duration::ZERO, Duration::max)
    }

    /// Resets occupancy and statistics on all links.
    pub fn reset(&mut self) {
        for c in self.nvlink.iter_mut().chain(self.pcie.iter_mut()) {
            c.reset();
        }
    }

    /// Per-link utilization rollup, in deterministic order (all NVLink
    /// ports by GPU index, then all PCIe links). Feeds the metrics
    /// registry at report time.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        let mut out = Vec::with_capacity(self.nvlink.len() + self.pcie.len());
        for (kind, links) in [("nvlink", &self.nvlink), ("pcie", &self.pcie)] {
            for (gpu, c) in links.iter().enumerate() {
                out.push(LinkStats {
                    kind,
                    gpu,
                    busy: c.busy_time(),
                    bytes: c.bytes_moved(),
                    transfers: c.transfers(),
                });
            }
        }
        out
    }
}

/// Utilization summary for one fabric link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Link kind: `"nvlink"` or `"pcie"`.
    pub kind: &'static str,
    /// GPU index the port/link belongs to.
    pub gpu: usize,
    /// Cumulative serialization (busy) time.
    pub busy: Duration,
    /// Total bytes moved.
    pub bytes: u64,
    /// Number of transfers reserved.
    pub transfers: u64,
}

impl Snapshot for Fabric {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.nvlink.len() as u64);
        for c in self.nvlink.iter().chain(self.pcie.iter()) {
            c.snapshot(w);
        }
    }
}

impl Restore for Fabric {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n = r.usize()?;
        if n != self.nvlink.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} GPU ports, this fabric has {}",
                self.nvlink.len()
            )));
        }
        for c in self.nvlink.iter_mut().chain(self.pcie.iter_mut()) {
            c.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::types::GpuId;

    fn gpu(i: u8) -> DeviceId {
        DeviceId::Gpu(GpuId(i))
    }

    #[test]
    fn gpu_to_gpu_uses_nvlink_latency() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let t = f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        let expected = Duration::for_transfer(4096, 300_000_000_000) + Duration::from_ns(500);
        assert_eq!(t.latency_from(Time::ZERO), expected);
    }

    #[test]
    fn host_transfers_use_pcie() {
        let mut f = Fabric::new(2, FabricConfig::default());
        let t = f.transfer(Time::ZERO, DeviceId::Host, gpu(1), 4096);
        let expected = Duration::for_transfer(4096, 32_000_000_000) + Duration::from_us(1);
        assert_eq!(t.latency_from(Time::ZERO), expected);
        assert_eq!(f.pcie_bytes(), 4096);
        assert_eq!(f.nvlink_bytes(), 0);
    }

    #[test]
    fn transfers_to_same_gpu_serialize_on_its_port() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let a = f.transfer(Time::ZERO, gpu(0), gpu(3), 1 << 20);
        let b = f.transfer(Time::ZERO, gpu(1), gpu(3), 1 << 20);
        assert!(b.start >= a.depart, "ingress port must serialize");
    }

    #[test]
    fn transfers_between_disjoint_pairs_proceed_in_parallel() {
        let mut f = Fabric::new(4, FabricConfig::default());
        let a = f.transfer(Time::ZERO, gpu(0), gpu(1), 1 << 20);
        let b = f.transfer(Time::ZERO, gpu(2), gpu(3), 1 << 20);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn pcie_links_are_per_gpu() {
        let mut f = Fabric::new(2, FabricConfig::default());
        let a = f.transfer(Time::ZERO, DeviceId::Host, gpu(0), 1 << 20);
        let b = f.transfer(Time::ZERO, DeviceId::Host, gpu(1), 1 << 20);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn control_latencies() {
        let f = Fabric::new(2, FabricConfig::default());
        assert_eq!(f.control_latency(gpu(0), gpu(1)), Duration::from_ns(500));
        assert_eq!(
            f.control_latency(gpu(0), DeviceId::Host),
            Duration::from_us(1)
        );
        assert_eq!(
            f.control_latency(DeviceId::Host, DeviceId::Host),
            Duration::ZERO
        );
    }

    #[test]
    fn reset_clears_stats() {
        let mut f = Fabric::new(2, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(1), 4096);
        f.reset();
        assert_eq!(f.nvlink_bytes(), 0);
        assert_eq!(f.max_nvlink_busy(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let mut f = Fabric::new(2, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(0), 1);
    }

    #[test]
    fn gpu_count_reported() {
        assert_eq!(Fabric::new(8, FabricConfig::default()).gpu_count(), 8);
    }

    #[test]
    fn snapshot_round_trips_port_occupancy() {
        let mut f = Fabric::new(4, FabricConfig::default());
        f.transfer(Time::ZERO, gpu(0), gpu(1), 1 << 20);
        f.transfer(Time::ZERO, DeviceId::Host, gpu(2), 4096);
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);

        let mut g = Fabric::new(4, FabricConfig::default());
        let buf = w.into_vec();
        let mut r = ByteReader::new("fabric", &buf);
        g.restore(&mut r).expect("valid fabric state");
        assert_eq!(g.nvlink_bytes(), f.nvlink_bytes());
        assert_eq!(g.pcie_bytes(), f.pcie_bytes());
        // Subsequent transfers queue identically.
        let a = f.transfer(Time::ZERO, gpu(1), gpu(0), 4096);
        let b = g.transfer(Time::ZERO, gpu(1), gpu(0), 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_gpu_count_mismatch_is_rejected() {
        let f = Fabric::new(4, FabricConfig::default());
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);
        let buf = w.into_vec();
        let mut g = Fabric::new(2, FabricConfig::default());
        let mut r = ByteReader::new("fabric", &buf);
        assert!(g.restore(&mut r).is_err());
    }
}
