//! Deterministic hardware-fault plans for the interconnect and memory.
//!
//! A [`FaultPlan`] is *configuration*: a declarative schedule of hardware
//! misbehaviour (permanent NVLink link-down events, transient CRC-glitch
//! windows, ECC frame-poisoning events) plus the seed for the RNG that
//! resolves every probabilistic draw. The plan travels with
//! `SystemConfig` through the checkpoint codec, so a resumed run sees the
//! same schedule as the original.
//!
//! [`FaultState`] is the *mutable* counterpart: which links are currently
//! down, the RNG mid-stream state, and the recovery counters. It is part
//! of the simulation state proper — serialized into state digests and the
//! checkpoint's `"faults"` section — so same seed + same plan replays
//! bit-identically even across a kill/resume.

use std::collections::BTreeSet;

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::SimRng;

/// Maximum CRC retransmissions per transfer through a flaky window. The
/// link-level retry is bounded and always eventually succeeds (real NVLink
/// CRC replay is transparent); only the *latency* of the retries is
/// observable.
pub const MAX_CRC_RETRIES: u32 = 4;

/// A permanent NVLink failure between GPUs `a` and `b`, effective from the
/// start of `epoch` to the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDown {
    /// One endpoint GPU index.
    pub a: u8,
    /// The other endpoint GPU index.
    pub b: u8,
    /// Epoch at whose start the link goes down.
    pub epoch: u64,
}

/// A transient-glitch window on the NVLink pair `(a, b)`: while the
/// current epoch is in `[from_epoch, to_epoch)`, every transfer over the
/// pair suffers a CRC retransmission with probability `num/den` per
/// attempt (bounded by [`MAX_CRC_RETRIES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlakyWindow {
    /// One endpoint GPU index.
    pub a: u8,
    /// The other endpoint GPU index.
    pub b: u8,
    /// First epoch (inclusive) the window covers.
    pub from_epoch: u64,
    /// First epoch past the window (exclusive).
    pub to_epoch: u64,
    /// Glitch probability numerator.
    pub num: u64,
    /// Glitch probability denominator.
    pub den: u64,
}

/// An ECC event poisoning `frames` resident physical frames on `gpu` at
/// the start of `epoch`. Victim frames are drawn with the plan RNG from
/// the GPU's resident set in deterministic (stamp) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccEvent {
    /// GPU whose memory is struck.
    pub gpu: u8,
    /// Epoch at whose start the frames are poisoned.
    pub epoch: u64,
    /// Number of resident frames to poison.
    pub frames: u32,
}

/// A deterministic, seed-driven schedule of hardware faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the fault RNG (glitch draws, ECC victim selection).
    pub seed: u64,
    /// Permanent link-down events.
    pub link_down: Vec<LinkDown>,
    /// Transient CRC-glitch windows.
    pub flaky: Vec<FlakyWindow>,
    /// ECC frame-poisoning events.
    pub ecc: Vec<EccEvent>,
}

impl FaultPlan {
    /// Whether the plan schedules nothing (the zero-fault fast path).
    pub fn is_empty(&self) -> bool {
        self.link_down.is_empty() && self.flaky.is_empty() && self.ecc.is_empty()
    }

    /// Largest GPU index any scheduled event names, if any.
    pub fn max_gpu(&self) -> Option<u8> {
        let links = self
            .link_down
            .iter()
            .flat_map(|l| [l.a, l.b])
            .chain(self.flaky.iter().flat_map(|f| [f.a, f.b]));
        links.chain(self.ecc.iter().map(|e| e.gpu)).max()
    }

    /// Parses the CLI spec: comma-separated clauses of
    /// `seed:<n>`, `down:<a>-<b>@<epoch>`,
    /// `flaky:<a>-<b>@<from>-<to>:<num>/<den>`, and
    /// `ecc:<gpu>@<epoch>x<count>`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn pair(s: &str) -> Result<(u8, u8), String> {
            let (a, b) = s
                .split_once('-')
                .ok_or_else(|| format!("expected '<a>-<b>', got '{s}'"))?;
            let a: u8 = a.parse().map_err(|_| format!("bad GPU index '{a}'"))?;
            let b: u8 = b.parse().map_err(|_| format!("bad GPU index '{b}'"))?;
            if a == b {
                return Err(format!("link endpoints must differ, got '{s}'"));
            }
            Ok((a, b))
        }
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad {what} '{s}'"))
        }

        let mut plan = FaultPlan::default();
        for clause in spec.split(',').filter(|c| !c.is_empty()) {
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause '{clause}' has no ':'"))?;
            match kind {
                "seed" => plan.seed = num(body, "seed")?,
                "down" => {
                    let (ends, epoch) = body
                        .split_once('@')
                        .ok_or_else(|| format!("down clause '{body}' needs '@<epoch>'"))?;
                    let (a, b) = pair(ends)?;
                    plan.link_down.push(LinkDown {
                        a,
                        b,
                        epoch: num(epoch, "epoch")?,
                    });
                }
                "flaky" => {
                    let (ends, rest) = body
                        .split_once('@')
                        .ok_or_else(|| format!("flaky clause '{body}' needs '@<from>-<to>'"))?;
                    let (a, b) = pair(ends)?;
                    let (window, prob) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("flaky clause '{body}' needs ':<num>/<den>'"))?;
                    let (from, to) = window
                        .split_once('-')
                        .ok_or_else(|| format!("flaky window '{window}' needs '<from>-<to>'"))?;
                    let (n, d) = prob
                        .split_once('/')
                        .ok_or_else(|| format!("flaky probability '{prob}' needs '<num>/<den>'"))?;
                    let w = FlakyWindow {
                        a,
                        b,
                        from_epoch: num(from, "epoch")?,
                        to_epoch: num(to, "epoch")?,
                        num: num(n, "probability numerator")?,
                        den: num(d, "probability denominator")?,
                    };
                    if w.den == 0 {
                        return Err(format!("flaky denominator must be positive in '{clause}'"));
                    }
                    if w.to_epoch <= w.from_epoch {
                        return Err(format!("flaky window is empty in '{clause}'"));
                    }
                    plan.flaky.push(w);
                }
                "ecc" => {
                    let (gpu, rest) = body
                        .split_once('@')
                        .ok_or_else(|| format!("ecc clause '{body}' needs '@<epoch>x<count>'"))?;
                    let (epoch, count) = rest
                        .split_once('x')
                        .ok_or_else(|| format!("ecc clause '{body}' needs '<epoch>x<count>'"))?;
                    let e = EccEvent {
                        gpu: num(gpu, "GPU index")?,
                        epoch: num(epoch, "epoch")?,
                        frames: num(count, "frame count")?,
                    };
                    if e.frames == 0 {
                        return Err(format!("ecc frame count must be positive in '{clause}'"));
                    }
                    plan.ecc.push(e);
                }
                other => return Err(format!("unknown fault clause kind '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Serializes the plan into a config section.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.seed);
        w.u64(self.link_down.len() as u64);
        for l in &self.link_down {
            w.u8(l.a);
            w.u8(l.b);
            w.u64(l.epoch);
        }
        w.u64(self.flaky.len() as u64);
        for fw in &self.flaky {
            w.u8(fw.a);
            w.u8(fw.b);
            w.u64(fw.from_epoch);
            w.u64(fw.to_epoch);
            w.u64(fw.num);
            w.u64(fw.den);
        }
        w.u64(self.ecc.len() as u64);
        for e in &self.ecc {
            w.u8(e.gpu);
            w.u64(e.epoch);
            w.u32(e.frames);
        }
    }

    /// Deserializes a plan written by [`FaultPlan::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a malformed payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<FaultPlan, CodecError> {
        let seed = r.u64()?;
        let n = r.usize()?;
        let mut link_down = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            link_down.push(LinkDown {
                a: r.u8()?,
                b: r.u8()?,
                epoch: r.u64()?,
            });
        }
        let n = r.usize()?;
        let mut flaky = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            flaky.push(FlakyWindow {
                a: r.u8()?,
                b: r.u8()?,
                from_epoch: r.u64()?,
                to_epoch: r.u64()?,
                num: r.u64()?,
                den: r.u64()?,
            });
        }
        let n = r.usize()?;
        let mut ecc = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ecc.push(EccEvent {
                gpu: r.u8()?,
                epoch: r.u64()?,
                frames: r.u32()?,
            });
        }
        Ok(FaultPlan {
            seed,
            link_down,
            flaky,
            ecc,
        })
    }
}

/// Aggregate recovery counters, surfaced through the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// CRC retransmissions performed on glitched transfers.
    pub crc_retries: u64,
    /// GPU↔GPU transfers rerouted over the PCIe fallback path.
    pub reroutes: u64,
    /// Payload bytes that took the fallback path.
    pub rerouted_bytes: u64,
    /// Permanent link-down events applied so far.
    pub link_faults: u64,
}

/// Mutable hardware-fault state: current link health, the fault RNG, and
/// recovery counters. Part of the simulation state (digested and
/// checkpointed), unlike the [`FaultPlan`] which is configuration.
#[derive(Debug, Clone)]
pub struct FaultState {
    rng: SimRng,
    epoch: u64,
    down: BTreeSet<(u8, u8)>,
    counters: FaultCounters,
}

fn norm(a: u8, b: u8) -> (u8, u8) {
    (a.min(b), a.max(b))
}

impl FaultState {
    /// Fresh state for a plan: RNG seeded, all links healthy.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultState {
            rng: SimRng::seed_from_u64(plan.seed),
            epoch: 0,
            down: BTreeSet::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The epoch most recently announced via `begin_epoch`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the NVLink pair `(a, b)` is permanently down.
    pub fn is_down(&self, a: u8, b: u8) -> bool {
        !self.down.is_empty() && self.down.contains(&norm(a, b))
    }

    /// Number of link pairs currently down.
    pub fn links_down(&self) -> usize {
        self.down.len()
    }

    /// The aggregate recovery counters.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    pub(crate) fn mark_down(&mut self, a: u8, b: u8) -> bool {
        let fresh = self.down.insert(norm(a, b));
        if fresh {
            self.counters.link_faults += 1;
        }
        fresh
    }

    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    pub(crate) fn note_reroute(&mut self, bytes: u64) {
        self.counters.reroutes += 1;
        self.counters.rerouted_bytes += bytes;
    }

    pub(crate) fn note_crc_retry(&mut self) {
        self.counters.crc_retries += 1;
    }

    pub(crate) fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

impl Snapshot for FaultState {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.rng.snapshot(w);
        w.u64(self.epoch);
        w.u64(self.down.len() as u64);
        for (a, b) in &self.down {
            w.u8(*a);
            w.u8(*b);
        }
        for v in [
            self.counters.crc_retries,
            self.counters.reroutes,
            self.counters.rerouted_bytes,
            self.counters.link_faults,
        ] {
            w.u64(v);
        }
    }
}

impl Restore for FaultState {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.rng.restore(r)?;
        self.epoch = r.u64()?;
        let n = r.usize()?;
        self.down.clear();
        for _ in 0..n {
            let (a, b) = (r.u8()?, r.u8()?);
            if a >= b {
                return Err(r.malformed(format!("down-link pair ({a},{b}) is not normalized")));
            }
            if !self.down.insert((a, b)) {
                return Err(r.malformed(format!("down-link pair ({a},{b}) appears twice")));
            }
        }
        self.counters.crc_retries = r.u64()?;
        self.counters.reroutes = r.u64()?;
        self.counters.rerouted_bytes = r.u64()?;
        self.counters.link_faults = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::default().max_gpu(), None);
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("down:0-1@2,flaky:2-3@1-5:1/8,ecc:0@3x2,seed:7").expect("parse");
        assert_eq!(p.seed, 7);
        assert_eq!(
            p.link_down,
            vec![LinkDown {
                a: 0,
                b: 1,
                epoch: 2
            }]
        );
        assert_eq!(
            p.flaky,
            vec![FlakyWindow {
                a: 2,
                b: 3,
                from_epoch: 1,
                to_epoch: 5,
                num: 1,
                den: 8
            }]
        );
        assert_eq!(
            p.ecc,
            vec![EccEvent {
                gpu: 0,
                epoch: 3,
                frames: 2
            }]
        );
        assert_eq!(p.max_gpu(), Some(3));
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "frob:1",
            "down:0-0@1",
            "down:0-1",
            "flaky:0-1@3-3:1/8",
            "flaky:0-1@1-3:1/0",
            "ecc:0@1x0",
            "ecc:0@1",
            "seedless",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn plan_round_trips_through_the_codec() {
        let p = FaultPlan::parse("down:0-1@2,flaky:2-3@1-5:1/8,ecc:1@3x2,seed:9").expect("parse");
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new("fault-plan", &buf);
        let q = FaultPlan::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(p, q);
    }

    #[test]
    fn state_round_trips_and_rejects_junk() {
        let plan = FaultPlan::parse("seed:3,down:0-2@0").expect("parse");
        let mut s = FaultState::new(&plan);
        s.set_epoch(4);
        assert!(s.mark_down(2, 0), "first mark is fresh");
        assert!(!s.mark_down(0, 2), "re-mark is idempotent");
        s.note_reroute(4096);
        s.note_crc_retry();
        let _ = s.rng().next_u64();

        let mut w = ByteWriter::new();
        s.snapshot(&mut w);
        let buf = w.into_vec();
        let mut t = FaultState::new(&plan);
        let mut r = ByteReader::new("faults", &buf);
        t.restore(&mut r).expect("valid state");
        assert!(r.is_empty());
        assert!(t.is_down(0, 2) && t.is_down(2, 0));
        assert_eq!(t.epoch(), 4);
        assert_eq!(t.counters(), s.counters());
        assert_eq!(t.counters().reroutes, 1);
        assert_eq!(t.counters().link_faults, 1);
        // The RNG stream continues from the snapshot point.
        assert_eq!(t.rng().next_u64(), s.rng().next_u64());

        // A non-normalized pair is rejected.
        let mut w = ByteWriter::new();
        s.rng().snapshot(&mut w);
        w.u64(0); // epoch
        w.u64(1); // one pair
        w.u8(2);
        w.u8(1); // (2,1) — not normalized
        for _ in 0..4 {
            w.u64(0);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new("faults", &buf);
        assert!(t.restore(&mut r).is_err());
    }
}
