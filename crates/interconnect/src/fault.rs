//! Deterministic hardware-fault plans for the interconnect and memory.
//!
//! A [`FaultPlan`] is *configuration*: a declarative schedule of hardware
//! misbehaviour (permanent NVLink link-down events, transient CRC-glitch
//! windows, ECC frame-poisoning events) plus the seed for the RNG that
//! resolves every probabilistic draw. The plan travels with
//! `SystemConfig` through the checkpoint codec, so a resumed run sees the
//! same schedule as the original.
//!
//! [`FaultState`] is the *mutable* counterpart: which links are currently
//! down, the RNG mid-stream state, and the recovery counters. It is part
//! of the simulation state proper — serialized into state digests and the
//! checkpoint's `"faults"` section — so same seed + same plan replays
//! bit-identically even across a kill/resume.

use std::collections::BTreeSet;
use std::fmt;

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::SimRng;

/// A typed fault-plan spec failure, naming the offending clause or token.
///
/// Produced by [`FaultPlan::parse`] (lexical/structural problems, clause
/// semantics, overlapping flaky windows) and [`FaultPlan::validate_for`]
/// (GPU indices outside the system being built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A clause is missing a required separator or field.
    MissingSeparator {
        /// The clause as written.
        clause: String,
        /// What the clause needed (e.g. `"'@<epoch>'"`).
        missing: &'static str,
    },
    /// A numeric token failed to parse.
    BadNumber {
        /// The clause as written.
        clause: String,
        /// The offending token.
        token: String,
        /// What the token was supposed to be.
        what: &'static str,
    },
    /// A link clause names the same GPU for both endpoints.
    SameEndpoints {
        /// The clause as written.
        clause: String,
    },
    /// A flaky clause has a zero glitch-probability denominator.
    ZeroDenominator {
        /// The clause as written.
        clause: String,
    },
    /// A flaky clause's window covers no epochs (`to <= from`).
    EmptyWindow {
        /// The clause as written.
        clause: String,
    },
    /// An ecc clause poisons zero frames.
    ZeroFrames {
        /// The clause as written.
        clause: String,
    },
    /// The clause kind before the first `:` is not recognized.
    UnknownKind {
        /// The clause as written.
        clause: String,
        /// The unrecognized kind token.
        kind: String,
    },
    /// Two flaky windows on the same link pair overlap in time, making
    /// the glitch probability of the shared epochs ambiguous.
    OverlappingWindows {
        /// The earlier clause, re-rendered in spec grammar.
        first: String,
        /// The overlapping clause, re-rendered in spec grammar.
        second: String,
    },
    /// The plan names a GPU the system being validated does not have.
    GpuOutOfRange {
        /// The offending clause, re-rendered in spec grammar.
        clause: String,
        /// The out-of-range GPU index.
        gpu: u8,
        /// GPUs actually present.
        gpu_count: usize,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::MissingSeparator { clause, missing } => {
                write!(f, "clause '{clause}' needs {missing}")
            }
            FaultSpecError::BadNumber {
                clause,
                token,
                what,
            } => write!(f, "bad {what} '{token}' in clause '{clause}'"),
            FaultSpecError::SameEndpoints { clause } => {
                write!(f, "link endpoints must differ in clause '{clause}'")
            }
            FaultSpecError::ZeroDenominator { clause } => {
                write!(f, "flaky denominator must be positive in clause '{clause}'")
            }
            FaultSpecError::EmptyWindow { clause } => {
                write!(f, "flaky window is empty in clause '{clause}'")
            }
            FaultSpecError::ZeroFrames { clause } => {
                write!(f, "ecc frame count must be positive in clause '{clause}'")
            }
            FaultSpecError::UnknownKind { clause, kind } => {
                write!(f, "unknown fault clause kind '{kind}' in clause '{clause}'")
            }
            FaultSpecError::OverlappingWindows { first, second } => write!(
                f,
                "flaky windows '{first}' and '{second}' overlap on the same link pair"
            ),
            FaultSpecError::GpuOutOfRange {
                clause,
                gpu,
                gpu_count,
            } => write!(
                f,
                "clause '{clause}' names GPU {gpu} but only {gpu_count} GPUs exist"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Maximum CRC retransmissions per transfer through a flaky window. The
/// link-level retry is bounded and always eventually succeeds (real NVLink
/// CRC replay is transparent); only the *latency* of the retries is
/// observable.
pub const MAX_CRC_RETRIES: u32 = 4;

/// A permanent NVLink failure between GPUs `a` and `b`, effective from the
/// start of `epoch` to the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDown {
    /// One endpoint GPU index.
    pub a: u8,
    /// The other endpoint GPU index.
    pub b: u8,
    /// Epoch at whose start the link goes down.
    pub epoch: u64,
}

/// A transient-glitch window on the NVLink pair `(a, b)`: while the
/// current epoch is in `[from_epoch, to_epoch)`, every transfer over the
/// pair suffers a CRC retransmission with probability `num/den` per
/// attempt (bounded by [`MAX_CRC_RETRIES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlakyWindow {
    /// One endpoint GPU index.
    pub a: u8,
    /// The other endpoint GPU index.
    pub b: u8,
    /// First epoch (inclusive) the window covers.
    pub from_epoch: u64,
    /// First epoch past the window (exclusive).
    pub to_epoch: u64,
    /// Glitch probability numerator.
    pub num: u64,
    /// Glitch probability denominator.
    pub den: u64,
}

/// An ECC event poisoning `frames` resident physical frames on `gpu` at
/// the start of `epoch`. Victim frames are drawn with the plan RNG from
/// the GPU's resident set in deterministic (stamp) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccEvent {
    /// GPU whose memory is struck.
    pub gpu: u8,
    /// Epoch at whose start the frames are poisoned.
    pub epoch: u64,
    /// Number of resident frames to poison.
    pub frames: u32,
}

/// A deterministic, seed-driven schedule of hardware faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the fault RNG (glitch draws, ECC victim selection).
    pub seed: u64,
    /// Permanent link-down events.
    pub link_down: Vec<LinkDown>,
    /// Transient CRC-glitch windows.
    pub flaky: Vec<FlakyWindow>,
    /// ECC frame-poisoning events.
    pub ecc: Vec<EccEvent>,
}

impl FaultPlan {
    /// Whether the plan schedules nothing (the zero-fault fast path).
    pub fn is_empty(&self) -> bool {
        self.link_down.is_empty() && self.flaky.is_empty() && self.ecc.is_empty()
    }

    /// Largest GPU index any scheduled event names, if any.
    pub fn max_gpu(&self) -> Option<u8> {
        let links = self
            .link_down
            .iter()
            .flat_map(|l| [l.a, l.b])
            .chain(self.flaky.iter().flat_map(|f| [f.a, f.b]));
        links.chain(self.ecc.iter().map(|e| e.gpu)).max()
    }

    /// Parses the CLI spec: comma-separated clauses of
    /// `seed:<n>`, `down:<a>-<b>@<epoch>`,
    /// `flaky:<a>-<b>@<from>-<to>:<num>/<den>`, and
    /// `ecc:<gpu>@<epoch>x<count>`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`FaultSpecError`] naming the first malformed
    /// clause or token, including overlapping flaky windows on the same
    /// link pair (the glitch probability of the shared epochs would be
    /// ambiguous).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        fn pair(clause: &str, s: &str) -> Result<(u8, u8), FaultSpecError> {
            let (a, b) = s.split_once('-').ok_or(FaultSpecError::MissingSeparator {
                clause: clause.to_string(),
                missing: "'<a>-<b>' endpoints",
            })?;
            let a: u8 = num(clause, a, "GPU index")?;
            let b: u8 = num(clause, b, "GPU index")?;
            if a == b {
                return Err(FaultSpecError::SameEndpoints {
                    clause: clause.to_string(),
                });
            }
            Ok((a, b))
        }
        fn num<T: std::str::FromStr>(
            clause: &str,
            s: &str,
            what: &'static str,
        ) -> Result<T, FaultSpecError> {
            s.parse().map_err(|_| FaultSpecError::BadNumber {
                clause: clause.to_string(),
                token: s.to_string(),
                what,
            })
        }
        fn sep(clause: &str, missing: &'static str) -> FaultSpecError {
            FaultSpecError::MissingSeparator {
                clause: clause.to_string(),
                missing,
            }
        }

        let mut plan = FaultPlan::default();
        for clause in spec.split(',').filter(|c| !c.is_empty()) {
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| sep(clause, "a ':' after the clause kind"))?;
            match kind {
                "seed" => plan.seed = num(clause, body, "seed")?,
                "down" => {
                    let (ends, epoch) = body
                        .split_once('@')
                        .ok_or_else(|| sep(clause, "'@<epoch>'"))?;
                    let (a, b) = pair(clause, ends)?;
                    plan.link_down.push(LinkDown {
                        a,
                        b,
                        epoch: num(clause, epoch, "epoch")?,
                    });
                }
                "flaky" => {
                    let (ends, rest) = body
                        .split_once('@')
                        .ok_or_else(|| sep(clause, "'@<from>-<to>'"))?;
                    let (a, b) = pair(clause, ends)?;
                    let (window, prob) = rest
                        .split_once(':')
                        .ok_or_else(|| sep(clause, "':<num>/<den>'"))?;
                    let (from, to) = window
                        .split_once('-')
                        .ok_or_else(|| sep(clause, "'<from>-<to>' window bounds"))?;
                    let (n, d) = prob
                        .split_once('/')
                        .ok_or_else(|| sep(clause, "'<num>/<den>' probability"))?;
                    let w = FlakyWindow {
                        a,
                        b,
                        from_epoch: num(clause, from, "epoch")?,
                        to_epoch: num(clause, to, "epoch")?,
                        num: num(clause, n, "probability numerator")?,
                        den: num(clause, d, "probability denominator")?,
                    };
                    if w.den == 0 {
                        return Err(FaultSpecError::ZeroDenominator {
                            clause: clause.to_string(),
                        });
                    }
                    if w.to_epoch <= w.from_epoch {
                        return Err(FaultSpecError::EmptyWindow {
                            clause: clause.to_string(),
                        });
                    }
                    if let Some(prev) = plan.flaky.iter().find(|p| {
                        norm(p.a, p.b) == norm(w.a, w.b)
                            && p.from_epoch.max(w.from_epoch) < p.to_epoch.min(w.to_epoch)
                    }) {
                        return Err(FaultSpecError::OverlappingWindows {
                            first: flaky_clause(prev),
                            second: clause.to_string(),
                        });
                    }
                    plan.flaky.push(w);
                }
                "ecc" => {
                    let (gpu, rest) = body
                        .split_once('@')
                        .ok_or_else(|| sep(clause, "'@<epoch>x<count>'"))?;
                    let (epoch, count) = rest
                        .split_once('x')
                        .ok_or_else(|| sep(clause, "'<epoch>x<count>'"))?;
                    let e = EccEvent {
                        gpu: num(clause, gpu, "GPU index")?,
                        epoch: num(clause, epoch, "epoch")?,
                        frames: num(clause, count, "frame count")?,
                    };
                    if e.frames == 0 {
                        return Err(FaultSpecError::ZeroFrames {
                            clause: clause.to_string(),
                        });
                    }
                    plan.ecc.push(e);
                }
                other => {
                    return Err(FaultSpecError::UnknownKind {
                        clause: clause.to_string(),
                        kind: other.to_string(),
                    })
                }
            }
        }
        Ok(plan)
    }

    /// Checks that every GPU index the plan names fits a system of
    /// `gpu_count` GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError::GpuOutOfRange`] naming the first
    /// offending clause (in spec grammar) and its out-of-range index.
    pub fn validate_for(&self, gpu_count: usize) -> Result<(), FaultSpecError> {
        let bad = |clause: String, gpu: u8| FaultSpecError::GpuOutOfRange {
            clause,
            gpu,
            gpu_count,
        };
        for l in &self.link_down {
            if let Some(&g) = [l.a, l.b].iter().find(|&&g| g as usize >= gpu_count) {
                return Err(bad(down_clause(l), g));
            }
        }
        for w in &self.flaky {
            if let Some(&g) = [w.a, w.b].iter().find(|&&g| g as usize >= gpu_count) {
                return Err(bad(flaky_clause(w), g));
            }
        }
        for e in &self.ecc {
            if e.gpu as usize >= gpu_count {
                return Err(bad(ecc_clause(e), e.gpu));
            }
        }
        Ok(())
    }

    /// Renders the plan back into the spec grammar accepted by
    /// [`FaultPlan::parse`], `seed` clause first. Round-trips:
    /// `parse(&p.to_spec()) == Ok(p)` for any plan `parse` accepts.
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed:{}", self.seed);
        for l in &self.link_down {
            out.push(',');
            out.push_str(&down_clause(l));
        }
        for w in &self.flaky {
            out.push(',');
            out.push_str(&flaky_clause(w));
        }
        for e in &self.ecc {
            out.push(',');
            out.push_str(&ecc_clause(e));
        }
        out
    }

    /// Serializes the plan into a config section.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.seed);
        w.u64(self.link_down.len() as u64);
        for l in &self.link_down {
            w.u8(l.a);
            w.u8(l.b);
            w.u64(l.epoch);
        }
        w.u64(self.flaky.len() as u64);
        for fw in &self.flaky {
            w.u8(fw.a);
            w.u8(fw.b);
            w.u64(fw.from_epoch);
            w.u64(fw.to_epoch);
            w.u64(fw.num);
            w.u64(fw.den);
        }
        w.u64(self.ecc.len() as u64);
        for e in &self.ecc {
            w.u8(e.gpu);
            w.u64(e.epoch);
            w.u32(e.frames);
        }
    }

    /// Deserializes a plan written by [`FaultPlan::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a malformed payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<FaultPlan, CodecError> {
        let seed = r.u64()?;
        let n = r.usize()?;
        let mut link_down = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            link_down.push(LinkDown {
                a: r.u8()?,
                b: r.u8()?,
                epoch: r.u64()?,
            });
        }
        let n = r.usize()?;
        let mut flaky = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            flaky.push(FlakyWindow {
                a: r.u8()?,
                b: r.u8()?,
                from_epoch: r.u64()?,
                to_epoch: r.u64()?,
                num: r.u64()?,
                den: r.u64()?,
            });
        }
        let n = r.usize()?;
        let mut ecc = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ecc.push(EccEvent {
                gpu: r.u8()?,
                epoch: r.u64()?,
                frames: r.u32()?,
            });
        }
        Ok(FaultPlan {
            seed,
            link_down,
            flaky,
            ecc,
        })
    }
}

/// Aggregate recovery counters, surfaced through the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// CRC retransmissions performed on glitched transfers.
    pub crc_retries: u64,
    /// GPU↔GPU transfers rerouted over the PCIe fallback path.
    pub reroutes: u64,
    /// Payload bytes that took the fallback path.
    pub rerouted_bytes: u64,
    /// Permanent link-down events applied so far.
    pub link_faults: u64,
}

/// Mutable hardware-fault state: current link health, the fault RNG, and
/// recovery counters. Part of the simulation state (digested and
/// checkpointed), unlike the [`FaultPlan`] which is configuration.
#[derive(Debug, Clone)]
pub struct FaultState {
    rng: SimRng,
    epoch: u64,
    down: BTreeSet<(u8, u8)>,
    counters: FaultCounters,
}

fn norm(a: u8, b: u8) -> (u8, u8) {
    (a.min(b), a.max(b))
}

fn down_clause(l: &LinkDown) -> String {
    format!("down:{}-{}@{}", l.a, l.b, l.epoch)
}

fn flaky_clause(w: &FlakyWindow) -> String {
    format!(
        "flaky:{}-{}@{}-{}:{}/{}",
        w.a, w.b, w.from_epoch, w.to_epoch, w.num, w.den
    )
}

fn ecc_clause(e: &EccEvent) -> String {
    format!("ecc:{}@{}x{}", e.gpu, e.epoch, e.frames)
}

impl FaultState {
    /// Fresh state for a plan: RNG seeded, all links healthy.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultState {
            rng: SimRng::seed_from_u64(plan.seed),
            epoch: 0,
            down: BTreeSet::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The epoch most recently announced via `begin_epoch`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the NVLink pair `(a, b)` is permanently down.
    pub fn is_down(&self, a: u8, b: u8) -> bool {
        !self.down.is_empty() && self.down.contains(&norm(a, b))
    }

    /// Number of link pairs currently down.
    pub fn links_down(&self) -> usize {
        self.down.len()
    }

    /// The aggregate recovery counters.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    pub(crate) fn mark_down(&mut self, a: u8, b: u8) -> bool {
        let fresh = self.down.insert(norm(a, b));
        if fresh {
            self.counters.link_faults += 1;
        }
        fresh
    }

    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    pub(crate) fn note_reroute(&mut self, bytes: u64) {
        self.counters.reroutes += 1;
        self.counters.rerouted_bytes += bytes;
    }

    pub(crate) fn note_crc_retry(&mut self) {
        self.counters.crc_retries += 1;
    }

    pub(crate) fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

impl Snapshot for FaultState {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.rng.snapshot(w);
        w.u64(self.epoch);
        w.u64(self.down.len() as u64);
        for (a, b) in &self.down {
            w.u8(*a);
            w.u8(*b);
        }
        for v in [
            self.counters.crc_retries,
            self.counters.reroutes,
            self.counters.rerouted_bytes,
            self.counters.link_faults,
        ] {
            w.u64(v);
        }
    }
}

impl Restore for FaultState {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.rng.restore(r)?;
        self.epoch = r.u64()?;
        let n = r.usize()?;
        self.down.clear();
        for _ in 0..n {
            let (a, b) = (r.u8()?, r.u8()?);
            if a >= b {
                return Err(r.malformed(format!("down-link pair ({a},{b}) is not normalized")));
            }
            if !self.down.insert((a, b)) {
                return Err(r.malformed(format!("down-link pair ({a},{b}) appears twice")));
            }
        }
        self.counters.crc_retries = r.u64()?;
        self.counters.reroutes = r.u64()?;
        self.counters.rerouted_bytes = r.u64()?;
        self.counters.link_faults = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::default().max_gpu(), None);
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("down:0-1@2,flaky:2-3@1-5:1/8,ecc:0@3x2,seed:7").expect("parse");
        assert_eq!(p.seed, 7);
        assert_eq!(
            p.link_down,
            vec![LinkDown {
                a: 0,
                b: 1,
                epoch: 2
            }]
        );
        assert_eq!(
            p.flaky,
            vec![FlakyWindow {
                a: 2,
                b: 3,
                from_epoch: 1,
                to_epoch: 5,
                num: 1,
                den: 8
            }]
        );
        assert_eq!(
            p.ecc,
            vec![EccEvent {
                gpu: 0,
                epoch: 3,
                frames: 2
            }]
        );
        assert_eq!(p.max_gpu(), Some(3));
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "frob:1",
            "down:0-0@1",
            "down:0-1",
            "flaky:0-1@3-3:1/8",
            "flaky:0-1@1-3:1/0",
            "ecc:0@1x0",
            "ecc:0@1",
            "seedless",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn parse_reports_unknown_kind() {
        assert_eq!(
            FaultPlan::parse("frob:1"),
            Err(FaultSpecError::UnknownKind {
                clause: "frob:1".into(),
                kind: "frob".into()
            })
        );
    }

    #[test]
    fn parse_reports_missing_separators() {
        match FaultPlan::parse("seedless") {
            Err(FaultSpecError::MissingSeparator { clause, .. }) => assert_eq!(clause, "seedless"),
            other => panic!("expected MissingSeparator, got {other:?}"),
        }
        match FaultPlan::parse("down:0-1") {
            Err(FaultSpecError::MissingSeparator { clause, missing }) => {
                assert_eq!(clause, "down:0-1");
                assert!(missing.contains("@<epoch>"), "unhelpful hint: {missing}");
            }
            other => panic!("expected MissingSeparator, got {other:?}"),
        }
    }

    #[test]
    fn parse_reports_bad_numbers_with_the_offending_token() {
        match FaultPlan::parse("down:0-zap@1") {
            Err(FaultSpecError::BadNumber { token, what, .. }) => {
                assert_eq!(token, "zap");
                assert_eq!(what, "GPU index");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
        // u8 range enforcement: 300 is not a valid GPU index token.
        match FaultPlan::parse("ecc:300@1x1") {
            Err(FaultSpecError::BadNumber { token, what, .. }) => {
                assert_eq!(token, "300");
                assert_eq!(what, "GPU index");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn parse_reports_same_endpoints() {
        assert_eq!(
            FaultPlan::parse("down:2-2@1"),
            Err(FaultSpecError::SameEndpoints {
                clause: "down:2-2@1".into()
            })
        );
    }

    #[test]
    fn parse_reports_degenerate_flaky_and_ecc_clauses() {
        assert_eq!(
            FaultPlan::parse("flaky:0-1@1-3:1/0"),
            Err(FaultSpecError::ZeroDenominator {
                clause: "flaky:0-1@1-3:1/0".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("flaky:0-1@3-3:1/8"),
            Err(FaultSpecError::EmptyWindow {
                clause: "flaky:0-1@3-3:1/8".into()
            })
        );
        assert_eq!(
            FaultPlan::parse("ecc:0@1x0"),
            Err(FaultSpecError::ZeroFrames {
                clause: "ecc:0@1x0".into()
            })
        );
    }

    #[test]
    fn parse_rejects_overlapping_flaky_windows() {
        // Same pair (order-insensitive), windows [1,5) and [4,8) share epoch 4.
        match FaultPlan::parse("flaky:0-1@1-5:1/8,flaky:1-0@4-8:1/4") {
            Err(FaultSpecError::OverlappingWindows { first, second }) => {
                assert_eq!(first, "flaky:0-1@1-5:1/8");
                assert_eq!(second, "flaky:1-0@4-8:1/4");
            }
            other => panic!("expected OverlappingWindows, got {other:?}"),
        }
        // Adjacent windows ([1,5) then [5,8)) do not overlap.
        assert!(FaultPlan::parse("flaky:0-1@1-5:1/8,flaky:0-1@5-8:1/4").is_ok());
        // Same epochs on a different pair is fine.
        assert!(FaultPlan::parse("flaky:0-1@1-5:1/8,flaky:2-3@1-5:1/4").is_ok());
    }

    #[test]
    fn validate_for_rejects_out_of_range_gpu_ids() {
        let p = FaultPlan::parse("seed:1,down:0-3@1,ecc:2@1x1").expect("parse");
        assert!(p.validate_for(4).is_ok());
        match p.validate_for(3) {
            Err(FaultSpecError::GpuOutOfRange {
                clause,
                gpu,
                gpu_count,
            }) => {
                assert_eq!(clause, "down:0-3@1");
                assert_eq!(gpu, 3);
                assert_eq!(gpu_count, 3);
                // The rendered message names the GPU for CLI surfacing.
                let msg = FaultSpecError::GpuOutOfRange {
                    clause,
                    gpu,
                    gpu_count,
                }
                .to_string();
                assert!(msg.contains("GPU 3"), "message lacks GPU id: {msg}");
            }
            other => panic!("expected GpuOutOfRange, got {other:?}"),
        }
        match p.validate_for(2) {
            Err(FaultSpecError::GpuOutOfRange { clause, gpu, .. }) => {
                assert_eq!(clause, "down:0-3@1");
                assert_eq!(gpu, 3);
            }
            other => panic!("expected GpuOutOfRange, got {other:?}"),
        }
        let ecc_only = FaultPlan::parse("ecc:2@1x1").expect("parse");
        match ecc_only.validate_for(2) {
            Err(FaultSpecError::GpuOutOfRange { clause, gpu, .. }) => {
                assert_eq!(clause, "ecc:2@1x1");
                assert_eq!(gpu, 2);
            }
            other => panic!("expected GpuOutOfRange, got {other:?}"),
        }
        // The empty plan fits any system, even a 0-GPU one.
        assert!(FaultPlan::default().validate_for(0).is_ok());
    }

    #[test]
    fn to_spec_round_trips_through_parse() {
        for spec in [
            "seed:0",
            "seed:7,down:0-1@2,flaky:2-3@1-5:1/8,ecc:0@3x2",
            "seed:9,down:0-1@0,down:1-2@3,flaky:0-1@1-5:1/8,flaky:0-1@5-9:3/4,ecc:1@2x1",
        ] {
            let p = FaultPlan::parse(spec).expect("parse");
            let rendered = p.to_spec();
            let q = FaultPlan::parse(&rendered).expect("re-parse rendered spec");
            assert_eq!(p, q, "round-trip changed the plan for '{spec}'");
        }
        assert_eq!(FaultPlan::default().to_spec(), "seed:0");
    }

    #[test]
    fn plan_round_trips_through_the_codec() {
        let p = FaultPlan::parse("down:0-1@2,flaky:2-3@1-5:1/8,ecc:1@3x2,seed:9").expect("parse");
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new("fault-plan", &buf);
        let q = FaultPlan::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(p, q);
    }

    #[test]
    fn state_round_trips_and_rejects_junk() {
        let plan = FaultPlan::parse("seed:3,down:0-2@0").expect("parse");
        let mut s = FaultState::new(&plan);
        s.set_epoch(4);
        assert!(s.mark_down(2, 0), "first mark is fresh");
        assert!(!s.mark_down(0, 2), "re-mark is idempotent");
        s.note_reroute(4096);
        s.note_crc_retry();
        let _ = s.rng().next_u64();

        let mut w = ByteWriter::new();
        s.snapshot(&mut w);
        let buf = w.into_vec();
        let mut t = FaultState::new(&plan);
        let mut r = ByteReader::new("faults", &buf);
        t.restore(&mut r).expect("valid state");
        assert!(r.is_empty());
        assert!(t.is_down(0, 2) && t.is_down(2, 0));
        assert_eq!(t.epoch(), 4);
        assert_eq!(t.counters(), s.counters());
        assert_eq!(t.counters().reroutes, 1);
        assert_eq!(t.counters().link_faults, 1);
        // The RNG stream continues from the snapshot point.
        assert_eq!(t.rng().next_u64(), s.rng().next_u64());

        // A non-normalized pair is rejected.
        let mut w = ByteWriter::new();
        s.rng().snapshot(&mut w);
        w.u64(0); // epoch
        w.u64(1); // one pair
        w.u8(2);
        w.u8(1); // (2,1) — not normalized
        for _ in 0..4 {
            w.u64(0);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new("faults", &buf);
        assert!(t.restore(&mut r).is_err());
    }
}
