//! Counters collected by the UVM driver.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};

/// Event counters accumulated while the driver resolves faults.
///
/// These feed the paper's Fig. 24 (total GPU page faults) and the
/// per-policy activity breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UvmStats {
    /// Far faults (translation misses) delivered to the driver.
    pub far_faults: u64,
    /// Page-protection (write) faults delivered to the driver.
    pub protection_faults: u64,
    /// Pages migrated by fault resolution (on-touch style).
    pub migrations: u64,
    /// Pages migrated because a hardware access counter hit its threshold.
    pub counter_migrations: u64,
    /// Read-only duplicates created.
    pub duplications: u64,
    /// Write-collapses performed (all duplicates of a page invalidated).
    pub collapses: u64,
    /// Remote mappings installed.
    pub remote_maps: u64,
    /// Writable "ideal" copies created (Ideal policy only).
    pub ideal_copies: u64,
    /// Pages evicted to the host under oversubscription.
    pub evictions: u64,
    /// Faults resolved by *pinning* a thrashing page (remote mapping
    /// instead of yet another migration/duplication) — the driver's
    /// thrashing mitigation.
    pub thrash_pins: u64,
    /// Pages pulled in by the neighborhood prefetcher (extension; disabled
    /// in the paper-faithful baseline).
    pub prefetches: u64,
    /// PTE/TLB invalidations sent to remote devices.
    pub invalidations: u64,
    /// Frames retired after an ECC poison event (hardware-fault model).
    pub ecc_quarantines: u64,
    /// Replayed fault-service attempts while recovering a poisoned page.
    pub fault_retries: u64,
}

impl UvmStats {
    /// Total GPU page faults (far + protection) — the Fig. 24 metric.
    pub fn total_faults(&self) -> u64 {
        self.far_faults + self.protection_faults
    }

    /// Cheap change detector: counters only ever increase, so the wrapping
    /// sum of all fields changes iff any counter changed. Lets the run
    /// loop's progress watchdog compare one word instead of copying the
    /// whole struct on every access.
    #[inline]
    pub fn progress_token(&self) -> u64 {
        self.far_faults
            .wrapping_add(self.protection_faults)
            .wrapping_add(self.migrations)
            .wrapping_add(self.counter_migrations)
            .wrapping_add(self.duplications)
            .wrapping_add(self.collapses)
            .wrapping_add(self.remote_maps)
            .wrapping_add(self.ideal_copies)
            .wrapping_add(self.evictions)
            .wrapping_add(self.thrash_pins)
            .wrapping_add(self.prefetches)
            .wrapping_add(self.invalidations)
            .wrapping_add(self.ecc_quarantines)
            .wrapping_add(self.fault_retries)
    }

    /// Total pages moved between devices for any reason.
    pub fn total_page_moves(&self) -> u64 {
        self.migrations
            + self.counter_migrations
            + self.duplications
            + self.ideal_copies
            + self.evictions
    }

    /// Field-wise difference `self - earlier`, for per-epoch rollups over
    /// a pair of cumulative snapshots. Saturates at zero (counters never
    /// decrease in a well-formed run).
    pub fn minus(&self, earlier: &UvmStats) -> UvmStats {
        UvmStats {
            far_faults: self.far_faults.saturating_sub(earlier.far_faults),
            protection_faults: self
                .protection_faults
                .saturating_sub(earlier.protection_faults),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            counter_migrations: self
                .counter_migrations
                .saturating_sub(earlier.counter_migrations),
            duplications: self.duplications.saturating_sub(earlier.duplications),
            collapses: self.collapses.saturating_sub(earlier.collapses),
            remote_maps: self.remote_maps.saturating_sub(earlier.remote_maps),
            ideal_copies: self.ideal_copies.saturating_sub(earlier.ideal_copies),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            thrash_pins: self.thrash_pins.saturating_sub(earlier.thrash_pins),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            ecc_quarantines: self.ecc_quarantines.saturating_sub(earlier.ecc_quarantines),
            fault_retries: self.fault_retries.saturating_sub(earlier.fault_retries),
        }
    }
}

impl Snapshot for UvmStats {
    fn snapshot(&self, w: &mut ByteWriter) {
        for v in [
            self.far_faults,
            self.protection_faults,
            self.migrations,
            self.counter_migrations,
            self.duplications,
            self.collapses,
            self.remote_maps,
            self.ideal_copies,
            self.evictions,
            self.thrash_pins,
            self.prefetches,
            self.invalidations,
            self.ecc_quarantines,
            self.fault_retries,
        ] {
            w.u64(v);
        }
    }
}

impl Restore for UvmStats {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        for field in [
            &mut self.far_faults,
            &mut self.protection_faults,
            &mut self.migrations,
            &mut self.counter_migrations,
            &mut self.duplications,
            &mut self.collapses,
            &mut self.remote_maps,
            &mut self.ideal_copies,
            &mut self.evictions,
            &mut self.thrash_pins,
            &mut self.prefetches,
            &mut self.invalidations,
            &mut self.ecc_quarantines,
            &mut self.fault_retries,
        ] {
            *field = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = UvmStats {
            far_faults: 10,
            protection_faults: 3,
            migrations: 5,
            counter_migrations: 2,
            duplications: 4,
            collapses: 1,
            remote_maps: 7,
            ideal_copies: 1,
            evictions: 2,
            thrash_pins: 0,
            prefetches: 0,
            invalidations: 9,
            ecc_quarantines: 2,
            fault_retries: 1,
        };
        assert_eq!(s.total_faults(), 13);
        assert_eq!(s.total_page_moves(), 14);
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(UvmStats::default().total_faults(), 0);
    }
}
