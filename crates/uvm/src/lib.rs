//! Unified Virtual Memory (UVM) driver model for multi-GPU systems.
//!
//! This crate models the piece of the stack that NVIDIA's UVM driver plays
//! in the paper's baseline (Section II): a centralized page table on the
//! host, replayable far faults and page-protection faults arriving over
//! PCIe, and the mechanics that resolve them — page migration, read
//! duplication, write-collapse, remote mappings with hardware access
//! counters, TLB shootdowns, and LRU eviction under memory
//! oversubscription.
//!
//! Which mechanic a fault triggers is decided by a [`PolicyEngine`]. The
//! three uniform policies of Section II-B ([`policy::OnTouchPolicy`],
//! [`policy::AccessCounterPolicy`], [`policy::DuplicationPolicy`]) and the
//! hypothetical [`policy::IdealPolicy`] live here; OASIS itself
//! (`oasis-core`) and GRIT (`oasis-grit`) implement the same trait.

pub mod costs;
pub mod driver;
pub mod fault;
pub mod guard;
pub mod policy;
pub mod stats;

pub use costs::UvmCosts;
pub use driver::{test_flags, MemState, Outcome, OutcomeKind, UvmDriver, ECC_RETRY_BUDGET};
pub use fault::{FaultType, PageFault};
pub use guard::check_mem_state;
pub use policy::{Decision, PolicyEngine, Resolution};
pub use stats::UvmStats;
