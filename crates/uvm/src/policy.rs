//! The page-management policy interface and the uniform policies.
//!
//! A [`PolicyEngine`] is consulted by the [`UvmDriver`](crate::driver) on
//! every page fault and answers *how* to resolve it. The four engines here
//! implement the paper's Section II-B policies applied uniformly to every
//! page, plus the hypothetical "Ideal" configuration of Section IV-A.
//! OASIS (`oasis-core`) and GRIT (`oasis-grit`) implement the same trait.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError};
use oasis_engine::error::SimResult;
use oasis_engine::{Duration, MetricsRegistry};
use oasis_mem::types::{DeviceId, ObjectId, Va};

use crate::driver::MemState;
use crate::fault::PageFault;

/// How a fault should be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Migrate the page into the requesting GPU's memory (on-touch).
    Migrate,
    /// Install a remote mapping to wherever the page lives; hardware access
    /// counters will migrate it once remote accesses reach the threshold.
    RemoteMap,
    /// Create a read-only duplicate on the requester; on a write fault this
    /// implies the duplicate-then-collapse sequence (the paper's
    /// protection-fault overhead for written pages under duplication).
    Duplicate,
    /// Hypothetical ideal: give the requester its own writable copy with no
    /// consistency actions, ever.
    IdealCopy,
}

/// A policy engine's answer for one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The mechanic to apply.
    pub resolution: Resolution,
    /// Extra latency charged for consulting policy metadata (e.g. the
    /// OASIS-InMem shadow map, or a GRIT PA-Cache miss).
    pub metadata_latency: Duration,
}

impl Decision {
    /// A decision with no metadata cost.
    pub fn free(resolution: Resolution) -> Self {
        Decision {
            resolution,
            metadata_latency: Duration::ZERO,
        }
    }
}

/// Decides how the UVM driver resolves page faults.
///
/// Implementations receive every fault (in simulated-time order) plus
/// runtime notifications (kernel launches, allocations) that OASIS's
/// explicit-phase detection and Object Tracker rely on.
pub trait PolicyEngine {
    /// Short name used in reports ("on-touch", "oasis", ...).
    fn name(&self) -> &str;

    /// Decides how to resolve `fault`. `state` gives read-only access to
    /// the driver's centralized page table.
    fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision;

    /// Called when a kernel is launched (an *explicit phase* boundary).
    fn on_kernel_launch(&mut self) {}

    /// Called when an object is allocated via the managed allocator.
    fn on_alloc(&mut self, _obj: ObjectId, _base: Va, _bytes: u64) {}

    /// Called when an object is freed.
    fn on_free(&mut self, _obj: ObjectId) {}

    /// Called when the driver observes that serving `va` by duplication
    /// would cross a permanently dead interconnect link. Stateful engines
    /// (OASIS) demote the page's object away from duplication so shared
    /// traffic stops betting on the broken path; the uniform policies have
    /// no per-object state to adjust and ignore the signal.
    fn on_link_degraded(&mut self, _va: Va) {}

    /// Validates the policy's internal metadata (e.g. O-Table LRU
    /// well-formedness). Called by the sim-guard runtime checker; stateless
    /// policies have nothing to verify.
    fn check_invariants(&self) -> SimResult<()> {
        Ok(())
    }

    /// Publishes policy-internal counters into the metrics registry at
    /// report time (e.g. OASIS's `otable.relearn`). Stateless policies
    /// have nothing to publish.
    fn publish_metrics(&self, _m: &mut MetricsRegistry) {}

    /// Serializes the engine's mutable state into a checkpoint section.
    /// The uniform policies are stateless, so the default writes nothing;
    /// stateful engines (OASIS's O-Table and learning statistics) override
    /// both hooks as a pair.
    fn snapshot_state(&self, _w: &mut ByteWriter) {}

    /// Restores state written by [`PolicyEngine::snapshot_state`]. The
    /// default accepts only an empty payload, so resuming a checkpoint
    /// taken under a stateful engine into a stateless one fails loudly.
    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if !r.is_empty() {
            return Err(r.malformed(format!(
                "policy '{}' is stateless but checkpoint carries {} bytes of policy state",
                self.name(),
                r.remaining()
            )));
        }
        Ok(())
    }
}

/// Uniform on-touch migration: always migrate to the requester
/// (Section II-B1; the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnTouchPolicy;

impl PolicyEngine for OnTouchPolicy {
    fn name(&self) -> &str {
        "on-touch"
    }

    fn resolve(&mut self, _fault: &PageFault, _state: &MemState) -> Decision {
        Decision::free(Resolution::Migrate)
    }
}

/// Uniform access counter-based migration (Section II-B2): every fault
/// merely establishes a remote mapping (to the host or the owning peer
/// GPU); data migrates only once the hardware counter observes the
/// threshold of remote accesses. This deferral is exactly the policy's
/// weakness the paper highlights for private-data-dominated apps like I2C
/// ("remote access latency before a page is migrated").
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessCounterPolicy;

impl PolicyEngine for AccessCounterPolicy {
    fn name(&self) -> &str {
        "access-counter"
    }

    fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision {
        let owner = state
            .host_table
            .get(fault.vpn)
            .map(|e| e.owner)
            .unwrap_or(DeviceId::Host);
        if owner == DeviceId::Gpu(fault.gpu) {
            // Re-fault on a page we already own (e.g. after an eviction
            // race): just reinstall the local mapping.
            Decision::free(Resolution::Migrate)
        } else {
            Decision::free(Resolution::RemoteMap)
        }
    }
}

/// Uniform page duplication (Section II-B3): every fault duplicates the
/// page read-only on the requester; writes then pay the protection-fault +
/// write-collapse overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct DuplicationPolicy;

impl PolicyEngine for DuplicationPolicy {
    fn name(&self) -> &str {
        "duplication"
    }

    fn resolve(&mut self, _fault: &PageFault, _state: &MemState) -> Decision {
        Decision::free(Resolution::Duplicate)
    }
}

/// The hypothetical "Ideal" NUMA-GPU of Section IV-A: every first access
/// from a GPU pays one duplication, after which all accesses (reads *and*
/// writes) are local with zero consistency traffic. Not realizable in
/// hardware; used as the optimization headroom in Figs. 2 and 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealPolicy;

impl PolicyEngine for IdealPolicy {
    fn name(&self) -> &str {
        "ideal"
    }

    fn resolve(&mut self, _fault: &PageFault, _state: &MemState) -> Decision {
        Decision::free(Resolution::IdealCopy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::page::HostEntry;
    use oasis_mem::types::{AccessKind, GpuId, PageSize, Vpn};

    fn state() -> MemState {
        MemState::new(4, PageSize::Small4K, None)
    }

    fn fault(vpn: u64) -> PageFault {
        PageFault::far(GpuId(0), Va(0), Vpn(vpn), AccessKind::Read)
    }

    #[test]
    fn on_touch_always_migrates() {
        let mut p = OnTouchPolicy;
        assert_eq!(
            p.resolve(&fault(1), &state()).resolution,
            Resolution::Migrate
        );
        assert_eq!(p.name(), "on-touch");
    }

    #[test]
    fn access_counter_defers_migration_everywhere_but_self() {
        let mut p = AccessCounterPolicy;
        let mut s = state();
        for (v, e) in [
            (Vpn(1), HostEntry::new_on_host()),
            (Vpn(2), HostEntry::new_at(DeviceId::Gpu(GpuId(3)))),
            (Vpn(3), HostEntry::new_at(DeviceId::Gpu(GpuId(0)))),
        ] {
            s.host_table.register(v, e).expect("fresh page");
        }
        // Host-resident and peer-resident pages both get remote mappings;
        // only a re-fault on a self-owned page reinstalls locally.
        assert_eq!(p.resolve(&fault(1), &s).resolution, Resolution::RemoteMap);
        assert_eq!(p.resolve(&fault(2), &s).resolution, Resolution::RemoteMap);
        assert_eq!(p.resolve(&fault(3), &s).resolution, Resolution::Migrate);
    }

    #[test]
    fn duplication_always_duplicates() {
        let mut p = DuplicationPolicy;
        assert_eq!(
            p.resolve(&fault(1), &state()).resolution,
            Resolution::Duplicate
        );
    }

    #[test]
    fn ideal_always_ideal_copies() {
        let mut p = IdealPolicy;
        assert_eq!(
            p.resolve(&fault(1), &state()).resolution,
            Resolution::IdealCopy
        );
    }

    #[test]
    fn free_decision_has_no_metadata_cost() {
        let d = Decision::free(Resolution::Migrate);
        assert_eq!(d.metadata_latency, Duration::ZERO);
    }
}
