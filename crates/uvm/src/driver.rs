//! The UVM driver: centralized state plus fault-resolution mechanics.
//!
//! The driver owns the system's memory state (centralized host page table,
//! per-GPU local page tables, per-GPU frame residency) and implements the
//! mechanics every policy is built from: page migration, read duplication,
//! write-collapse, remote mapping with hardware access counters, and LRU
//! eviction to the host under oversubscription. *Which* mechanic resolves a
//! given fault is delegated to the configured [`PolicyEngine`].
//!
//! Every public operation is fallible: instead of aborting on inconsistent
//! state or malformed input, the driver returns a typed
//! [`SimError`](oasis_engine::SimError) so callers can fail fast, record and
//! continue, or feed the failure back to the fault-injection harness.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::{EvictionError, FaultError, MigrationError, SimError, SimResult};
use oasis_engine::{
    CounterHandle, Duration, Endpoint, FxHashMap, HistogramHandle, Observer, Time, TraceEvent,
};
use oasis_interconnect::Fabric;
use oasis_mem::frames::FrameAllocator;
use oasis_mem::page::{HostEntry, HostPageTable, LocalPageTable, PolicyBits, Pte};
use oasis_mem::types::{AccessKind, DeviceId, GpuId, ObjectId, PageSize, Va, Vpn};

use crate::costs::UvmCosts;
use crate::fault::{FaultType, PageFault};
use crate::policy::{PolicyEngine, Resolution};
use crate::stats::UvmStats;

/// Pages per 64 KiB access-counter group for 4 KiB pages (the NVIDIA
/// driver's counter granularity, Table I).
const GROUP_BYTES: u64 = 64 * 1024;

/// Replayed fault-service attempts allowed while recovering a page whose
/// frame was ECC-poisoned, before the driver gives up with
/// [`SimError::HardwareExhausted`].
pub const ECC_RETRY_BUDGET: u32 = 4;

/// Process-wide switches that deliberately break driver mechanics, used by
/// the fuzzer's meta-tests to prove the oracle and invariant checker catch
/// real bugs. All flags default to off; production paths read them through
/// an atomic load and behave identically while unset.
pub mod test_flags {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SKIP_EVICT_INVALIDATION: AtomicBool = AtomicBool::new(false);

    /// When set, `do_evict` leaves the evicting GPU's own PTE stale when it
    /// writes an owned page back to the host — the class of bug the
    /// `local-pte-agrees` guard invariant exists to catch.
    pub fn set_skip_evict_invalidation(on: bool) {
        SKIP_EVICT_INVALIDATION.store(on, Ordering::Relaxed);
    }

    /// Whether the planted eviction bug is currently enabled.
    pub fn skip_evict_invalidation() -> bool {
        SKIP_EVICT_INVALIDATION.load(Ordering::Relaxed)
    }
}

/// Maps a simulated device to a trace endpoint.
fn endpoint(dev: DeviceId) -> Endpoint {
    match dev {
        DeviceId::Host => Endpoint::Host,
        DeviceId::Gpu(g) => Endpoint::Gpu(g.0),
    }
}

/// The memory state shared between the driver and policy engines.
#[derive(Debug)]
pub struct MemState {
    /// Translation granularity of this run.
    pub page_size: PageSize,
    /// The centralized page table on the host (the driver's ground truth).
    pub host_table: HostPageTable,
    /// Per-GPU local page tables (walked by each GMMU).
    pub local_tables: Vec<LocalPageTable>,
    /// Per-GPU physical-frame residency (finite under oversubscription).
    pub frames: Vec<FrameAllocator>,
}

impl MemState {
    /// Creates state for `gpu_count` GPUs, each with `capacity_pages`
    /// local frames (`None` = unbounded, the non-oversubscribed setup).
    pub fn new(gpu_count: usize, page_size: PageSize, capacity_pages: Option<u64>) -> Self {
        assert!(gpu_count > 0, "need at least one GPU");
        MemState {
            page_size,
            host_table: HostPageTable::new(),
            local_tables: (0..gpu_count).map(|_| LocalPageTable::new()).collect(),
            frames: (0..gpu_count)
                .map(|_| FrameAllocator::new(capacity_pages))
                .collect(),
        }
    }

    /// Number of GPUs in the system.
    pub fn gpu_count(&self) -> usize {
        self.local_tables.len()
    }
}

/// What a fault resolution (or counter notification) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Page migrated to the requester.
    Migrated,
    /// Read-only duplicate created on the requester.
    Duplicated,
    /// Write far fault under duplication: duplicate, then immediate
    /// protection fault and collapse (Section IV-B's private-write
    /// pathology).
    DuplicatedAndCollapsed,
    /// Protection fault resolved by collapsing all copies to the writer.
    /// Under access-counter policy bits, later sharers then remote-map
    /// instead of re-duplicating.
    CollapsedToWriter,
    /// Remote mapping installed; no data moved.
    RemoteMapped,
    /// Writable ideal copy created (hypothetical Ideal policy).
    IdealCopied,
    /// A hardware access counter hit its threshold and migrated `pages`
    /// pages of its 64 KiB group.
    CounterMigrated {
        /// How many pages of the group moved.
        pages: u32,
    },
    /// An ECC poison event retired a frame that held a read-only replica;
    /// the authoritative copy elsewhere keeps serving, so no data was
    /// re-fetched (hardware-fault model).
    EccReplicaDropped,
}

/// The result of a driver operation, consumed by the GPU-side model.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// What happened.
    pub kind: OutcomeKind,
    /// Total latency charged to the triggering access.
    pub latency: Duration,
    /// `(gpu, vpn)` translations invalidated; the GPU model must drop the
    /// corresponding TLB entries and cache lines.
    pub invalidations: Vec<(GpuId, Vpn)>,
    /// Portion of `latency` spent moving data over the fabric.
    pub transfer_time: Duration,
    /// Portion of `latency` spent on invalidation (shootdown) rounds.
    pub shootdown_time: Duration,
    /// Portion of `latency` spent queued behind the serialized driver
    /// pipeline.
    pub queue_wait: Duration,
}

impl Outcome {
    fn new(kind: OutcomeKind) -> Self {
        Outcome {
            kind,
            latency: Duration::ZERO,
            invalidations: Vec::new(),
            transfer_time: Duration::ZERO,
            shootdown_time: Duration::ZERO,
            queue_wait: Duration::ZERO,
        }
    }
}

/// The UVM driver.
pub struct UvmDriver {
    /// Centralized memory state.
    pub state: MemState,
    /// The active page-management policy.
    pub policy: Box<dyn PolicyEngine>,
    /// Latency parameters.
    pub costs: UvmCosts,
    /// Remote accesses per 64 KiB group before a counter migration
    /// (Table I: 256).
    pub counter_threshold: u32,
    /// Counter increment per observed transaction. Trace transactions are
    /// sampled (one stands for several coalesced warp accesses), so the
    /// platform sets this to the sampling factor to keep the *effective*
    /// threshold faithful to real access volumes. Default 1.
    pub counter_weight: u32,
    /// Event counters.
    pub stats: UvmStats,
    /// Fault-driven migrations of one page within [`Self::thrash_window`]
    /// before the driver pins it (serves it remotely instead of
    /// migrating), mirroring the real UVM driver's thrashing mitigation.
    pub thrash_threshold: u32,
    /// Sliding window for thrash detection.
    pub thrash_window: Duration,
    /// When true, resolving a far fault by migration from *host* memory
    /// also pulls in the untouched remainder of the page's 64 KiB group —
    /// a simplified form of the real UVM driver's density/tree-based
    /// neighborhood prefetcher. Off by default (the paper's baseline does
    /// not isolate it); exposed for the ablation study.
    pub prefetch_group: bool,
    group_shift: u32,
    counters: FxHashMap<(u8, u64), u32>,
    /// Per-page (migration count in window, window start) for thrash
    /// detection.
    thrash: FxHashMap<Vpn, (u32, Time)>,
    /// When the serialized host fault-handling pipeline frees up.
    driver_free: Time,
    /// Observability sink (tracer + metrics). Purely observational:
    /// excluded from [`Snapshot`]/[`Restore`] and rebuilt from config on
    /// resume, so tracing cannot perturb replay.
    pub obs: Observer,
    /// Pre-resolved metric slots for the per-fault observation path
    /// (re-resolved by [`UvmDriver::bind_metric_handles`] whenever `obs`
    /// is replaced).
    mh: FaultMetricHandles,
}

/// Handles into `obs.metrics` for every metric the fault path updates per
/// event, so servicing a fault never pays a name lookup. Handles from a
/// disabled registry are inert, so binding is unconditional.
#[derive(Debug, Clone, Copy)]
struct FaultMetricHandles {
    far: CounterHandle,
    protection: CounterHandle,
    service_ns: HistogramHandle,
    queue_ns: HistogramHandle,
    transfer_ns: HistogramHandle,
    shootdown_ns: HistogramHandle,
}

impl FaultMetricHandles {
    fn bind(m: &mut oasis_engine::MetricsRegistry) -> Self {
        FaultMetricHandles {
            far: m.counter_handle("uvm.fault.far"),
            protection: m.counter_handle("uvm.fault.protection"),
            service_ns: m.histogram_handle("uvm.fault.service_ns"),
            queue_ns: m.histogram_handle("uvm.fault.queue_ns"),
            transfer_ns: m.histogram_handle("uvm.fault.transfer_ns"),
            shootdown_ns: m.histogram_handle("uvm.fault.shootdown_ns"),
        }
    }
}

impl std::fmt::Debug for UvmDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UvmDriver")
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl UvmDriver {
    /// Creates a driver for `gpu_count` GPUs using `policy`.
    pub fn new(
        gpu_count: usize,
        page_size: PageSize,
        capacity_pages: Option<u64>,
        policy: Box<dyn PolicyEngine>,
        costs: UvmCosts,
        counter_threshold: u32,
    ) -> Self {
        let pages_per_group = (GROUP_BYTES / page_size.bytes()).max(1);
        UvmDriver {
            state: MemState::new(gpu_count, page_size, capacity_pages),
            policy,
            costs,
            counter_threshold,
            counter_weight: 1,
            thrash_threshold: 4,
            thrash_window: Duration::from_ms(1),
            prefetch_group: false,
            thrash: FxHashMap::default(),
            stats: UvmStats::default(),
            group_shift: pages_per_group.trailing_zeros(),
            counters: FxHashMap::default(),
            driver_free: Time::ZERO,
            obs: Observer::disabled(),
            mh: FaultMetricHandles::bind(&mut oasis_engine::MetricsRegistry::disabled()),
        }
    }

    /// Re-resolves the fault path's metric handles against the current
    /// `obs.metrics`. Must be called after replacing [`UvmDriver::obs`];
    /// handles from a previous registry would index the wrong slots.
    pub fn bind_metric_handles(&mut self) {
        self.mh = FaultMetricHandles::bind(&mut self.obs.metrics);
    }

    /// The host-table entry for `vpn`, copied, or a migration error if the
    /// page vanished mid-mechanic.
    fn entry(&self, vpn: Vpn) -> SimResult<HostEntry> {
        self.state
            .host_table
            .get(vpn)
            .copied()
            .ok_or_else(|| MigrationError::SourceMissing { vpn: vpn.0 }.into())
    }

    /// Mutable host-table entry for `vpn`, or a migration error.
    fn entry_mut(&mut self, vpn: Vpn) -> SimResult<&mut HostEntry> {
        self.state
            .host_table
            .get_mut(vpn)
            .ok_or_else(|| MigrationError::SourceMissing { vpn: vpn.0 }.into())
    }

    /// Records a data-moving fault for `vpn` in the sliding thrash window
    /// and reports whether the page is now considered thrashing.
    fn thrash_check(&mut self, now: Time, vpn: Vpn) -> bool {
        let window = self.thrash_window;
        let e = self.thrash.entry(vpn).or_insert((0, now));
        if now.since(e.1.min(now)) > window {
            *e = (0, now);
        }
        e.0 += 1;
        e.0 > self.thrash_threshold
    }

    /// Reserves the serialized driver pipeline at `now`, returning the
    /// queueing delay incurred. Faults that arrive while the pipeline is
    /// busy are *batched*: real UVM drains its fault buffer in groups, so
    /// back-to-back faults amortize to roughly half the isolated service
    /// time.
    fn reserve_driver(&mut self, now: Time, service: Duration) -> Duration {
        let busy = now < self.driver_free;
        let start = now.max(self.driver_free);
        let effective = if busy { service / 2 } else { service };
        self.driver_free = start + effective;
        start.since(now)
    }

    /// Registers all pages of a new object, placing them at `placement`,
    /// and notifies the policy engine of the allocation.
    ///
    /// Overlapping an existing allocation yields a
    /// [`TableError`](oasis_engine::TableError); pages registered before the
    /// clash are left in place (the caller is expected to abandon the run).
    pub fn alloc_object(
        &mut self,
        obj: ObjectId,
        base: Va,
        bytes: u64,
        placement: impl Fn(Vpn) -> DeviceId,
    ) -> SimResult<()> {
        let first = base.vpn(self.state.page_size).0;
        let last = Va(base.canonical().0 + bytes.max(1) - 1)
            .vpn(self.state.page_size)
            .0;
        for p in first..=last {
            let dev = placement(Vpn(p));
            let entry = match dev {
                DeviceId::Host => HostEntry::new_on_host(),
                DeviceId::Gpu(g) => {
                    // Initially-striped pages are resident and mapped on
                    // their GPU from the start (Fig. 21).
                    if let Some(victim) = self.state.frames[g.index()].insert(Vpn(p)) {
                        // Initial placement overflowed the device: spill the
                        // victim back to the host so residency and the host
                        // table stay in agreement.
                        self.state.local_tables[g.index()].invalidate(victim);
                        if let Some(e) = self.state.host_table.get_mut(victim) {
                            e.owner = DeviceId::Host;
                            e.copy_mask = 0;
                            e.mapper_mask = 0;
                        }
                        self.stats.evictions += 1;
                    }
                    self.state.local_tables[g.index()].insert(
                        Vpn(p),
                        Pte {
                            location: dev,
                            writable: true,
                            policy: PolicyBits::OnTouch,
                        },
                    );
                    HostEntry::new_at(dev)
                }
            };
            self.state.host_table.register(Vpn(p), entry)?;
        }
        self.policy.on_alloc(obj, base, bytes);
        Ok(())
    }

    /// Unregisters all pages of a freed object and notifies the policy.
    pub fn free_object(&mut self, obj: ObjectId, base: Va, bytes: u64) {
        let first = base.vpn(self.state.page_size).0;
        let last = Va(base.canonical().0 + bytes.max(1) - 1)
            .vpn(self.state.page_size)
            .0;
        for p in first..=last {
            let vpn = Vpn(p);
            if self.state.host_table.unregister(vpn).is_some() {
                for g in 0..self.state.gpu_count() {
                    self.state.local_tables[g].invalidate(vpn);
                    self.state.frames[g].remove(vpn);
                }
            }
        }
        self.policy.on_free(obj);
    }

    /// Notifies the policy of an explicit phase boundary (kernel launch).
    pub fn kernel_launch(&mut self) {
        self.policy.on_kernel_launch();
    }

    /// Resolves a page fault at simulated time `now`.
    ///
    /// A fault on a page that was never registered (a trace touching freed
    /// or unallocated memory) returns
    /// [`FaultError::UnregisteredPage`]; a fault naming a GPU outside the
    /// system returns [`FaultError::NoSuchGpu`]. Either leaves the driver
    /// state untouched.
    pub fn handle_fault(
        &mut self,
        now: Time,
        fault: &PageFault,
        fabric: &mut Fabric,
    ) -> SimResult<Outcome> {
        if fault.gpu.index() >= self.state.gpu_count() {
            return Err(FaultError::NoSuchGpu {
                gpu: fault.gpu.0,
                gpu_count: self.state.gpu_count(),
            }
            .into());
        }
        let Some(faulted) = self.state.host_table.get_mut(fault.vpn) else {
            return Err(FaultError::UnregisteredPage {
                vpn: fault.vpn.0,
                gpu: fault.gpu.0,
            }
            .into());
        };
        faulted.mark_touched(fault.gpu);
        match fault.fault_type {
            FaultType::Far => self.stats.far_faults += 1,
            FaultType::Protection => self.stats.protection_faults += 1,
        }

        let decision = self.policy.resolve(fault, &self.state);
        // A duplicate whose source sits across a permanently dead link still
        // works (the fabric stages the data over PCIe), but it is a bad bet
        // going forward: tell the policy so stateful engines demote the
        // object away from duplication (OASIS's self-correction path).
        if decision.resolution == Resolution::Duplicate {
            if let Some(DeviceId::Gpu(src)) = self.state.host_table.get(fault.vpn).map(|e| e.owner)
            {
                if src != fault.gpu && fabric.link_is_down(src.0, fault.gpu.0) {
                    self.policy.on_link_degraded(fault.va);
                    self.obs.metrics.add("uvm.link_demotions", 1);
                }
            }
        }
        let base = match fault.fault_type {
            FaultType::Far => self.costs.far_fault_base,
            FaultType::Protection => self.costs.protection_fault_base,
        };
        // Fault packet to the host and resolution reply back to the GPU.
        let rtt = self.costs.pte_update
            + fabric.control_latency(DeviceId::Gpu(fault.gpu), DeviceId::Host) * 2;
        // The host fault pipeline is serialized: queue behind in-flight
        // fault work. The wait is charged to the fault's total latency, but
        // data transfers are reserved from the arrival time: pushing them
        // past the queue delay would let one backlogged fault poison the
        // interconnect for unrelated earlier requesters.
        let queue_wait = self.reserve_driver(now, self.costs.fault_service);

        // Thrashing mitigation (as in the real UVM driver): a page that
        // keeps bouncing between processors gets *pinned* — served through
        // a remote mapping instead of moved again.
        let owner = self
            .state
            .host_table
            .get(fault.vpn)
            .map(|e| e.owner)
            .unwrap_or(DeviceId::Host);
        let moves_data = matches!(
            (fault.fault_type, decision.resolution),
            (FaultType::Far, Resolution::Migrate | Resolution::Duplicate)
                | (FaultType::Protection, _)
        );
        let pinnable = owner != DeviceId::Gpu(fault.gpu)
            && fault.fault_type == FaultType::Far
            && matches!(
                decision.resolution,
                Resolution::Migrate | Resolution::Duplicate
            );
        let thrashing = moves_data && self.thrash_check(now, fault.vpn);

        let mut out;
        if thrashing && pinnable {
            out = Outcome::new(OutcomeKind::RemoteMapped);
            self.do_remote_map(now, fault.gpu, fault.vpn, &mut out)?;
            self.stats.thrash_pins += 1;
            out.queue_wait = queue_wait;
            out.latency += base + rtt + decision.metadata_latency + queue_wait;
            self.observe_fault(now, fault, &out);
            return Ok(out);
        }
        match (fault.fault_type, decision.resolution) {
            (FaultType::Far, Resolution::Migrate) => {
                out = Outcome::new(OutcomeKind::Migrated);
                self.do_migrate(
                    now,
                    fault.gpu,
                    fault.vpn,
                    PolicyBits::OnTouch,
                    fabric,
                    &mut out,
                )?;
                self.stats.migrations += 1;
                if self.prefetch_group && owner == DeviceId::Host {
                    self.do_group_prefetch(now, fault.gpu, fault.vpn, fabric, &mut out)?;
                }
            }
            (FaultType::Far, Resolution::RemoteMap) => {
                out = Outcome::new(OutcomeKind::RemoteMapped);
                self.do_remote_map(now, fault.gpu, fault.vpn, &mut out)?;
            }
            (FaultType::Far, Resolution::Duplicate) => {
                if fault.is_write() {
                    // Duplicate read-only, then the store immediately raises
                    // a protection fault and collapses to the writer. The
                    // driver resolves the replayed fault within the same
                    // pipeline occupancy, but the requester eats the extra
                    // protection-fault latency.
                    out = Outcome::new(OutcomeKind::DuplicatedAndCollapsed);
                    self.do_duplicate(now, fault.gpu, fault.vpn, fabric, &mut out)?;
                    out.latency += self.costs.protection_fault_base;
                    self.stats.protection_faults += 1;
                    self.do_collapse_to_writer(now, fault.gpu, fault.vpn, fabric, &mut out)?;
                } else {
                    out = Outcome::new(OutcomeKind::Duplicated);
                    self.do_duplicate(now, fault.gpu, fault.vpn, fabric, &mut out)?;
                }
            }
            (FaultType::Far, Resolution::IdealCopy) => {
                out = Outcome::new(OutcomeKind::IdealCopied);
                self.do_ideal_copy(now, fault.gpu, fault.vpn, fabric, &mut out)?;
            }
            (FaultType::Protection, Resolution::RemoteMap) => {
                // Access-counter handling of a write to a duplicated page:
                // the copies collapse to the writer, and the page's policy
                // bits switch to access-counter so *later* sharers get
                // remote mappings instead of new duplicates.
                out = Outcome::new(OutcomeKind::CollapsedToWriter);
                let e = self.entry_mut(fault.vpn)?;
                let old_bits = e.policy;
                e.policy = PolicyBits::AccessCounter;
                self.note_policy(now, fault.vpn, old_bits, PolicyBits::AccessCounter);
                self.do_collapse_to_writer(now, fault.gpu, fault.vpn, fabric, &mut out)?;
            }
            (FaultType::Protection, _) => {
                out = Outcome::new(OutcomeKind::CollapsedToWriter);
                self.do_collapse_to_writer(now, fault.gpu, fault.vpn, fabric, &mut out)?;
            }
        }
        out.queue_wait = queue_wait;
        out.latency += base + rtt + decision.metadata_latency + queue_wait;
        self.observe_fault(now, fault, &out);
        Ok(out)
    }

    /// Records a remote access by `gpu` to `vpn` (which it maps remotely).
    /// Returns a migration outcome when the 64 KiB group's counter reaches
    /// the threshold.
    pub fn note_remote_access(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
    ) -> SimResult<Option<Outcome>> {
        let group = vpn.0 >> self.group_shift;
        let c = self.counters.entry((gpu.0, group)).or_insert(0);
        *c = c.saturating_add(self.counter_weight);
        if *c < self.counter_threshold {
            return Ok(None);
        }
        *c = 0;
        self.obs.metrics.add("uvm.counter.trip", 1);
        let mut out = Outcome::new(OutcomeKind::CounterMigrated { pages: 0 });
        // Counter notifications go through the same serialized driver
        // pipeline as faults.
        let queue_wait = self.reserve_driver(now, self.costs.fault_service);
        out.latency += self.costs.counter_migration_base + queue_wait;
        // The hardware counter covers a 64 KiB region: once it trips, the
        // driver migrates the *whole group* from the triggering page's
        // source, not just the pages this GPU happens to map already
        // (matching the region-granular migration of real UVM stacks).
        let source = self
            .state
            .host_table
            .get(vpn)
            .map(|e| e.owner)
            .unwrap_or(DeviceId::Host);
        let first = group << self.group_shift;
        let mut moved = 0u32;
        for p in first..first + (1 << self.group_shift) {
            let vpn = Vpn(p);
            let keep_policy = self.state.host_table.get(vpn).and_then(|e| {
                let migrate =
                    e.owner != DeviceId::Gpu(gpu) && (e.maps_remotely(gpu) || e.owner == source);
                migrate.then_some(e.policy)
            });
            if let Some(bits) = keep_policy {
                self.do_migrate(now, gpu, vpn, bits, fabric, &mut out)?;
                self.stats.counter_migrations += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            return Ok(None);
        }
        // A migration resets *every* GPU's counter for the group: the next
        // contender must accumulate a full threshold of remote accesses
        // before stealing it back, which paces ping-ponging at the
        // threshold period (as the real counter clear-on-migrate does).
        for g in 0..self.state.gpu_count() as u8 {
            self.counters.remove(&(g, group));
        }
        out.kind = OutcomeKind::CounterMigrated { pages: moved };
        // Counter migrations are asynchronous: the notification is handled
        // by the driver in the background while the triggering access
        // completes remotely. The work still occupies the driver pipeline
        // and the interconnect (reserved above); only the triggering lane
        // is spared the stall.
        out.latency = Duration::ZERO;
        Ok(Some(out))
    }

    /// The page size this driver operates at.
    pub fn page_size(&self) -> PageSize {
        self.state.page_size
    }

    /// Overwrites the raw access counter of `vpn`'s 64 KiB group for `gpu`.
    ///
    /// Not used by normal simulation — this is the fault-injection hook for
    /// modelling corrupted or saturated hardware counters.
    pub fn poke_counter(&mut self, gpu: GpuId, vpn: Vpn, value: u32) {
        let group = vpn.0 >> self.group_shift;
        self.counters.insert((gpu.0, group), value);
    }

    /// Overwrites the learned policy bits of a registered page.
    ///
    /// Not used by normal simulation — this is the fault-injection hook for
    /// modelling mid-phase policy flips.
    pub fn set_page_policy(&mut self, vpn: Vpn, bits: PolicyBits) -> SimResult<()> {
        self.entry_mut(vpn)?.policy = bits;
        Ok(())
    }

    /// Applies an ECC poison event to the frame holding `vpn` on `gpu`:
    /// the frame is quarantined (permanently reducing the GPU's usable
    /// capacity), and the lost copy is either dropped (read-only replica —
    /// the authoritative copy elsewhere keeps serving) or recovered by
    /// replaying the far fault from the home copy with a bounded
    /// retry/backoff budget.
    ///
    /// Returns `Ok(None)` if the page was not resident on `gpu` (no frame
    /// to poison), `Ok(Some(outcome))` after a drop or successful
    /// re-service, and [`SimError::HardwareExhausted`] once the retry
    /// budget ([`ECC_RETRY_BUDGET`]) runs out — never a panic.
    pub fn poison_frame(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
    ) -> SimResult<Option<Outcome>> {
        if gpu.index() >= self.state.gpu_count() {
            return Err(FaultError::NoSuchGpu {
                gpu: gpu.0,
                gpu_count: self.state.gpu_count(),
            }
            .into());
        }
        if !self.state.frames[gpu.index()].quarantine(vpn) {
            return Ok(None);
        }
        self.stats.ecc_quarantines += 1;
        self.obs.metrics.add("uvm.ecc.quarantine", 1);
        self.obs.emit(now, || TraceEvent::FrameQuarantine {
            gpu: gpu.0,
            vpn: vpn.0,
        });
        let entry = self.entry(vpn)?;
        if entry.owner != DeviceId::Gpu(gpu) {
            // The poisoned frame held a read-only duplicate (or ideal
            // copy): drop the replica, no data re-fetch needed.
            let mut out = Outcome::new(OutcomeKind::EccReplicaDropped);
            self.invalidate_at(now, gpu, vpn, false, &mut out);
            self.charge_invalidation(1, &mut out);
            self.entry_mut(vpn)?.copy_mask &= !(1 << gpu.0);
            return Ok(Some(out));
        }
        // The poisoned frame held the authoritative copy: fall back to the
        // home copy on the host, tear down every stale translation, then
        // replay the far fault so the victim GPU re-fetches the page.
        let mut out = Outcome::new(OutcomeKind::EccReplicaDropped);
        let mut inv = 0usize;
        for g in entry.duplicate_holders().chain(entry.remote_mappers()) {
            if g != gpu {
                self.invalidate_at(now, g, vpn, true, &mut out);
                inv += 1;
            }
        }
        self.invalidate_at(now, gpu, vpn, false, &mut out);
        inv += 1;
        self.charge_invalidation(inv, &mut out);
        let e = self.entry_mut(vpn)?;
        e.owner = DeviceId::Host;
        e.copy_mask = 0;
        e.mapper_mask = 0;
        let mut reserviced = self.reservice_poisoned(now, gpu, vpn, fabric)?;
        reserviced.latency += out.latency;
        reserviced.shootdown_time += out.shootdown_time;
        reserviced.invalidations.extend(out.invalidations);
        Ok(Some(reserviced))
    }

    /// Replays the far fault for a poisoned page with a bounded
    /// retry/backoff budget. Each attempt that cannot land (the GPU has no
    /// usable frame left) backs off for twice as long; exhausting
    /// [`ECC_RETRY_BUDGET`] attempts surfaces
    /// [`SimError::HardwareExhausted`].
    fn reservice_poisoned(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
    ) -> SimResult<Outcome> {
        let va = Va(vpn.0 * self.page_bytes());
        let mut backoff = self.costs.fault_service;
        let mut when = now;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.stats.fault_retries += 1;
            self.obs.metrics.add("uvm.ecc.retry", 1);
            self.obs.emit(when, || TraceEvent::FaultRetry {
                gpu: gpu.0,
                vpn: vpn.0,
                attempt,
            });
            // An ECC replay is recovery, not ping-ponging: keep it out of
            // the thrash detector so repeated attempts are not "pinned"
            // into a remote mapping the policy never asked for.
            self.thrash.remove(&vpn);
            let pf = PageFault::far(gpu, va, vpn, AccessKind::Read);
            match self.handle_fault(when, &pf, fabric) {
                Err(SimError::HardwareExhausted { .. }) if attempt < ECC_RETRY_BUDGET => {
                    when += backoff;
                    backoff = backoff * 2;
                }
                Err(SimError::HardwareExhausted { .. }) => {
                    return Err(SimError::HardwareExhausted {
                        gpu: gpu.0,
                        vpn: vpn.0,
                        retries: attempt,
                    });
                }
                other => return other,
            }
        }
    }

    // ------------------------------------------------------------------
    // Mechanics
    // ------------------------------------------------------------------

    /// Rejects a data-landing mechanic when `g` has no usable frame left
    /// (every configured frame quarantined). Pages already resident are
    /// fine — re-inserting them claims no new frame.
    fn ensure_frame_available(&self, g: GpuId, vpn: Vpn) -> SimResult<()> {
        if !self.state.frames[g.index()].contains(vpn)
            && self.state.frames[g.index()].out_of_frames()
        {
            return Err(SimError::HardwareExhausted {
                gpu: g.0,
                vpn: vpn.0,
                retries: 0,
            });
        }
        Ok(())
    }

    fn invalidate_at(
        &mut self,
        now: Time,
        g: GpuId,
        vpn: Vpn,
        drop_frame: bool,
        out: &mut Outcome,
    ) {
        if self.state.local_tables[g.index()].invalidate(vpn).is_some() {
            out.invalidations.push((g, vpn));
            self.stats.invalidations += 1;
            self.obs.emit(now, || TraceEvent::Shootdown {
                gpu: g.0,
                vpn: vpn.0,
            });
        }
        if drop_frame {
            self.state.frames[g.index()].remove(vpn);
        }
    }

    /// Charges the latency of an invalidation round covering `devices`
    /// devices, attributing it to the outcome's shootdown phase.
    fn charge_invalidation(&mut self, devices: usize, out: &mut Outcome) {
        let cost = self.costs.invalidation(devices);
        out.latency += cost;
        out.shootdown_time += cost;
    }

    /// Reserves a synchronous page transfer on the fabric, charges its
    /// latency to the outcome's transfer phase, and traces it.
    fn charge_transfer(
        &mut self,
        now: Time,
        from: DeviceId,
        to: DeviceId,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) {
        let bytes = self.page_bytes();
        let t = fabric.transfer(now + out.latency, from, to, bytes);
        let lat = t.latency_from(now + out.latency);
        out.latency += lat;
        out.transfer_time += lat;
        self.obs.emit(now, || TraceEvent::LinkTransfer {
            from: endpoint(from),
            to: endpoint(to),
            bytes,
            busy: lat,
        });
    }

    /// Records a page-policy transition (if the bits actually changed).
    fn note_policy(&mut self, now: Time, vpn: Vpn, from: PolicyBits, to: PolicyBits) {
        if from != to {
            self.obs.metrics.add("uvm.policy_switch", 1);
            self.obs.emit(now, || TraceEvent::PolicySwitch {
                vpn: vpn.0,
                from: from.bits(),
                to: to.bits(),
            });
        }
    }

    /// Records a completed fault's phase attribution into the metrics
    /// registry and the tracer.
    fn observe_fault(&mut self, now: Time, fault: &PageFault, out: &Outcome) {
        if self.obs.metrics.is_enabled() {
            match fault.fault_type {
                FaultType::Far => self.obs.metrics.add_to(self.mh.far, 1),
                FaultType::Protection => self.obs.metrics.add_to(self.mh.protection, 1),
            }
            self.obs.metrics.observe_in(self.mh.service_ns, out.latency);
            self.obs
                .metrics
                .observe_in(self.mh.queue_ns, out.queue_wait);
            self.obs
                .metrics
                .observe_in(self.mh.transfer_ns, out.transfer_time);
            self.obs
                .metrics
                .observe_in(self.mh.shootdown_ns, out.shootdown_time);
        }
        self.obs.emit(now, || TraceEvent::FarFault {
            gpu: fault.gpu.0,
            vpn: fault.vpn.0,
            write: fault.is_write(),
            queue: out.queue_wait,
            service: out.latency,
        });
    }

    /// Migrates `vpn` into `to`'s memory, invalidating every other holder.
    fn do_migrate(
        &mut self,
        now: Time,
        to: GpuId,
        vpn: Vpn,
        bits: PolicyBits,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        self.ensure_frame_available(to, vpn)?;
        let entry = self.entry(vpn)?;
        let from = entry.owner;
        let mut victims: Vec<GpuId> = Vec::new();
        for g in entry.duplicate_holders().chain(entry.remote_mappers()) {
            if !victims.contains(&g) {
                victims.push(g);
            }
        }
        if let Some(og) = from.gpu() {
            if !victims.contains(&og) {
                victims.push(og);
            }
        }
        let mut inv_count = 0usize;
        for g in victims {
            if g == to {
                // The requester's own stale mapping (e.g. a remote map being
                // upgraded by a counter migration) is replaced below, but its
                // TLB entry must still be refreshed.
                self.invalidate_at(now, g, vpn, true, out);
                continue;
            }
            self.invalidate_at(now, g, vpn, true, out);
            inv_count += 1;
        }
        self.charge_invalidation(inv_count, out);

        if from != DeviceId::Gpu(to) {
            self.charge_transfer(now, from, DeviceId::Gpu(to), fabric, out);
        }
        if let Some(victim) = self.state.frames[to.index()].insert(vpn) {
            self.do_evict(now, to, victim, fabric, out)?;
        }
        let e = self.entry_mut(vpn)?;
        let old_bits = e.policy;
        e.owner = DeviceId::Gpu(to);
        e.copy_mask = 0;
        e.mapper_mask = 0;
        e.policy = bits;
        self.state.local_tables[to.index()].insert(
            vpn,
            Pte {
                location: DeviceId::Gpu(to),
                writable: true,
                policy: bits,
            },
        );
        out.latency += self.costs.pte_update;
        self.note_policy(now, vpn, old_bits, bits);
        self.obs.emit(now, || TraceEvent::Migration {
            vpn: vpn.0,
            from: endpoint(from),
            to: Endpoint::Gpu(to.0),
        });
        Ok(())
    }

    /// Installs a remote mapping for `gpu` to the page's current owner.
    fn do_remote_map(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        out: &mut Outcome,
    ) -> SimResult<()> {
        // Read-only duplicates cannot coexist with a writable remote
        // mapping: collapse them back to the owner first.
        let entry = self.entry(vpn)?;
        if entry.copy_mask != 0 {
            let mut inv = 0usize;
            for g in entry.duplicate_holders() {
                self.invalidate_at(now, g, vpn, true, out);
                inv += 1;
            }
            self.charge_invalidation(inv, out);
            self.entry_mut(vpn)?.copy_mask = 0;
        }
        let owner = self.entry(vpn)?.owner;
        if owner == DeviceId::Gpu(gpu) {
            // Degenerate case (e.g. a re-fault on a self-owned page with
            // the host-PT filter ablated): just reinstall the local
            // translation.
            self.ensure_frame_available(gpu, vpn)?;
            self.state.frames[gpu.index()].insert(vpn);
            self.state.local_tables[gpu.index()].insert(
                vpn,
                Pte {
                    location: owner,
                    writable: true,
                    policy: PolicyBits::AccessCounter,
                },
            );
            out.latency += self.costs.pte_update;
            return Ok(());
        }
        // Restore the owner's writable mapping (it may have been downgraded
        // while duplicated).
        if let Some(og) = owner.gpu() {
            self.state.local_tables[og.index()].insert(
                vpn,
                Pte {
                    location: owner,
                    writable: true,
                    policy: PolicyBits::AccessCounter,
                },
            );
        }
        let e = self.entry_mut(vpn)?;
        let old_bits = e.policy;
        e.mapper_mask |= 1 << gpu.0;
        e.policy = PolicyBits::AccessCounter;
        self.state.local_tables[gpu.index()].insert(
            vpn,
            Pte {
                location: owner,
                writable: true,
                policy: PolicyBits::AccessCounter,
            },
        );
        out.latency += self.costs.pte_update;
        self.stats.remote_maps += 1;
        self.note_policy(now, vpn, old_bits, PolicyBits::AccessCounter);
        Ok(())
    }

    /// Creates a read-only duplicate of `vpn` on `gpu`.
    fn do_duplicate(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        self.ensure_frame_available(gpu, vpn)?;
        let entry = self.entry(vpn)?;
        // Writable remote mappings cannot coexist with read-only copies.
        let mut inv = 0usize;
        for g in entry.remote_mappers() {
            if g != gpu {
                self.invalidate_at(now, g, vpn, false, out);
                inv += 1;
            }
        }
        let owner = entry.owner;
        // Downgrade the owner's mapping to read-only.
        if let Some(og) = owner.gpu() {
            if let Some(pte) = self.state.local_tables[og.index()].get(vpn).copied() {
                if pte.writable {
                    self.state.local_tables[og.index()].insert(
                        vpn,
                        Pte {
                            writable: false,
                            policy: PolicyBits::Duplication,
                            ..pte
                        },
                    );
                    out.invalidations.push((og, vpn));
                    self.stats.invalidations += 1;
                    inv += 1;
                }
            }
        }
        self.charge_invalidation(inv, out);
        self.charge_transfer(now, owner, DeviceId::Gpu(gpu), fabric, out);
        if let Some(victim) = self.state.frames[gpu.index()].insert(vpn) {
            self.do_evict(now, gpu, victim, fabric, out)?;
        }
        let e = self.entry_mut(vpn)?;
        let old_bits = e.policy;
        e.mapper_mask = 0;
        e.copy_mask |= 1 << gpu.0;
        e.policy = PolicyBits::Duplication;
        self.state.local_tables[gpu.index()].insert(
            vpn,
            Pte {
                location: DeviceId::Gpu(gpu),
                writable: false,
                policy: PolicyBits::Duplication,
            },
        );
        out.latency += self.costs.pte_update;
        self.stats.duplications += 1;
        self.note_policy(now, vpn, old_bits, PolicyBits::Duplication);
        self.obs.emit(now, || TraceEvent::Duplication {
            vpn: vpn.0,
            from: endpoint(owner),
            to: gpu.0,
        });
        Ok(())
    }

    /// Write-collapse: invalidate every copy and make the writer the
    /// exclusive owner.
    fn do_collapse_to_writer(
        &mut self,
        now: Time,
        writer: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        self.ensure_frame_available(writer, vpn)?;
        let entry = self.entry(vpn)?;
        let writer_has_data =
            entry.owner == DeviceId::Gpu(writer) || entry.copy_mask & (1 << writer.0) != 0;
        let mut inv = 0usize;
        for g in entry.duplicate_holders().chain(entry.remote_mappers()) {
            if g != writer {
                self.invalidate_at(now, g, vpn, true, out);
                inv += 1;
            }
        }
        if let Some(og) = entry.owner.gpu() {
            if og != writer {
                self.invalidate_at(now, og, vpn, true, out);
                inv += 1;
            }
        }
        self.charge_invalidation(inv, out);
        if !writer_has_data {
            self.charge_transfer(now, entry.owner, DeviceId::Gpu(writer), fabric, out);
        }
        if let Some(victim) = self.state.frames[writer.index()].insert(vpn) {
            self.do_evict(now, writer, victim, fabric, out)?;
        }
        let e = self.entry_mut(vpn)?;
        let bits = e.policy;
        e.owner = DeviceId::Gpu(writer);
        e.copy_mask = 0;
        e.mapper_mask = 0;
        self.state.local_tables[writer.index()].insert(
            vpn,
            Pte {
                location: DeviceId::Gpu(writer),
                writable: true,
                policy: bits,
            },
        );
        out.latency += self.costs.pte_update;
        self.stats.collapses += 1;
        Ok(())
    }

    /// Gives `gpu` its own writable copy with no consistency bookkeeping
    /// (the hypothetical Ideal policy).
    fn do_ideal_copy(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        self.ensure_frame_available(gpu, vpn)?;
        let entry = self.entry(vpn)?;
        self.charge_transfer(now, entry.owner, DeviceId::Gpu(gpu), fabric, out);
        if let Some(victim) = self.state.frames[gpu.index()].insert(vpn) {
            self.do_evict(now, gpu, victim, fabric, out)?;
        }
        self.entry_mut(vpn)?.copy_mask |= 1 << gpu.0;
        self.state.local_tables[gpu.index()].insert(
            vpn,
            Pte {
                location: DeviceId::Gpu(gpu),
                writable: true,
                policy: PolicyBits::OnTouch,
            },
        );
        out.latency += self.costs.pte_update;
        self.stats.ideal_copies += 1;
        Ok(())
    }

    /// Neighborhood prefetch: after a host→GPU on-touch migration, pull in
    /// the rest of the faulting page's 64 KiB group that is still
    /// host-resident and untouched. Transfers ride along with the fault's
    /// resolution (no additional fault service); PTEs are installed so the
    /// prefetched pages never fault.
    fn do_group_prefetch(
        &mut self,
        now: Time,
        gpu: GpuId,
        vpn: Vpn,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        let group = vpn.0 >> self.group_shift;
        let first = group << self.group_shift;
        for p in first..first + (1 << self.group_shift) {
            let candidate = Vpn(p);
            if candidate == vpn {
                continue;
            }
            // Prefetch is best-effort: a frame-exhausted GPU just skips it.
            if self.ensure_frame_available(gpu, candidate).is_err() {
                break;
            }
            let eligible = self.state.host_table.get(candidate).is_some_and(|e| {
                e.owner == DeviceId::Host
                    && e.copy_mask == 0
                    && e.mapper_mask == 0
                    && e.touched_by == 0
            });
            if !eligible {
                continue;
            }
            let t = fabric.transfer(
                now + out.latency,
                DeviceId::Host,
                DeviceId::Gpu(gpu),
                self.page_bytes(),
            );
            // Prefetch transfers consume bandwidth but resolve in the
            // background; only the transfer pipeline extends the fault.
            let busy = t.latency_from(now + out.latency);
            let bytes = self.page_bytes();
            self.obs.emit(now, || TraceEvent::LinkTransfer {
                from: Endpoint::Host,
                to: Endpoint::Gpu(gpu.0),
                bytes,
                busy,
            });
            if let Some(victim) = self.state.frames[gpu.index()].insert(candidate) {
                self.do_evict(now, gpu, victim, fabric, out)?;
            }
            self.entry_mut(candidate)?.owner = DeviceId::Gpu(gpu);
            self.state.local_tables[gpu.index()].insert(
                candidate,
                Pte {
                    location: DeviceId::Gpu(gpu),
                    writable: true,
                    policy: PolicyBits::OnTouch,
                },
            );
            self.stats.prefetches += 1;
        }
        Ok(())
    }

    /// Evicts `victim` from `gpu` (its frame was just reclaimed): duplicate
    /// copies are simply dropped; owned pages are written back to the host,
    /// which keeps their learned policy bits (the paper's oversubscription
    /// fix in Section VI-D).
    fn do_evict(
        &mut self,
        now: Time,
        gpu: GpuId,
        victim: Vpn,
        fabric: &mut Fabric,
        out: &mut Outcome,
    ) -> SimResult<()> {
        let entry = *self.state.host_table.get(victim).ok_or(
            // The allocator thought the frame was resident but the host
            // table has never heard of the page: the two diverged.
            EvictionError::VictimUnregistered {
                vpn: victim.0,
                gpu: gpu.0,
            },
        )?;
        self.stats.evictions += 1;
        self.obs.emit(now, || TraceEvent::Eviction {
            gpu: gpu.0,
            vpn: victim.0,
        });
        if entry.owner != DeviceId::Gpu(gpu) {
            // The victim frame held a read-only duplicate (or ideal copy):
            // drop it, no data movement needed.
            self.invalidate_at(now, gpu, victim, false, out);
            self.charge_invalidation(1, out);
            self.entry_mut(victim)?.copy_mask &= !(1 << gpu.0);
            return Ok(());
        }
        // Full eviction of an owned page: every holder is invalidated and
        // the data moves back to host memory.
        let mut inv = 0usize;
        for g in entry.duplicate_holders().chain(entry.remote_mappers()) {
            if g != gpu {
                self.invalidate_at(now, g, victim, true, out);
                inv += 1;
            }
        }
        if !test_flags::skip_evict_invalidation() {
            self.invalidate_at(now, gpu, victim, false, out);
            inv += 1;
        }
        self.charge_invalidation(inv, out);
        // The write-back to host is asynchronous (the driver evicts in the
        // background): it consumes PCIe bandwidth but does not stall the
        // lane whose fault triggered the eviction.
        let t = fabric.transfer(
            now + out.latency,
            DeviceId::Gpu(gpu),
            DeviceId::Host,
            self.page_bytes(),
        );
        let busy = t.latency_from(now + out.latency);
        let bytes = self.page_bytes();
        self.obs.emit(now, || TraceEvent::LinkTransfer {
            from: Endpoint::Gpu(gpu.0),
            to: Endpoint::Host,
            bytes,
            busy,
        });
        let e = self.entry_mut(victim)?;
        e.owner = DeviceId::Host;
        e.copy_mask = 0;
        e.mapper_mask = 0;
        // e.policy intentionally retained (Section VI-D).
        Ok(())
    }

    fn page_bytes(&self) -> u64 {
        self.state.page_size.bytes()
    }
}

impl Snapshot for UvmDriver {
    /// Serializes the driver's mutable state: the centralized tables, the
    /// per-GPU residency, the raw access counters, the thrash windows, the
    /// pipeline occupancy, and the event counters. Cost parameters, the
    /// counter threshold, and the policy engine's own state are NOT part of
    /// this section — they come from construction and from the policy's
    /// [`PolicyEngine::snapshot_state`](crate::policy::PolicyEngine)
    /// respectively.
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.state.gpu_count() as u64);
        self.state.host_table.snapshot(w);
        for g in 0..self.state.gpu_count() {
            self.state.local_tables[g].snapshot(w);
            self.state.frames[g].snapshot(w);
        }
        // HashMap iteration order is nondeterministic: emit access counters
        // and thrash windows sorted by key so identical states serialize to
        // identical bytes (the digest contract).
        let mut counters: Vec<((u8, u64), u32)> =
            self.counters.iter().map(|(k, v)| (*k, *v)).collect();
        counters.sort_unstable_by_key(|(k, _)| *k);
        w.u64(counters.len() as u64);
        for ((gpu, group), val) in counters {
            w.u8(gpu);
            w.u64(group);
            w.u32(val);
        }
        let mut thrash: Vec<(Vpn, (u32, Time))> =
            self.thrash.iter().map(|(k, v)| (*k, *v)).collect();
        thrash.sort_unstable_by_key(|(v, _)| v.0);
        w.u64(thrash.len() as u64);
        for (vpn, (count, start)) in thrash {
            w.u64(vpn.0);
            w.u32(count);
            w.u64(start.as_ps());
        }
        w.u64(self.driver_free.as_ps());
        self.stats.snapshot(w);
    }
}

impl Restore for UvmDriver {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let gpus = r.usize()?;
        if gpus != self.state.gpu_count() {
            return Err(r.malformed(format!(
                "checkpoint driver manages {gpus} GPUs, this system has {}",
                self.state.gpu_count()
            )));
        }
        self.state.host_table.restore(r)?;
        for g in 0..gpus {
            self.state.local_tables[g].restore(r)?;
            self.state.frames[g].restore(r)?;
        }
        let n = r.usize()?;
        self.counters = FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let gpu = r.u8()?;
            let group = r.u64()?;
            let val = r.u32()?;
            if self.counters.insert((gpu, group), val).is_some() {
                return Err(r.malformed(format!(
                    "duplicate access-counter key (gpu {gpu}, group {group})"
                )));
            }
        }
        let n = r.usize()?;
        self.thrash = FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let vpn = Vpn(r.u64()?);
            let count = r.u32()?;
            let start = Time::from_ps(r.u64()?);
            if self.thrash.insert(vpn, (count, start)).is_some() {
                return Err(r.malformed(format!("duplicate thrash entry for vpn {}", vpn.0)));
            }
        }
        self.driver_free = Time::from_ps(r.u64()?);
        self.stats.restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{
        AccessCounterPolicy, Decision, DuplicationPolicy, IdealPolicy, OnTouchPolicy,
    };
    use oasis_engine::SimError;
    use oasis_interconnect::FabricConfig;
    use oasis_mem::types::AccessKind;

    fn driver(policy: Box<dyn PolicyEngine>, capacity: Option<u64>) -> (UvmDriver, Fabric) {
        let mut d = UvmDriver::new(
            4,
            PageSize::Small4K,
            capacity,
            policy,
            UvmCosts::default(),
            4, // low threshold for tests
        );
        d.alloc_object(ObjectId(0), Va(0x1000_0000), 64 * 4096, |_| DeviceId::Host)
            .expect("fresh allocation");
        (d, Fabric::new(4, FabricConfig::default()))
    }

    fn vpn(i: u64) -> Vpn {
        Va(0x1000_0000 + i * 4096).vpn(PageSize::Small4K)
    }

    fn far(gpu: u8, page: u64, kind: AccessKind) -> PageFault {
        PageFault::far(GpuId(gpu), Va(0x1000_0000 + page * 4096), vpn(page), kind)
    }

    /// Resolves a fault that the test expects to succeed.
    fn fault(d: &mut UvmDriver, f: &mut Fabric, pf: &PageFault) -> Outcome {
        d.handle_fault(Time::ZERO, pf, f).expect("fault resolves")
    }

    /// Copied host-table entry for a page the test knows is registered.
    fn entry(d: &UvmDriver, v: Vpn) -> HostEntry {
        *d.state.host_table.get(v).expect("page registered")
    }

    /// Local PTE for a page the test knows is mapped on `g`.
    fn pte(d: &UvmDriver, g: usize, v: Vpn) -> Pte {
        *d.state.local_tables[g].get(v).expect("page mapped")
    }

    /// Remote-access notification that the test expects to succeed.
    fn note(d: &mut UvmDriver, f: &mut Fabric, g: u8, v: Vpn) -> Option<Outcome> {
        d.note_remote_access(Time::ZERO, GpuId(g), v, f)
            .expect("notification accepted")
    }

    /// Edits a registered page's host-table entry in place.
    fn with_entry(d: &mut UvmDriver, v: Vpn, edit: impl FnOnce(&mut HostEntry)) {
        edit(d.state.host_table.get_mut(v).expect("page registered"));
    }

    #[test]
    fn on_touch_migrates_from_host_then_between_gpus() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::Migrated);
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(0)));
        assert!(d.state.frames[0].contains(vpn(0)));
        // GPU1 touches the same page: ping-pong migration, GPU0 invalidated.
        let o = fault(&mut d, &mut f, &far(1, 0, AccessKind::Write));
        assert_eq!(o.kind, OutcomeKind::Migrated);
        assert!(o.invalidations.contains(&(GpuId(0), vpn(0))));
        assert!(d.state.local_tables[0].get(vpn(0)).is_none());
        assert!(!d.state.frames[0].contains(vpn(0)));
        assert!(d.state.frames[1].contains(vpn(0)));
        assert_eq!(d.stats.migrations, 2);
        assert_eq!(d.stats.far_faults, 2);
    }

    #[test]
    fn access_counter_maps_then_migrates_at_threshold() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), None);
        // GPU0 touches first: remote map to host (deferred migration).
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        assert_eq!(o.kind, OutcomeKind::RemoteMapped);
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Host);
        // GPU0's counter reaches the threshold: the 64 KiB group migrates
        // to it from the host (region-granular migration).
        for _ in 0..3 {
            note(&mut d, &mut f, 0, vpn(0));
        }
        let o = note(&mut d, &mut f, 0, vpn(0)).expect("host group migrates at threshold");
        assert!(matches!(o.kind, OutcomeKind::CounterMigrated { pages: 16 }));
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(0)));
        // Unmapped same-source neighbors moved too.
        assert_eq!(entry(&d, vpn(5)).owner, DeviceId::Gpu(GpuId(0)));
        d.stats.counter_migrations = 0;
        // GPU1 then faults: remote map, data stays at GPU0.
        let o = fault(&mut d, &mut f, &far(1, 0, AccessKind::Write));
        assert_eq!(o.kind, OutcomeKind::RemoteMapped);
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Gpu(GpuId(0)));
        assert!(e.maps_remotely(GpuId(1)));
        let p = pte(&d, 1, vpn(0));
        assert_eq!(p.location, DeviceId::Gpu(GpuId(0)));
        assert_eq!(p.policy, PolicyBits::AccessCounter);
        // Remote accesses below the threshold don't migrate.
        for _ in 0..3 {
            assert!(note(&mut d, &mut f, 1, vpn(0)).is_none());
        }
        // The 4th access hits the threshold and migrates the group (all 16
        // pages now live at GPU0, the triggering page's source) to GPU1.
        let o = note(&mut d, &mut f, 1, vpn(0)).expect("counter migration");
        assert!(matches!(o.kind, OutcomeKind::CounterMigrated { pages: 16 }));
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(1)));
        assert!(o.invalidations.contains(&(GpuId(0), vpn(0))));
        assert_eq!(d.stats.counter_migrations, 16);
        // Counter migration keeps the access-counter policy bits.
        assert_eq!(entry(&d, vpn(0)).policy, PolicyBits::AccessCounter);
    }

    #[test]
    fn counter_migration_moves_whole_group_mapped_remotely() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), None);
        // GPU1 remote-maps host pages 0 and 1 (same 64 KiB group).
        fault(&mut d, &mut f, &far(1, 0, AccessKind::Read));
        fault(&mut d, &mut f, &far(1, 1, AccessKind::Read));
        for _ in 0..3 {
            assert!(note(&mut d, &mut f, 1, vpn(0)).is_none());
        }
        let o = note(&mut d, &mut f, 1, vpn(0)).expect("group migrates");
        // The whole same-source 64 KiB group migrates together (16 pages
        // registered in the test object's first group).
        assert!(matches!(o.kind, OutcomeKind::CounterMigrated { pages: 16 }));
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(1)));
        assert_eq!(entry(&d, vpn(1)).owner, DeviceId::Gpu(GpuId(1)));
    }

    #[test]
    fn duplication_read_shares_then_write_collapses() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy), None);
        // GPU0 reads: duplicate from host (host stays owner).
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::Duplicated);
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Host);
        assert!(e.readable_at(GpuId(0)));
        assert!(!pte(&d, 0, vpn(0)).writable);
        // GPU1 and GPU2 also read.
        fault(&mut d, &mut f, &far(1, 0, AccessKind::Read));
        fault(&mut d, &mut f, &far(2, 0, AccessKind::Read));
        assert_eq!(entry(&d, vpn(0)).duplicate_count(), 3);
        assert_eq!(d.stats.duplications, 3);
        // GPU0 writes its read-only copy: protection fault, collapse.
        let pf = PageFault::protection(GpuId(0), Va(0x1000_0000), vpn(0));
        let o = fault(&mut d, &mut f, &pf);
        assert_eq!(o.kind, OutcomeKind::CollapsedToWriter);
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Gpu(GpuId(0)));
        assert_eq!(e.copy_mask, 0);
        assert!(pte(&d, 0, vpn(0)).writable);
        assert!(d.state.local_tables[1].get(vpn(0)).is_none());
        assert!(d.state.local_tables[2].get(vpn(0)).is_none());
        assert_eq!(d.stats.collapses, 1);
        assert!(!d.state.frames[1].contains(vpn(0)));
    }

    #[test]
    fn write_far_fault_under_duplication_pays_double() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy), None);
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        assert_eq!(o.kind, OutcomeKind::DuplicatedAndCollapsed);
        // Ends exclusive-writable at the writer.
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Gpu(GpuId(0)));
        assert!(pte(&d, 0, vpn(0)).writable);
        // It cost a far fault AND a protection fault.
        assert_eq!(d.stats.far_faults, 1);
        assert_eq!(d.stats.protection_faults, 1);
        let single_fault_floor =
            UvmCosts::default().far_fault_base + UvmCosts::default().protection_fault_base;
        assert!(o.latency > single_fault_floor);
    }

    #[test]
    fn ideal_copies_are_writable_and_never_invalidated() {
        let (mut d, mut f) = driver(Box::new(IdealPolicy), None);
        for g in 0..4 {
            let o = fault(&mut d, &mut f, &far(g, 0, AccessKind::Write));
            assert_eq!(o.kind, OutcomeKind::IdealCopied);
            assert!(o.invalidations.is_empty());
        }
        for g in 0..4usize {
            let p = pte(&d, g, vpn(0));
            assert!(p.writable);
            assert_eq!(p.location, DeviceId::Gpu(GpuId(g as u8)));
        }
        assert_eq!(d.stats.ideal_copies, 4);
        assert_eq!(d.stats.collapses, 0);
    }

    #[test]
    fn oversubscription_evicts_lru_to_host_and_keeps_policy_bits() {
        // Capacity of 2 pages per GPU.
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), Some(2));
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        fault(&mut d, &mut f, &far(0, 1, AccessKind::Write));
        // Mark page 0's learned policy so we can check it survives eviction.
        with_entry(&mut d, vpn(0), |e| e.policy = PolicyBits::Duplication);
        // Third page evicts page 0 (LRU).
        let o = fault(&mut d, &mut f, &far(0, 2, AccessKind::Write));
        assert!(o.invalidations.contains(&(GpuId(0), vpn(0))));
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Host);
        assert_eq!(e.policy, PolicyBits::Duplication);
        assert!(!d.state.frames[0].contains(vpn(0)));
        assert!(d.state.frames[0].contains(vpn(1)));
        assert!(d.state.frames[0].contains(vpn(2)));
        assert_eq!(d.stats.evictions, 1);
    }

    #[test]
    fn evicting_a_duplicate_copy_drops_it_without_writeback() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy), Some(2));
        // Two duplicates on GPU0 (owner stays host), then a third fills it.
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        fault(&mut d, &mut f, &far(0, 1, AccessKind::Read));
        let before = f.pcie_bytes();
        fault(&mut d, &mut f, &far(0, 2, AccessKind::Read));
        // Page 0's copy dropped from GPU0; host entry no longer lists it.
        assert!(!entry(&d, vpn(0)).readable_at(GpuId(0)));
        assert!(d.state.local_tables[0].get(vpn(0)).is_none());
        // Only the new duplicate's transfer hit PCIe (no write-back).
        assert_eq!(f.pcie_bytes() - before, 4096);
        assert_eq!(d.stats.evictions, 1);
    }

    #[test]
    fn protection_fault_with_remote_map_policy_collapses_to_writer_as_acctr() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), None);
        // GPU0 owns the page; GPU1 and GPU2 hold duplicates (hand-built,
        // as OASIS can produce after a policy change).
        with_entry(&mut d, vpn(0), |e| {
            e.owner = DeviceId::Gpu(GpuId(0));
            e.copy_mask = 0b0110;
        });
        d.state.frames[0].insert(vpn(0));
        d.state.local_tables[0].insert(
            vpn(0),
            Pte {
                location: DeviceId::Gpu(GpuId(0)),
                writable: false,
                policy: PolicyBits::Duplication,
            },
        );
        for g in [1u8, 2u8] {
            d.state.frames[g as usize].insert(vpn(0));
            d.state.local_tables[g as usize].insert(
                vpn(0),
                Pte {
                    location: DeviceId::Gpu(GpuId(g)),
                    writable: false,
                    policy: PolicyBits::Duplication,
                },
            );
        }
        let pf = PageFault::protection(GpuId(1), Va(0x1000_0000), vpn(0));
        let o = fault(&mut d, &mut f, &pf);
        assert_eq!(o.kind, OutcomeKind::CollapsedToWriter);
        let e = entry(&d, vpn(0));
        // The writer becomes the exclusive owner with access-counter
        // policy bits: later sharers remote-map instead of duplicating.
        assert_eq!(e.owner, DeviceId::Gpu(GpuId(1)));
        assert_eq!(e.copy_mask, 0);
        assert_eq!(e.policy, PolicyBits::AccessCounter);
        assert!(pte(&d, 1, vpn(0)).writable);
        assert!(d.state.local_tables[0].get(vpn(0)).is_none());
        assert!(d.state.local_tables[2].get(vpn(0)).is_none());
    }

    #[test]
    fn group_prefetch_pulls_untouched_neighbors() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        d.prefetch_group = true;
        // One fault on page 0 migrates it AND prefetches the rest of its
        // 64 KiB group (pages 1..16) from the host.
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::Migrated);
        assert_eq!(d.stats.prefetches, 15);
        for p in 0..16u64 {
            assert_eq!(
                entry(&d, vpn(p)).owner,
                DeviceId::Gpu(GpuId(0)),
                "page {p} should be resident after prefetch"
            );
            assert!(d.state.local_tables[0].get(vpn(p)).is_some());
        }
        // Subsequent accesses to the group fault no more.
        let faults_before = d.stats.far_faults;
        assert!(d.state.local_tables[0].get(vpn(5)).is_some());
        assert_eq!(d.stats.far_faults, faults_before);
        // Pages already touched by another GPU are not stolen by prefetch.
        fault(&mut d, &mut f, &far(1, 17, AccessKind::Read));
        let o = fault(&mut d, &mut f, &far(0, 16, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::Migrated);
        assert_eq!(
            entry(&d, vpn(17)).owner,
            DeviceId::Gpu(GpuId(1)),
            "prefetch must not steal touched pages"
        );
    }

    #[test]
    fn striped_placement_premaps_pages() {
        let mut d = UvmDriver::new(
            4,
            PageSize::Small4K,
            None,
            Box::new(OnTouchPolicy),
            UvmCosts::default(),
            256,
        );
        d.alloc_object(ObjectId(0), Va(0x1000_0000), 4 * 4096, |v| {
            DeviceId::Gpu(GpuId((v.0 % 4) as u8))
        })
        .expect("fresh allocation");
        let mut owners: Vec<DeviceId> = (0..4).map(|i| entry(&d, vpn(i)).owner).collect();
        owners.sort();
        owners.dedup();
        assert_eq!(owners.len(), 4, "pages striped across all four GPUs");
        // Each owning GPU already has a valid local translation.
        for i in 0..4u64 {
            if let DeviceId::Gpu(g) = entry(&d, vpn(i)).owner {
                assert!(d.state.local_tables[g.index()].get(vpn(i)).is_some());
            } else {
                unreachable!("striped pages are GPU-owned");
            }
        }
    }

    #[test]
    fn double_alloc_is_a_typed_error() {
        let (mut d, _) = driver(Box::new(OnTouchPolicy), None);
        let err = d
            .alloc_object(ObjectId(1), Va(0x1000_0000), 4096, |_| DeviceId::Host)
            .expect_err("overlapping allocation must be rejected");
        assert!(matches!(err, SimError::Table(_)), "got {err}");
    }

    #[test]
    fn free_object_unmaps_everywhere() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        fault(&mut d, &mut f, &far(2, 0, AccessKind::Write));
        d.free_object(ObjectId(0), Va(0x1000_0000), 64 * 4096);
        assert!(d.state.host_table.get(vpn(0)).is_none());
        assert!(d.state.local_tables[2].get(vpn(0)).is_none());
        assert!(!d.state.frames[2].contains(vpn(0)));
    }

    #[test]
    fn fault_on_unregistered_page_is_a_typed_error() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        let bogus_va = Va(0x9999_0000);
        let bogus = PageFault::far(
            GpuId(0),
            bogus_va,
            bogus_va.vpn(PageSize::Small4K),
            AccessKind::Read,
        );
        let err = d
            .handle_fault(Time::ZERO, &bogus, &mut f)
            .expect_err("unregistered page must not resolve");
        assert_eq!(
            err,
            SimError::Fault(oasis_engine::FaultError::UnregisteredPage {
                vpn: bogus_va.vpn(PageSize::Small4K).0,
                gpu: 0,
            })
        );
        // The failed fault must leave no trace in the stats or state.
        assert_eq!(d.stats.far_faults, 0);
    }

    #[test]
    fn fault_from_unknown_gpu_is_a_typed_error() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        let bogus = PageFault::far(GpuId(9), Va(0x1000_0000), vpn(0), AccessKind::Read);
        let err = d
            .handle_fault(Time::ZERO, &bogus, &mut f)
            .expect_err("GPU 9 does not exist");
        assert!(matches!(
            err,
            SimError::Fault(oasis_engine::FaultError::NoSuchGpu {
                gpu: 9,
                gpu_count: 4
            })
        ));
    }

    #[test]
    fn remote_map_collapses_existing_duplicates_first() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy), None);
        // GPU0 writes (becomes owner), GPU1 reads (duplicate).
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        fault(&mut d, &mut f, &far(1, 0, AccessKind::Read));
        assert_eq!(entry(&d, vpn(0)).duplicate_count(), 1);
        // Switch policy semantics: hand GPU2 a remote map via the driver.
        let mut out = Outcome::new(OutcomeKind::RemoteMapped);
        d.do_remote_map(Time::ZERO, GpuId(2), vpn(0), &mut out)
            .expect("remote map succeeds");
        let e = entry(&d, vpn(0));
        assert_eq!(e.copy_mask, 0, "duplicates collapsed");
        assert!(e.maps_remotely(GpuId(2)));
        // The owner's mapping is writable again.
        assert!(pte(&d, 0, vpn(0)).writable);
    }

    #[test]
    fn poke_counter_forces_next_access_over_threshold() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), None);
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Read)); // remote map
                                                             // Corrupt the counter to just below the threshold: one access trips.
        d.poke_counter(GpuId(0), vpn(0), 3);
        let o = note(&mut d, &mut f, 0, vpn(0)).expect("poked counter trips");
        assert!(matches!(o.kind, OutcomeKind::CounterMigrated { .. }));
    }

    #[test]
    fn snapshot_round_trips_driver_state_bit_identically() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), Some(8));
        // Build up nontrivial state: remote maps, counters mid-threshold,
        // thrash windows, evictions, a busy driver pipeline.
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        fault(&mut d, &mut f, &far(1, 1, AccessKind::Write));
        note(&mut d, &mut f, 0, vpn(0));
        note(&mut d, &mut f, 0, vpn(0));
        note(&mut d, &mut f, 1, vpn(1));
        let mut w = ByteWriter::new();
        d.snapshot(&mut w);
        let buf = w.into_vec();

        let mut fresh = UvmDriver::new(
            4,
            PageSize::Small4K,
            Some(8),
            Box::new(AccessCounterPolicy),
            UvmCosts::default(),
            4,
        );
        let mut r = ByteReader::new("driver", &buf);
        fresh.restore(&mut r).expect("valid driver state");
        assert!(r.is_empty(), "payload fully consumed");
        assert_eq!(fresh.stats, d.stats);

        // Re-serializing the restored driver is bit-identical — the digest
        // contract that makes divergence detection meaningful.
        let mut w2 = ByteWriter::new();
        fresh.snapshot(&mut w2);
        assert_eq!(w2.as_slice(), buf.as_slice());

        // And the restored driver behaves identically: the same remote
        // access trips (or doesn't trip) the counter in both.
        let mut f2 = Fabric::new(4, FabricConfig::default());
        let a = note(&mut d, &mut f, 0, vpn(0));
        let b = note(&mut fresh, &mut f2, 0, vpn(0));
        assert_eq!(a.is_some(), b.is_some());
    }

    #[test]
    fn restore_rejects_gpu_count_mismatch() {
        let (d, _) = driver(Box::new(OnTouchPolicy), None);
        let mut w = ByteWriter::new();
        d.snapshot(&mut w);
        let buf = w.into_vec();
        let mut small = UvmDriver::new(
            2,
            PageSize::Small4K,
            None,
            Box::new(OnTouchPolicy),
            UvmCosts::default(),
            256,
        );
        let mut r = ByteReader::new("driver", &buf);
        assert!(small.restore(&mut r).is_err());
    }

    /// Wraps a policy and records link-degradation notifications, so tests
    /// can observe the driver-side half of the self-correction handshake.
    struct RecordingPolicy {
        inner: DuplicationPolicy,
        degraded: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl PolicyEngine for RecordingPolicy {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision {
            self.inner.resolve(fault, state)
        }
        fn on_link_degraded(&mut self, _va: Va) {
            self.degraded.set(self.degraded.get() + 1);
        }
    }

    #[test]
    fn ecc_poison_of_a_replica_drops_it_without_reservice() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy), Some(8));
        // GPU0 owns the page; GPU1 holds a read-only duplicate.
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        fault(&mut d, &mut f, &far(1, 0, AccessKind::Read));
        let o = d
            .poison_frame(Time::ZERO, GpuId(1), vpn(0), &mut f)
            .expect("replica drop never fails")
            .expect("frame was resident");
        assert_eq!(o.kind, OutcomeKind::EccReplicaDropped);
        let e = entry(&d, vpn(0));
        assert_eq!(e.owner, DeviceId::Gpu(GpuId(0)), "owner untouched");
        assert!(!e.readable_at(GpuId(1)), "replica gone");
        assert!(d.state.local_tables[1].get(vpn(0)).is_none());
        assert_eq!(d.state.frames[1].quarantined(), 1);
        assert_eq!(d.stats.ecc_quarantines, 1);
        assert_eq!(d.stats.fault_retries, 0, "no re-service for replicas");
    }

    #[test]
    fn ecc_poison_of_the_owner_reservices_from_the_home_copy() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), Some(8));
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(0)));
        let o = d
            .poison_frame(Time::ZERO, GpuId(0), vpn(0), &mut f)
            .expect("one spare frame remains")
            .expect("frame was resident");
        // The replayed far fault re-migrated the page onto GPU0.
        assert_eq!(o.kind, OutcomeKind::Migrated);
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Gpu(GpuId(0)));
        assert!(d.state.frames[0].contains(vpn(0)));
        assert_eq!(d.state.frames[0].quarantined(), 1);
        assert_eq!(d.stats.ecc_quarantines, 1);
        assert_eq!(d.stats.fault_retries, 1, "first replay succeeded");
    }

    #[test]
    fn ecc_poison_on_a_nonresident_page_is_a_noop() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), Some(8));
        assert!(d
            .poison_frame(Time::ZERO, GpuId(2), vpn(0), &mut f)
            .expect("no-op")
            .is_none());
        assert_eq!(d.stats.ecc_quarantines, 0);
        assert_eq!(d.state.frames[2].quarantined(), 0);
    }

    #[test]
    fn ecc_exhaustion_is_a_typed_error_never_a_panic() {
        // A single frame per GPU: poisoning it leaves GPU0 with nothing.
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), Some(1));
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Write));
        let err = d
            .poison_frame(Time::ZERO, GpuId(0), vpn(0), &mut f)
            .expect_err("no usable frame left on GPU0");
        assert_eq!(
            err,
            SimError::HardwareExhausted {
                gpu: 0,
                vpn: vpn(0).0,
                retries: ECC_RETRY_BUDGET,
            }
        );
        assert_eq!(d.stats.fault_retries, ECC_RETRY_BUDGET as u64);
        // Degradation is graceful: the page fell back to its home copy and
        // other GPUs still serve it (here: GPU1 migrates it to itself).
        assert_eq!(entry(&d, vpn(0)).owner, DeviceId::Host);
        let o = fault(&mut d, &mut f, &far(1, 0, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::Migrated);
    }

    #[test]
    fn frame_exhausted_gpu_still_remote_maps() {
        let (mut d, mut f) = driver(Box::new(AccessCounterPolicy), Some(1));
        // Hand GPU0 ownership of page 1 so it occupies its only frame.
        with_entry(&mut d, vpn(1), |e| e.owner = DeviceId::Gpu(GpuId(0)));
        d.state.frames[0].insert(vpn(1));
        d.state.local_tables[0].insert(
            vpn(1),
            Pte {
                location: DeviceId::Gpu(GpuId(0)),
                writable: true,
                policy: PolicyBits::OnTouch,
            },
        );
        // Poisoning it exhausts GPU0, but the re-service still succeeds:
        // the access-counter policy serves the page through a remote
        // mapping, which claims no local frame.
        let o = d
            .poison_frame(Time::ZERO, GpuId(0), vpn(1), &mut f)
            .expect("remote-map recovery")
            .expect("frame was resident");
        assert_eq!(o.kind, OutcomeKind::RemoteMapped);
        assert!(d.state.frames[0].out_of_frames());
        // And later faults keep resolving the same graceful way.
        let o = fault(&mut d, &mut f, &far(0, 2, AccessKind::Read));
        assert_eq!(o.kind, OutcomeKind::RemoteMapped);
    }

    #[test]
    fn duplicate_across_a_dead_link_notifies_the_policy() {
        use oasis_interconnect::{FaultPlan, LinkDown};
        let degraded = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let mut d = UvmDriver::new(
            4,
            PageSize::Small4K,
            None,
            Box::new(RecordingPolicy {
                inner: DuplicationPolicy,
                degraded: degraded.clone(),
            }),
            UvmCosts::default(),
            256,
        );
        d.alloc_object(ObjectId(0), Va(0x1000_0000), 64 * 4096, |_| DeviceId::Host)
            .expect("fresh allocation");
        let plan = FaultPlan {
            link_down: vec![LinkDown {
                a: 0,
                b: 1,
                epoch: 0,
            }],
            ..FaultPlan::default()
        };
        let mut f = Fabric::with_plan(4, FabricConfig::default(), plan);
        assert_eq!(f.begin_epoch(0), vec![(0, 1)]);
        // GPU1 takes ownership; GPU0 then reads across the dead 0-1 link.
        fault(&mut d, &mut f, &far(1, 0, AccessKind::Write));
        fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        assert_eq!(degraded.get(), 1, "one degradation notification");
        // A host-sourced duplicate (no dead link on the path) is silent.
        fault(&mut d, &mut f, &far(2, 1, AccessKind::Read));
        assert_eq!(degraded.get(), 1);
    }

    #[test]
    fn migration_latency_includes_transfer_and_fault_overhead() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy), None);
        let o = fault(&mut d, &mut f, &far(0, 0, AccessKind::Read));
        let floor = UvmCosts::default().far_fault_base;
        assert!(o.latency > floor);
        // 4 KiB over 32 GB/s PCIe = 128 ns, plus 2 us latency, plus fault.
        assert!(o.latency.as_us() > 22.0);
        assert!(o.latency.as_us() < 30.0);
    }
}
