//! Page-fault descriptors delivered to the UVM driver.

use oasis_mem::types::{AccessKind, GpuId, Va, Vpn};

/// The two fault classes the driver distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultType {
    /// No valid translation in the GPU's local page table ("far fault").
    Far,
    /// A store hit a valid but read-only translation (a duplicated page);
    /// resolving it requires a write-collapse.
    Protection,
}

/// One page fault as delivered from a GPU to the host driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The faulting GPU.
    pub gpu: GpuId,
    /// The faulting virtual address, *including* any OASIS tag bits in the
    /// upper pointer bits (the driver may decode them).
    pub va: Va,
    /// The faulting virtual page.
    pub vpn: Vpn,
    /// Read or write — the "W" bit of the fault error code that the
    /// OP-Controller uses to learn an object's policy.
    pub kind: AccessKind,
    /// Far fault vs protection fault.
    pub fault_type: FaultType,
}

impl PageFault {
    /// Convenience constructor for a far fault.
    pub fn far(gpu: GpuId, va: Va, vpn: Vpn, kind: AccessKind) -> Self {
        PageFault {
            gpu,
            va,
            vpn,
            kind,
            fault_type: FaultType::Far,
        }
    }

    /// Convenience constructor for a protection (write) fault.
    pub fn protection(gpu: GpuId, va: Va, vpn: Vpn) -> Self {
        PageFault {
            gpu,
            va,
            vpn,
            kind: AccessKind::Write,
            fault_type: FaultType::Protection,
        }
    }

    /// The W bit of the fault error code.
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let f = PageFault::far(GpuId(1), Va(0x5000), Vpn(5), AccessKind::Read);
        assert_eq!(f.fault_type, FaultType::Far);
        assert!(!f.is_write());
        let p = PageFault::protection(GpuId(2), Va(0x6000), Vpn(6));
        assert_eq!(p.fault_type, FaultType::Protection);
        assert!(p.is_write());
    }
}
