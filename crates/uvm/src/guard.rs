//! sim-guard: the runtime cross-layer invariant checker.
//!
//! The simulator's correctness claims rest on the host page table, the
//! per-GPU local page tables, and the per-GPU frame allocators agreeing
//! about where every page lives. [`check_mem_state`] validates that
//! agreement on demand — after every driver step or at epoch boundaries,
//! depending on how the run is configured — and returns a typed
//! [`InvariantViolation`](oasis_engine::InvariantViolation) naming the first
//! divergence it finds.
//!
//! Checked invariants:
//!
//! 1. **owner-holds-frame** — a GPU that owns a page has the page resident
//!    in its frame allocator.
//! 2. **copy-holds-frame** — every duplicate holder has the page resident.
//! 3. **mask-bounds** — copy/mapper/owner masks never name GPUs outside the
//!    system.
//! 4. **local-pte-agrees** — a valid local PTE implies the host table grants
//!    that GPU access: a local-pointing PTE means owner or duplicate holder;
//!    a remote-pointing PTE means a recorded mapper pointing at the current
//!    owner.
//! 5. **no-writable-duplicates** — while a page is duplicated, no holder
//!    (including the owner) has a writable mapping. The Ideal policy is
//!    exempt by construction (`allow_writable_copies`).
//! 6. **frames-registered** — every frame-resident page has a host-table
//!    entry granting that GPU data (owner or duplicate holder).

use oasis_engine::error::{SimError, SimResult};
use oasis_mem::types::DeviceId;

use crate::driver::MemState;

/// Validates the cross-layer memory-state invariants.
///
/// `allow_writable_copies` exempts the no-writable-duplicates check (the
/// hypothetical Ideal policy hands out writable copies with no consistency
/// bookkeeping by design).
pub fn check_mem_state(state: &MemState, allow_writable_copies: bool) -> SimResult<()> {
    let gpu_count = state.gpu_count();
    let full_mask = if gpu_count >= 32 {
        u32::MAX
    } else {
        (1u32 << gpu_count) - 1
    };

    for (&vpn, entry) in state.host_table.iter() {
        // 3. Masks never name GPUs outside the system.
        if entry.copy_mask & !full_mask != 0 || entry.mapper_mask & !full_mask != 0 {
            return Err(SimError::invariant(
                "mask-bounds",
                format!(
                    "page {:#x}: copy_mask {:#b} / mapper_mask {:#b} name GPUs beyond the {} present",
                    vpn.0, entry.copy_mask, entry.mapper_mask, gpu_count
                ),
            ));
        }
        if let DeviceId::Gpu(g) = entry.owner {
            if g.index() >= gpu_count {
                return Err(SimError::invariant(
                    "mask-bounds",
                    format!(
                        "page {:#x}: owner GPU {} beyond the {} present",
                        vpn.0, g.0, gpu_count
                    ),
                ));
            }
            // 1. The owning GPU holds the frame.
            if !state.frames[g.index()].contains(vpn) {
                return Err(SimError::invariant(
                    "owner-holds-frame",
                    format!("page {:#x}: owner GPU {} has no resident frame", vpn.0, g.0),
                ));
            }
        }
        // 2. Every duplicate holder holds the frame.
        for g in entry.duplicate_holders() {
            if !state.frames[g.index()].contains(vpn) {
                return Err(SimError::invariant(
                    "copy-holds-frame",
                    format!(
                        "page {:#x}: duplicate holder GPU {} has no resident frame",
                        vpn.0, g.0
                    ),
                ));
            }
        }
        // 5. Duplicated pages are read-only everywhere.
        if entry.copy_mask != 0 && !allow_writable_copies {
            for g in 0..gpu_count {
                if let Some(pte) = state.local_tables[g].get(vpn) {
                    if pte.writable {
                        return Err(SimError::invariant(
                            "no-writable-duplicates",
                            format!(
                                "page {:#x}: GPU {g} maps it writable while copy_mask is {:#b}",
                                vpn.0, entry.copy_mask
                            ),
                        ));
                    }
                }
            }
        }
    }

    for (g, table) in state.local_tables.iter().enumerate() {
        for (&vpn, pte) in table.iter() {
            // 4. A valid local PTE is backed by the host table.
            let Some(entry) = state.host_table.get(vpn) else {
                return Err(SimError::invariant(
                    "local-pte-agrees",
                    format!("page {:#x}: GPU {g} maps an unregistered page", vpn.0),
                ));
            };
            let this = DeviceId::Gpu(oasis_mem::types::GpuId(g as u8));
            if pte.location == this {
                // Local data: must be the owner or a duplicate holder, with
                // the data actually resident.
                let has_data = entry.owner == this || entry.copy_mask & (1 << g) != 0;
                if !has_data {
                    return Err(SimError::invariant(
                        "local-pte-agrees",
                        format!(
                            "page {:#x}: GPU {g} has a local PTE but owns no data (owner {:?}, copies {:#b})",
                            vpn.0, entry.owner, entry.copy_mask
                        ),
                    ));
                }
                if !state.frames[g].contains(vpn) {
                    return Err(SimError::invariant(
                        "local-pte-agrees",
                        format!(
                            "page {:#x}: GPU {g} maps local data but holds no frame",
                            vpn.0
                        ),
                    ));
                }
            } else {
                // Remote-pointing PTE: must be a recorded mapper, and must
                // point at the page's current owner.
                if !entry.maps_remotely(oasis_mem::types::GpuId(g as u8)) {
                    return Err(SimError::invariant(
                        "local-pte-agrees",
                        format!(
                            "page {:#x}: GPU {g} has a remote PTE but is not a recorded mapper",
                            vpn.0
                        ),
                    ));
                }
                if pte.location != entry.owner {
                    return Err(SimError::invariant(
                        "local-pte-agrees",
                        format!(
                            "page {:#x}: GPU {g}'s remote PTE points at {:?} but the owner is {:?}",
                            vpn.0, pte.location, entry.owner
                        ),
                    ));
                }
            }
        }
    }

    // 6. Frame residency is backed by the host table.
    for (g, frames) in state.frames.iter().enumerate() {
        for vpn in frames.pages() {
            let Some(entry) = state.host_table.get(vpn) else {
                return Err(SimError::invariant(
                    "frames-registered",
                    format!("page {:#x}: resident on GPU {g} but not registered", vpn.0),
                ));
            };
            let this = DeviceId::Gpu(oasis_mem::types::GpuId(g as u8));
            let has_data = entry.owner == this || entry.copy_mask & (1 << g) != 0;
            if !has_data {
                return Err(SimError::invariant(
                    "frames-registered",
                    format!(
                        "page {:#x}: GPU {g} holds a frame but the host table grants it no data",
                        vpn.0
                    ),
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::UvmCosts;
    use crate::driver::UvmDriver;
    use crate::fault::PageFault;
    use crate::policy::{DuplicationPolicy, OnTouchPolicy, PolicyEngine};
    use oasis_interconnect::{Fabric, FabricConfig};
    use oasis_mem::page::{PolicyBits, Pte};
    use oasis_mem::types::{AccessKind, GpuId, ObjectId, PageSize, Va, Vpn};

    fn driver(policy: Box<dyn PolicyEngine>) -> (UvmDriver, Fabric) {
        let mut d = UvmDriver::new(4, PageSize::Small4K, None, policy, UvmCosts::default(), 256);
        d.alloc_object(ObjectId(0), Va(0x1000_0000), 16 * 4096, |_| DeviceId::Host)
            .expect("fresh allocation");
        (d, Fabric::new(4, FabricConfig::default()))
    }

    fn vpn(i: u64) -> Vpn {
        Va(0x1000_0000 + i * 4096).vpn(PageSize::Small4K)
    }

    #[test]
    fn healthy_state_passes() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy));
        for g in 0..3u8 {
            let pf = PageFault::far(GpuId(g), Va(0x1000_0000), vpn(0), AccessKind::Read);
            d.handle_fault(oasis_engine::Time::ZERO, &pf, &mut f)
                .expect("fault resolves");
        }
        check_mem_state(&d.state, false).expect("consistent state");
    }

    #[test]
    fn missing_owner_frame_is_flagged() {
        let (mut d, mut f) = driver(Box::new(OnTouchPolicy));
        let pf = PageFault::far(GpuId(1), Va(0x1000_0000), vpn(0), AccessKind::Read);
        d.handle_fault(oasis_engine::Time::ZERO, &pf, &mut f)
            .expect("fault resolves");
        // Corrupt: drop the owner's frame behind the driver's back.
        d.state.frames[1].remove(vpn(0));
        let err = check_mem_state(&d.state, false).expect_err("divergence detected");
        assert!(err.to_string().contains("owner-holds-frame"), "{err}");
    }

    #[test]
    fn writable_duplicate_is_flagged() {
        let (mut d, mut f) = driver(Box::new(DuplicationPolicy));
        for g in 0..2u8 {
            let pf = PageFault::far(GpuId(g), Va(0x1000_0000), vpn(0), AccessKind::Read);
            d.handle_fault(oasis_engine::Time::ZERO, &pf, &mut f)
                .expect("fault resolves");
        }
        // Corrupt: upgrade GPU0's read-only duplicate to writable.
        d.state.local_tables[0].insert(
            vpn(0),
            Pte {
                location: DeviceId::Gpu(GpuId(0)),
                writable: true,
                policy: PolicyBits::Duplication,
            },
        );
        let err = check_mem_state(&d.state, false).expect_err("divergence detected");
        assert!(err.to_string().contains("no-writable-duplicates"), "{err}");
        // The Ideal exemption tolerates it.
        check_mem_state(&d.state, true).expect("ideal runs allow writable copies");
    }

    #[test]
    fn stray_pte_is_flagged() {
        let (mut d, _) = driver(Box::new(OnTouchPolicy));
        // Corrupt: GPU2 claims a local mapping it was never granted.
        d.state.local_tables[2].insert(
            vpn(3),
            Pte {
                location: DeviceId::Gpu(GpuId(2)),
                writable: true,
                policy: PolicyBits::OnTouch,
            },
        );
        let err = check_mem_state(&d.state, false).expect_err("divergence detected");
        assert!(err.to_string().contains("local-pte-agrees"), "{err}");
    }

    #[test]
    fn stray_frame_is_flagged() {
        let (mut d, _) = driver(Box::new(OnTouchPolicy));
        // Corrupt: GPU3 holds a frame for a host-owned page.
        d.state.frames[3].insert(vpn(2));
        let err = check_mem_state(&d.state, false).expect_err("divergence detected");
        assert!(err.to_string().contains("frames-registered"), "{err}");
    }

    #[test]
    fn out_of_range_mask_is_flagged() {
        let (mut d, _) = driver(Box::new(OnTouchPolicy));
        d.state
            .host_table
            .get_mut(vpn(0))
            .expect("registered")
            .copy_mask = 1 << 7; // GPU 7 of 4
        let err = check_mem_state(&d.state, false).expect_err("divergence detected");
        assert!(err.to_string().contains("mask-bounds"), "{err}");
    }
}
