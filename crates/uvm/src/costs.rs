//! Latency parameters of the UVM driver's fault-resolution path.

use oasis_engine::Duration;

/// Fixed latencies charged by the driver model, on top of the interconnect
/// transfer times computed by the fabric.
///
/// Defaults follow published UVM measurements (tens of microseconds per
/// replayable fault) scaled to the paper's platform; everything is
/// configurable for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UvmCosts {
    /// GPU-side fault delivery + host driver processing for a far fault
    /// (translation miss), excluding data movement.
    pub far_fault_base: Duration,
    /// Same, for a page-protection fault (write to a read-only copy).
    pub protection_fault_base: Duration,
    /// Installing or updating one PTE (runs largely in parallel with fault
    /// resolution; kept small).
    pub pte_update: Duration,
    /// Broadcasting a TLB shootdown / PTE invalidation to the first remote
    /// device.
    pub invalidation_base: Duration,
    /// Incremental cost per additional device invalidated in the same
    /// operation (acks return mostly in parallel).
    pub invalidation_extra: Duration,
    /// Driver-side cost of a hardware access-counter notification that
    /// triggers a migration (cheaper than a fault: no warp stall replay,
    /// notifications are batched).
    pub counter_migration_base: Duration,
    /// Driver *occupancy* per fault: the host fault-handling pipeline is
    /// serialized, so concurrent faults queue behind each other at this
    /// service rate (~hundreds of thousands of faults/second on real UVM
    /// stacks). This is what makes fault-heavy policies slow at scale —
    /// the effect behind the paper's Fig. 24.
    pub fault_service: Duration,
}

impl Default for UvmCosts {
    fn default() -> Self {
        UvmCosts {
            far_fault_base: Duration::from_us(20),
            protection_fault_base: Duration::from_us(20),
            pte_update: Duration::from_ns(200),
            invalidation_base: Duration::from_us(3),
            invalidation_extra: Duration::from_ns(500),
            counter_migration_base: Duration::from_us(10),
            fault_service: Duration::from_us(2),
        }
    }
}

impl UvmCosts {
    /// Cost of invalidating `devices` remote translations (0 is free).
    pub fn invalidation(&self, devices: usize) -> Duration {
        match devices {
            0 => Duration::ZERO,
            n => self.invalidation_base + self.invalidation_extra * (n as u64 - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_scales_with_device_count() {
        let c = UvmCosts::default();
        assert_eq!(c.invalidation(0), Duration::ZERO);
        assert_eq!(c.invalidation(1), c.invalidation_base);
        assert_eq!(
            c.invalidation(3),
            c.invalidation_base + c.invalidation_extra * 2
        );
    }

    #[test]
    fn defaults_are_sane() {
        let c = UvmCosts::default();
        assert!(c.far_fault_base > c.counter_migration_base);
        assert!(c.pte_update < c.invalidation_base);
    }
}
