//! Content-addressed result cache, keyed by scenario digest.
//!
//! The cache key is [`oasis_fuzz::scenario_digest`] — the FNV-1a of the
//! scenario's canonical `oasis-fuzz-scenario-v1` wire line — so two
//! submissions are "the same job" exactly when their wire bytes are the
//! same. Each adjudicated result is one file, `<%016x>.res` under the
//! server's `cache/` directory, written with [`oasis_engine::atomic_write`]
//! so a crash mid-write leaves either the old entry or none, never a torn
//! one visible under the final name.
//!
//! Reads re-verify anyway: every entry carries a magic, a version, its own
//! key, and a trailing FNV-1a checksum over everything before it. An entry
//! that fails any of those checks is reported as [`CacheRead::Corrupt`]
//! with a reason — the server logs a typed warning, recomputes, and
//! overwrites the bad entry. A corrupt cache can cost time, never
//! correctness, and never a crash.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use oasis_engine::codec::{ByteReader, ByteWriter};
use oasis_engine::{atomic_write, fnv1a, AdjudicatedOutcome};

/// Entry-file magic ("OASISRES").
const MAGIC: &[u8; 8] = b"OASISRES";
/// Entry format version.
const VERSION: u32 = 1;

/// One cached adjudication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// The supervisor's verdict class.
    pub outcome: AdjudicatedOutcome,
    /// Attempts the pool consumed before adjudicating.
    pub attempts: u32,
    /// The rendered verdict string (`clean`, `violation ...`, or the
    /// supervision failure), already wire-sanitized.
    pub verdict: String,
}

/// What a cache lookup produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheRead {
    /// A verified entry; serve it with zero recompute.
    Hit(CachedResult),
    /// No entry for this digest.
    Miss,
    /// An entry exists but failed verification (torn write survived a
    /// crash of the *filesystem's* guarantees, manual tampering, or a
    /// format from the future). Carries the reason; the caller warns and
    /// recomputes.
    Corrupt(String),
}

fn outcome_to_u8(outcome: AdjudicatedOutcome) -> u8 {
    match outcome {
        AdjudicatedOutcome::Completed => 0,
        AdjudicatedOutcome::Failed => 1,
        AdjudicatedOutcome::Quarantined => 2,
    }
}

fn outcome_from_u8(b: u8) -> Option<AdjudicatedOutcome> {
    match b {
        0 => Some(AdjudicatedOutcome::Completed),
        1 => Some(AdjudicatedOutcome::Failed),
        2 => Some(AdjudicatedOutcome::Quarantined),
        _ => None,
    }
}

/// The on-disk cache. Cheap to clone paths from; all state is the
/// directory itself.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O failure if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Self, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cache: cannot create {}: {e}", dir.display()))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry path for a digest.
    pub fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.res"))
    }

    fn encode(digest: u64, result: &CachedResult) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(digest);
        w.u8(outcome_to_u8(result.outcome));
        w.u32(result.attempts);
        // `ByteWriter::str` carries a u16 length; verdicts are short, but
        // clamp defensively so a pathological detail can never panic the
        // encoder.
        let verdict: String = result.verdict.chars().take(4096).collect();
        w.str(&verdict);
        let checksum = fnv1a(w.as_slice());
        w.u64(checksum);
        w.into_vec()
    }

    fn decode(digest: u64, bytes: &[u8]) -> Result<CachedResult, String> {
        // magic 8 + version 4 + digest 8 + outcome 1 + attempts 4 +
        // str length 2 + checksum 8.
        if bytes.len() < 35 {
            return Err(format!(
                "entry is {} bytes, shorter than any valid entry",
                bytes.len()
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut t = ByteReader::new("cache-checksum", tail);
        let stored = t.u64().map_err(|e| format!("checksum field: {e}"))?;
        let actual = fnv1a(body);
        if stored != actual {
            return Err(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            ));
        }
        let mut r = ByteReader::new("cache-entry", body);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.u8().map_err(|e| format!("magic: {e}"))?;
        }
        if &magic != MAGIC {
            return Err("bad magic".to_string());
        }
        let version = r.u32().map_err(|e| format!("version: {e}"))?;
        if version != VERSION {
            return Err(format!("unsupported entry version {version}"));
        }
        let key = r.u64().map_err(|e| format!("key: {e}"))?;
        if key != digest {
            return Err(format!(
                "entry claims digest {key:#018x} but was filed under {digest:#018x}"
            ));
        }
        let outcome = outcome_from_u8(r.u8().map_err(|e| format!("outcome: {e}"))?)
            .ok_or_else(|| "unknown outcome byte".to_string())?;
        let attempts = r.u32().map_err(|e| format!("attempts: {e}"))?;
        let verdict = r.str().map_err(|e| format!("verdict: {e}"))?;
        if !r.is_empty() {
            return Err("trailing bytes after verdict".to_string());
        }
        Ok(CachedResult {
            outcome,
            attempts,
            verdict,
        })
    }

    /// Looks up a digest. Never panics and never errors: a bad entry is a
    /// typed [`CacheRead::Corrupt`], an unreadable file a miss-shaped
    /// corrupt report, an absent file a [`CacheRead::Miss`].
    pub fn read(&self, digest: u64) -> CacheRead {
        let path = self.entry_path(digest);
        if let Err(e) = oasis_engine::failpoint::on_io("serve.cache.read", &path) {
            return CacheRead::Corrupt(format!("unreadable: {e}"));
        }
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => return CacheRead::Miss,
            Err(e) => return CacheRead::Corrupt(format!("unreadable: {e}")),
        };
        match Self::decode(digest, &bytes) {
            Ok(result) => CacheRead::Hit(result),
            Err(reason) => CacheRead::Corrupt(reason),
        }
    }

    /// Stores (or overwrites) the entry for a digest, atomically.
    ///
    /// # Errors
    ///
    /// Returns the I/O failure; the caller treats a failed cache write as
    /// a warning, not a job failure — the journal already holds the
    /// durable adjudication.
    pub fn write(&self, digest: u64, result: &CachedResult) -> Result<(), String> {
        let path = self.entry_path(digest);
        oasis_engine::failpoint::on_io("serve.cache.write", &path)
            .and_then(|()| atomic_write(&path, &Self::encode(digest, result)))
            .map_err(|e| format!("cache: cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("oasis-serve-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(&dir).expect("create cache dir")
    }

    fn sample() -> CachedResult {
        CachedResult {
            outcome: AdjudicatedOutcome::Completed,
            attempts: 2,
            verdict: "violation replay_divergence: step 41".to_string(),
        }
    }

    #[test]
    fn round_trips_and_misses() {
        let cache = temp_cache("roundtrip");
        assert_eq!(cache.read(7), CacheRead::Miss);
        cache.write(7, &sample()).unwrap();
        assert_eq!(cache.read(7), CacheRead::Hit(sample()));
        // Overwrite is allowed and atomic.
        let clean = CachedResult {
            outcome: AdjudicatedOutcome::Failed,
            attempts: 3,
            verdict: "failed: oom".to_string(),
        };
        cache.write(7, &clean).unwrap();
        assert_eq!(cache.read(7), CacheRead::Hit(clean));
    }

    #[test]
    fn corruption_is_typed_never_fatal() {
        let cache = temp_cache("corrupt");
        cache.write(9, &sample()).unwrap();
        let path = cache.entry_path(9);
        let good = fs::read(&path).unwrap();

        // Flip one payload byte: checksum mismatch.
        let mut bad = good.clone();
        bad[12] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        match cache.read(9) {
            CacheRead::Corrupt(reason) => assert!(reason.contains("checksum"), "{reason}"),
            other => panic!("expected corrupt, got {other:?}"),
        }

        // Truncate: too short / checksum mismatch, still typed.
        fs::write(&path, &good[..10]).unwrap();
        assert!(matches!(cache.read(9), CacheRead::Corrupt(_)));

        // Empty file (classic torn state without atomic_write).
        fs::write(&path, b"").unwrap();
        assert!(matches!(cache.read(9), CacheRead::Corrupt(_)));

        // An entry filed under the wrong digest is rejected by its key.
        cache.write(9, &sample()).unwrap();
        fs::copy(cache.entry_path(9), cache.entry_path(10)).unwrap();
        match cache.read(10) {
            CacheRead::Corrupt(reason) => assert!(reason.contains("claims digest"), "{reason}"),
            other => panic!("expected corrupt, got {other:?}"),
        }

        // Recompute path: overwriting the corrupt entry heals it.
        cache.write(10, &sample()).unwrap();
        assert_eq!(cache.read(10), CacheRead::Hit(sample()));
    }

    #[test]
    fn future_version_is_corrupt_not_crash() {
        let cache = temp_cache("version");
        cache.write(3, &sample()).unwrap();
        let path = cache.entry_path(3);
        let mut bytes = fs::read(&path).unwrap();
        // Bump the version field (bytes 8..12, little-endian) and re-seal
        // the checksum so only the version check can object.
        bytes[8] = 0xEE;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&checksum);
        fs::write(&path, &bytes).unwrap();
        match cache.read(3) {
            CacheRead::Corrupt(reason) => assert!(reason.contains("version"), "{reason}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }
}
