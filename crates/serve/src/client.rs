//! The `submit` client: connect to a sweep server, send a batch of
//! scenario jobs, stream progress, and collect verdicts.
//!
//! The client keeps its stdout deterministic on purpose: one
//! `result <digest> ...` line per submitted scenario, in submission
//! order, containing only content-derived fields (digest, outcome,
//! verdict). Everything run-dependent — accept acks, dispatch and
//! progress events, cache-hit markers, counter snapshots — goes to the
//! progress stream (the CLI prints it to stderr). That split is what lets
//! the kill/restart gates `cmp` two runs byte for byte.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use oasis_fuzz::{scenario_digest, to_json_line, Scenario};

use crate::protocol::{digest_hex, parse_event, LinePoll, LineReader, ServerEvent, MAX_LINE_BYTES};

/// What one batch submission produced.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// One line per submitted scenario, submission order — deterministic
    /// across runs, restarts, and cache hits.
    pub results: Vec<String>,
    /// Run-dependent narration (accepts, dispatches, progress, cache
    /// markers, rejections), in arrival order.
    pub progress: Vec<String>,
    /// Server counter snapshot, if requested.
    pub stats: Vec<(String, u64)>,
    /// Scenarios that did not end in a completed verdict (failed,
    /// quarantined, or rejected).
    pub failed: usize,
}

/// The terminal state of one submitted digest, as the client records it.
#[derive(Debug, Clone)]
enum Resolution {
    Verdict { outcome: String, verdict: String },
    Rejected { reason: String, detail: String },
}

fn result_line(digest: u64, res: &Resolution) -> String {
    match res {
        Resolution::Verdict { outcome, verdict } => {
            format!("result {} {outcome}: {verdict}", digest_hex(digest))
        }
        Resolution::Rejected { reason, detail } => {
            format!("result {} rejected: {reason}: {detail}", digest_hex(digest))
        }
    }
}

/// Submits `scenarios` to the server at `127.0.0.1:port` and waits for
/// every one to resolve (verdict or typed rejection).
///
/// Duplicate scenarios in the batch are sent once each; the server
/// answers per distinct digest and the client fans the resolution out to
/// every submission slot, so `results.len() == scenarios.len()` always.
///
/// # Errors
///
/// Returns a message for connection failures, protocol breaches (a line
/// the client cannot parse), a server that closes the stream with
/// submissions outstanding, or an overall `timeout` expiry.
pub fn submit_batch(
    port: u16,
    scenarios: &[Scenario],
    want_stats: bool,
    timeout: Duration,
) -> Result<SubmitOutcome, String> {
    let stream = TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("submit: cannot connect to 127.0.0.1:{port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("submit: set_read_timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("submit: clone stream: {e}"))?;
    let mut reader = LineReader::new(stream, MAX_LINE_BYTES);

    // digest -> submission slots awaiting it (duplicates share a digest).
    let mut slots: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut sent = 0usize;
    for (idx, scenario) in scenarios.iter().enumerate() {
        let digest = scenario_digest(scenario);
        let fresh = !slots.contains_key(&digest);
        slots.entry(digest).or_default().push(idx);
        if fresh {
            writeln!(writer, "{}", to_json_line(scenario))
                .map_err(|e| format!("submit: send: {e}"))?;
            sent += 1;
        }
    }
    let mut progress = vec![format!(
        "sent {sent} distinct scenario(s) for {} submission(s)",
        scenarios.len()
    )];

    let mut resolved: BTreeMap<u64, Resolution> = BTreeMap::new();
    let mut stats: Vec<(String, u64)> = Vec::new();
    let mut stats_pending = false;
    let deadline = Instant::now() + timeout;

    while resolved.len() < slots.len() || stats_pending {
        if Instant::now() >= deadline {
            return Err(format!(
                "submit: timed out after {timeout:?} with {} of {} digest(s) unresolved",
                slots.len() - resolved.len(),
                slots.len()
            ));
        }
        let line = match reader.poll_line() {
            Ok(LinePoll::Line(l)) => l,
            Ok(LinePoll::Pending) => continue,
            Ok(LinePoll::Eof) => {
                return Err(format!(
                    "submit: server closed the stream with {} digest(s) unresolved",
                    slots.len() - resolved.len()
                ));
            }
            Err(e) => return Err(format!("submit: {e}")),
        };
        if line.is_empty() {
            continue;
        }
        let text = String::from_utf8(line).map_err(|_| "submit: non-UTF-8 event".to_string())?;
        match parse_event(&text).map_err(|e| format!("submit: unparsable event: {e} ({text})"))? {
            ServerEvent::Accepted {
                digest, coalesced, ..
            } => {
                progress.push(format!(
                    "accepted {}{}",
                    digest_hex(digest),
                    if coalesced { " (coalesced)" } else { "" }
                ));
            }
            ServerEvent::Dispatched { digest, attempt } => {
                progress.push(format!(
                    "dispatched {} attempt {attempt}",
                    digest_hex(digest)
                ));
            }
            ServerEvent::Progress { digest, counts } => {
                let detail: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
                progress.push(format!(
                    "progress {} {}",
                    digest_hex(digest),
                    detail.join(" ")
                ));
            }
            ServerEvent::Result {
                digest,
                outcome,
                verdict,
                cached,
                attempts,
            } => {
                progress.push(format!(
                    "resolved {} ({outcome}, {attempts} attempt(s){})",
                    digest_hex(digest),
                    if cached { ", cached" } else { "" }
                ));
                resolved
                    .entry(digest)
                    .or_insert(Resolution::Verdict { outcome, verdict });
            }
            ServerEvent::Rejected {
                digest,
                reason,
                detail,
            } => {
                progress.push(format!("rejected {} ({reason})", digest_hex(digest)));
                resolved
                    .entry(digest)
                    .or_insert(Resolution::Rejected { reason, detail });
            }
            ServerEvent::Error { code, detail } => {
                return Err(format!("submit: server reported {code}: {detail}"));
            }
            ServerEvent::Stats(counters) => {
                stats = counters;
                stats_pending = false;
            }
            ServerEvent::Pong => {}
        }
        if want_stats && resolved.len() == slots.len() && !stats_pending && stats.is_empty() {
            writeln!(writer, "stats").map_err(|e| format!("submit: send stats: {e}"))?;
            stats_pending = true;
        }
    }

    // Handle the all-duplicates / zero-wait edge where the loop body never
    // sent the stats request.
    if want_stats && stats.is_empty() && !stats_pending {
        writeln!(writer, "stats").map_err(|e| format!("submit: send stats: {e}"))?;
        loop {
            if Instant::now() >= deadline {
                return Err("submit: timed out waiting for stats".to_string());
            }
            match reader.poll_line() {
                Ok(LinePoll::Line(l)) => {
                    let text =
                        String::from_utf8(l).map_err(|_| "submit: non-UTF-8 event".to_string())?;
                    if text.is_empty() {
                        continue;
                    }
                    if let ServerEvent::Stats(counters) =
                        parse_event(&text).map_err(|e| format!("submit: unparsable event: {e}"))?
                    {
                        stats = counters;
                        break;
                    }
                }
                Ok(LinePoll::Pending) => continue,
                Ok(LinePoll::Eof) => {
                    return Err("submit: server closed the stream before stats".to_string())
                }
                Err(e) => return Err(format!("submit: {e}")),
            }
        }
    }

    let mut results = Vec::with_capacity(scenarios.len());
    let mut failed = 0usize;
    for scenario in scenarios {
        let digest = scenario_digest(scenario);
        let res = resolved
            .get(&digest)
            .expect("loop exits only when every digest resolved");
        if !matches!(
            res,
            Resolution::Verdict { outcome, .. } if outcome == "completed"
        ) {
            failed += 1;
        }
        results.push(result_line(digest, res));
    }

    Ok(SubmitOutcome {
        results,
        progress,
        stats,
        failed,
    })
}

/// [`submit_batch`] with bounded deterministic retry: transient connect
/// failures retry the whole batch, typed `overloaded` rejections retry
/// only the shed scenarios, each wait doubling from `backoff`. `retries`
/// is the total extra-attempt budget shared by both cases; `0` makes this
/// exactly [`submit_batch`].
///
/// Retried resolutions are spliced back into their original submission
/// slots, so `results` keeps its one-line-per-scenario submission-order
/// contract and two runs that converge produce byte-identical stdout.
///
/// # Errors
///
/// Returns the final attempt's message once the budget is exhausted —
/// annotated with the attempt count for connect failures — so the caller's
/// exit code is exactly what a retry-free run would have produced.
pub fn submit_batch_with_retry(
    port: u16,
    scenarios: &[Scenario],
    want_stats: bool,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
) -> Result<SubmitOutcome, String> {
    let mut attempt = 0u32;
    let mut delay = backoff;
    let mut pre_progress: Vec<String> = Vec::new();
    let mut out = loop {
        match submit_batch(port, scenarios, want_stats, timeout) {
            Ok(out) => break out,
            Err(e) if e.contains("cannot connect") => {
                if attempt >= retries {
                    return Err(format!("{e} (after {} attempt(s))", attempt + 1));
                }
                attempt += 1;
                pre_progress.push(format!(
                    "connect failed; retry {attempt}/{retries} in {}ms",
                    delay.as_millis()
                ));
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    };
    if !pre_progress.is_empty() {
        pre_progress.append(&mut out.progress);
        out.progress = pre_progress;
    }

    loop {
        let overloaded: Vec<usize> = out
            .results
            .iter()
            .enumerate()
            .filter(|(_, line)| line.contains(" rejected: overloaded: "))
            .map(|(i, _)| i)
            .collect();
        if overloaded.is_empty() || attempt >= retries {
            break;
        }
        attempt += 1;
        // One resubmission per distinct shed digest; duplicates share it.
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let retry_scenarios: Vec<Scenario> = overloaded
            .iter()
            .filter(|&&i| seen.insert(scenario_digest(&scenarios[i])))
            .map(|&i| scenarios[i].clone())
            .collect();
        out.progress.push(format!(
            "{} scenario(s) shed as overloaded; retry {attempt}/{retries} in {}ms",
            retry_scenarios.len(),
            delay.as_millis()
        ));
        std::thread::sleep(delay);
        delay = delay.saturating_mul(2);
        let retry_out = submit_batch(port, &retry_scenarios, false, timeout)?;
        let by_digest: BTreeMap<u64, &String> = retry_scenarios
            .iter()
            .map(scenario_digest)
            .zip(&retry_out.results)
            .collect();
        for &i in &overloaded {
            if let Some(line) = by_digest.get(&scenario_digest(&scenarios[i])) {
                out.results[i] = (*line).clone();
            }
        }
        out.progress.extend(retry_out.progress);
    }
    out.failed = out
        .results
        .iter()
        .filter(|line| !line.contains(" completed: "))
        .count();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{run_serve, ServeConfig};
    use oasis_engine::{PoolConfig, StopHandle};
    use std::sync::mpsc;

    fn start_server(name: &str) -> (StopHandle, u16, std::thread::JoinHandle<()>) {
        start_server_with(name, |_| {})
    }

    fn start_server_with(
        name: &str,
        tune: impl FnOnce(&mut ServeConfig),
    ) -> (StopHandle, u16, std::thread::JoinHandle<()>) {
        let dir =
            std::env::temp_dir().join(format!("oasis-serve-client-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServeConfig::new(dir);
        cfg.pool = PoolConfig::with_workers(2);
        tune(&mut cfg);
        let stop = StopHandle::new();
        let stop2 = stop.clone();
        let (ptx, prx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            run_serve(cfg, stop2, move |p| {
                let _ = ptx.send(p);
            })
            .expect("serve run");
        });
        let port = prx
            .recv_timeout(Duration::from_secs(30))
            .expect("port announce");
        (stop, port, handle)
    }

    /// End-to-end through real sockets: duplicates collapse onto one
    /// computed job, results stay in submission order, a re-submission is
    /// answered from the cache, and the counters prove zero recompute.
    #[test]
    fn duplicate_batch_resolves_every_slot_in_order() {
        let (stop, port, handle) = start_server("dupes");
        let a = Scenario::generate(31);
        let b = Scenario::generate(32);
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone()];

        let out = submit_batch(port, &batch, true, Duration::from_secs(300)).expect("submit");
        assert_eq!(out.results.len(), 4);
        // Slots 0, 2, 3 share scenario `a`: identical lines.
        assert_eq!(out.results[0], out.results[2]);
        assert_eq!(out.results[0], out.results[3]);
        assert!(out.results[0].contains(&digest_hex(scenario_digest(&a))));
        assert!(out.results[1].contains(&digest_hex(scenario_digest(&b))));
        assert_eq!(out.failed, 0);

        // Second batch: same scenarios, now pure cache hits, and stdout
        // bytes match the first run exactly.
        let again = submit_batch(port, &batch, true, Duration::from_secs(300)).expect("resubmit");
        assert_eq!(out.results, again.results);
        let hits = again
            .stats
            .iter()
            .find(|(k, _)| k == "serve.cache_hits")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(hits >= 2, "expected cache hits on resubmission, got {hits}");

        stop.stop();
        handle.join().expect("server thread");
    }

    /// Connect-failure retry: the budget is consumed deterministically,
    /// the backoff actually elapses, and exhaustion surfaces the original
    /// connect error annotated with the attempt count — so the CLI's
    /// failure exit is identical to a retry-free run's.
    #[test]
    fn connect_retry_exhaustion_preserves_the_error() {
        // Bind then drop to get a port with nothing listening on it.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind probe");
        let port = listener.local_addr().expect("addr").port();
        drop(listener);

        let batch = vec![Scenario::generate(5)];
        let t0 = Instant::now();
        let err = submit_batch_with_retry(
            port,
            &batch,
            false,
            Duration::from_secs(5),
            2,
            Duration::from_millis(10),
        )
        .expect_err("no server must exhaust the retry budget");
        assert!(err.contains("cannot connect"), "{err}");
        assert!(err.contains("after 3 attempt(s)"), "{err}");
        // 10ms + 20ms of doubling backoff must actually have elapsed.
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "{:?}",
            t0.elapsed()
        );
    }

    /// Overload shedding is recoverable: a burst against a depth-1 queue
    /// sheds most of the batch, and the retry loop resubmits exactly the
    /// shed scenarios until every submission slot holds a verdict.
    #[test]
    fn overloaded_shed_jobs_are_retried_to_completion() {
        let (stop, port, handle) = start_server_with("overload-retry", |cfg| {
            cfg.queue_depth = 1;
            cfg.pool = PoolConfig::with_workers(1);
        });
        let batch: Vec<Scenario> = (50..56).map(Scenario::generate).collect();
        let out = submit_batch_with_retry(
            port,
            &batch,
            false,
            Duration::from_secs(300),
            10,
            Duration::from_millis(50),
        )
        .expect("retried submit");
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.failed, 0, "unresolved slots: {:#?}", out.results);
        assert!(
            out.results.iter().all(|l| l.contains(" completed: ")),
            "{:#?}",
            out.results
        );
        // Depth 1 against a 6-job burst must have shed something, so the
        // retry loop must have narrated at least one resubmission.
        assert!(
            out.progress.iter().any(|l| l.contains("overloaded; retry")),
            "{:#?}",
            out.progress
        );
        stop.stop();
        handle.join().expect("server thread");
    }
}
