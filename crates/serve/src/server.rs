//! The sweep server: accept loop, admission control, journaled queue,
//! scheduler waves on the supervised pool, and graceful drain.
//!
//! # Lifecycle
//!
//! One [`run_serve`] call owns the whole server. It binds a localhost
//! listener, opens (or resumes) the write-ahead queue journal and the
//! content-addressed result cache under the state directory, spawns one
//! scheduler thread plus one thread per connection, and runs until the
//! [`StopHandle`] fires. On stop it closes the accept loop, refuses new
//! admissions with a typed `draining` rejection, lets the pool adjudicate
//! in-flight jobs (the pool's own stop handling bounds this), writes the
//! journal's `Interrupted` trailer, and returns a [`ServeSummary`] whose
//! `drained` flag tells the CLI to exit `EX_TEMPFAIL` with a resume hint.
//!
//! # Durability
//!
//! Admission is write-ahead: the scenario's canonical wire line is
//! journaled as an `Enqueued` record *before* the job becomes visible to
//! the scheduler, and every verdict is journaled as an `Adjudicated`
//! record *before* the result is cached or streamed. A SIGKILL at any
//! instant therefore loses at most replies, never admitted work: the
//! restarted server salvages the journal prefix, backfills the cache from
//! adjudicated records, and re-runs exactly the admitted-but-unadjudicated
//! jobs. Because the job body is a pure function of the scenario, the
//! verdicts a client re-collects after a crash are byte-identical to an
//! uninterrupted run.
//!
//! # Storage-fault degradation
//!
//! The durability path can itself fail (ENOSPC, EIO, a dying disk). The
//! server degrades instead of corrupting or dying: a failed cache write is
//! recorded (`serve.cache_write_failed`) and the result served uncached —
//! the journal already holds the adjudication; a failed journal append
//! flips the server into degraded mode where new admissions are refused
//! with a typed `unavailable` rejection while cached results keep flowing
//! and in-flight jobs finish. The failure surfaces in
//! [`ServeSummary::journal_error`] so the CLI exits nonzero. Every one of
//! these paths is exercised by the `chaos` subcommand's injected-fault
//! matrix.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use oasis_engine::pool::{run_sweep_controlled, Job, JobOutcome, PoolConfig, SweepControl};
use oasis_engine::{AdjudicatedOutcome, JournalWriter, MetricsRegistry, StopHandle};
use oasis_fuzz::{check, from_json, scenario_digest, to_json_line, Scenario};
use oasis_mgpu::{simulate, Policy};

use crate::cache::{CacheRead, CachedResult, ResultCache};
use crate::protocol::{
    event_accepted, event_dispatched, event_error, event_pong, event_progress, event_rejected,
    event_result, event_stats, parse_request, sanitize, LinePoll, LineReader, ProtocolError,
    Request, MAX_LINE_BYTES,
};

/// The journal `Begin` tag for serve queues; a resume against a journal
/// written by any other subsystem fails with a typed `TagMismatch`.
pub fn queue_tag() -> u64 {
    oasis_engine::fnv1a(b"oasis-serve-queue-v1")
}

/// Journal file name under the state directory.
pub const JOURNAL_FILE: &str = "serve.jnl";
/// Cache directory name under the state directory.
pub const CACHE_DIR: &str = "cache";

/// Everything the server needs to run. Defaults are production-shaped;
/// tests and the CLI override per flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; `0` binds an ephemeral port (announced via
    /// the `announce` callback).
    pub port: u16,
    /// State directory holding the queue journal and result cache.
    pub state_dir: PathBuf,
    /// Admission cap: pending + in-flight jobs beyond this are rejected
    /// with a typed `overloaded` event instead of queued.
    pub queue_depth: usize,
    /// Per-connection cap on unresolved jobs; beyond it submissions are
    /// rejected with `connection-inflight`.
    pub conn_inflight: usize,
    /// Concurrent connection cap; further accepts get a `busy` rejection
    /// line and an immediate close.
    pub max_connections: usize,
    /// Idle cutoff for connections with no unresolved jobs.
    pub idle_timeout: Duration,
    /// Request-line byte cap.
    pub max_line_bytes: usize,
    /// Supervised-pool shape (workers, per-job deadline, retry budget).
    pub pool: PoolConfig,
}

impl ServeConfig {
    /// A config with production-shaped limits for `state_dir`.
    pub fn new(state_dir: PathBuf) -> Self {
        ServeConfig {
            port: 0,
            state_dir,
            queue_depth: 256,
            conn_inflight: 64,
            max_connections: 32,
            idle_timeout: Duration::from_secs(30),
            max_line_bytes: MAX_LINE_BYTES,
            pool: PoolConfig::with_workers(2),
        }
    }
}

/// What a serve run amounted to, for the CLI's exit path and logs.
#[derive(Debug)]
pub struct ServeSummary {
    /// True when the run ended in a signal-initiated drain (the CLI maps
    /// this to `EX_TEMPFAIL` and prints the resume hint).
    pub drained: bool,
    /// Port actually bound.
    pub port: u16,
    /// Final `serve.*` counter snapshot, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Jobs adjudicated during this run (resumed ones included).
    pub adjudicated: u64,
    /// The first journal append failure, if the run degraded. The server
    /// kept serving (cached results, in-flight jobs) but refused new
    /// admissions; the CLI maps this to a failure exit so the degradation
    /// is never silent.
    pub journal_error: Option<String>,
}

/// What the oracle produced for one job, plus the deterministic activity
/// counts streamed as `progress` (harvested for clean runs only; a
/// violating scenario already has its verdict).
struct JobResult {
    verdict: String,
    events: Option<[u64; 5]>,
}

/// One admitted, not-yet-adjudicated job.
struct PendingJob {
    job_id: u64,
    digest: u64,
    scenario: Scenario,
}

/// What the server pushes to a connection's event channel.
enum ConnEvent {
    /// An intermediate line (dispatched / progress) for a subscribed job.
    Line(String),
    /// The final `result` line; the connection drops its subscription.
    Result { digest: u64, line: String },
}

/// Queue and subscription state, under one lock.
struct QueueState {
    pending: VecDeque<PendingJob>,
    /// Digests of jobs handed to the scheduler and not yet adjudicated.
    inflight_digests: BTreeSet<u64>,
    inflight: usize,
    /// digest -> subscribed connections (a digest queued twice coalesces
    /// onto one job with several subscribers).
    subscribers: BTreeMap<u64, Vec<Sender<ConnEvent>>>,
    next_job_id: u64,
    accepting: bool,
    adjudicated: u64,
}

struct Shared {
    cfg: ServeConfig,
    stop: StopHandle,
    journal: Mutex<Option<JournalWriter>>,
    /// First journal append failure; set once. A broken journal flips the
    /// server into degraded mode: new admissions are refused with a typed
    /// `unavailable` rejection (durability is gone for *new* work) while
    /// cached results keep being served and in-flight jobs finish — the
    /// server never trades a storage fault for an availability outage or,
    /// worse, silently volatile state.
    journal_failure: Mutex<Option<String>>,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    state: Mutex<QueueState>,
    work: Condvar,
    connections: AtomicUsize,
}

impl Shared {
    fn count(&self, key: &str, v: u64) {
        self.metrics.lock().expect("metrics lock").add(key, v);
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let m = self.metrics.lock().expect("metrics lock");
        let mut out: Vec<(String, u64)> = m.counters().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort();
        out
    }

    /// True once any journal append has failed; the server is then in
    /// degraded (admission-refusing) mode until restarted.
    fn journal_broken(&self) -> bool {
        self.journal_failure
            .lock()
            .expect("journal failure lock")
            .is_some()
    }

    /// Records the first journal failure and switches the server into
    /// degraded mode. Sticky: a journal that failed once is not trusted
    /// again until an operator restarts (and thereby recovers) it.
    fn mark_journal_broken(&self, msg: &str) {
        let mut failure = self.journal_failure.lock().expect("journal failure lock");
        if failure.is_none() {
            *failure = Some(msg.to_string());
            eprintln!(
                "serve: warning: {msg}; refusing new admissions with a typed `unavailable` \
                 rejection, still serving cached results and finishing in-flight jobs"
            );
            drop(failure);
            self.count("serve.journal_failed", 1);
        }
        self.work.notify_all();
    }

    /// Journals an append. On failure the server degrades (see
    /// [`Shared::journal_failure`]) instead of stopping: the caller gets
    /// the typed message, new admissions get `unavailable`.
    fn journal_append(
        &self,
        op: impl FnOnce(&mut JournalWriter) -> Result<(), oasis_engine::JournalError>,
    ) -> Result<(), String> {
        if let Some(msg) = self
            .journal_failure
            .lock()
            .expect("journal failure lock")
            .clone()
        {
            return Err(msg);
        }
        let result = {
            let mut guard = self.journal.lock().expect("journal lock");
            let Some(writer) = guard.as_mut() else {
                return Err("journal already failed".to_string());
            };
            op(writer).map_err(|e| format!("journal append failed: {e}"))
        };
        if let Err(msg) = &result {
            self.mark_journal_broken(msg);
        }
        result
    }
}

/// The verdict string for a supervised outcome — the one rendering every
/// consumer (journal payload, cache entry, result event) shares.
fn render_verdict(outcome: &JobOutcome<JobResult>) -> String {
    match outcome {
        JobOutcome::Completed(r) => r.verdict.clone(),
        JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => sanitize(&e.to_string()),
    }
}

/// The deterministic job body: run the differential oracle; for a clean
/// scenario, additionally run it once under the oasis policy to harvest
/// the `TraceEvent`-taxonomy activity counts the `progress` event streams.
fn run_job(scenario: &Scenario) -> Result<JobResult, String> {
    match check(scenario) {
        Some(violation) => Ok(JobResult {
            verdict: sanitize(&format!(
                "violation {}: {}",
                violation.kind.as_str(),
                violation.detail
            )),
            events: None,
        }),
        None => {
            let report = simulate(&scenario.config(), Policy::oasis(), &scenario.trace());
            let uvm = &report.uvm;
            Ok(JobResult {
                verdict: "clean".to_string(),
                events: Some([
                    uvm.far_faults,
                    uvm.migrations,
                    uvm.duplications,
                    uvm.invalidations,
                    uvm.evictions,
                ]),
            })
        }
    }
}

fn outcome_tag(outcome: &JobOutcome<JobResult>) -> AdjudicatedOutcome {
    AdjudicatedOutcome::of(outcome)
}

/// Runs the sweep server until the stop handle fires.
///
/// `announce` is called exactly once with the bound port, after the
/// listener is live — the CLI prints the "listening" line from it so
/// clients (and the e2e test) can connect as soon as it appears.
///
/// # Errors
///
/// Returns a message for unrecoverable setup or runtime failures: bind
/// errors, an unusable state directory, a journal that cannot be created,
/// resumed, or appended to.
pub fn run_serve(
    cfg: ServeConfig,
    stop: StopHandle,
    announce: impl FnOnce(u16),
) -> Result<ServeSummary, String> {
    std::fs::create_dir_all(&cfg.state_dir).map_err(|e| {
        format!(
            "serve: cannot create state dir {}: {e}",
            cfg.state_dir.display()
        )
    })?;
    let cache = ResultCache::open(&cfg.state_dir.join(CACHE_DIR))?;
    let journal_path = cfg.state_dir.join(JOURNAL_FILE);

    let mut metrics = MetricsRegistry::enabled();
    let mut resumed: Vec<PendingJob> = Vec::new();
    let mut next_job_id = 0u64;
    let mut preadjudicated = 0u64;

    let journal = if journal_path.exists() {
        let (writer, recovery) =
            JournalWriter::resume(&journal_path, queue_tag()).map_err(|e| {
                format!(
                    "serve: cannot resume journal {}: {e}",
                    journal_path.display()
                )
            })?;
        for warning in recovery.warnings() {
            eprintln!("serve: warning: {warning}");
        }
        // Backfill the result cache from journaled adjudications so
        // already-decided jobs are cache hits after a crash even if the
        // cache write itself was lost.
        for (&job_id, adj) in &recovery.adjudicated {
            preadjudicated += 1;
            let Some(wire) = recovery.enqueued.get(&job_id) else {
                eprintln!(
                    "serve: warning: job {job_id} adjudicated without an Enqueued record; \
                     cannot backfill its cache entry"
                );
                continue;
            };
            let digest = oasis_engine::fnv1a(wire);
            if matches!(cache.read(digest), CacheRead::Hit(_)) {
                continue;
            }
            let entry = CachedResult {
                outcome: adj.outcome,
                attempts: adj.attempts,
                verdict: String::from_utf8_lossy(&adj.payload).into_owned(),
            };
            if let Err(e) = cache.write(digest, &entry) {
                eprintln!("serve: warning: cache backfill for job {job_id}: {e}");
            } else {
                metrics.add("serve.cache_backfilled", 1);
            }
        }
        // Rebuild the pending queue: admitted, never adjudicated.
        for (job_id, wire) in recovery.pending() {
            let text = match std::str::from_utf8(wire) {
                Ok(t) => t,
                Err(_) => {
                    eprintln!(
                        "serve: warning: journaled payload for job {job_id} is not UTF-8; dropped"
                    );
                    continue;
                }
            };
            match from_json(text) {
                Ok((scenario, _)) => {
                    let digest = scenario_digest(&scenario);
                    resumed.push(PendingJob {
                        job_id,
                        digest,
                        scenario,
                    });
                    metrics.add("serve.resumed_pending", 1);
                }
                Err(e) => {
                    eprintln!(
                        "serve: warning: journaled payload for job {job_id} does not parse \
                         ({e}); dropped"
                    );
                }
            }
        }
        next_job_id = recovery
            .enqueued
            .keys()
            .max()
            .map(|&id| id + 1)
            .unwrap_or(0);
        if !resumed.is_empty() {
            eprintln!(
                "serve: resuming {} admitted job(s) from {}",
                resumed.len(),
                journal_path.display()
            );
        }
        writer
    } else {
        JournalWriter::create(&journal_path, queue_tag(), "serve queue").map_err(|e| {
            format!(
                "serve: cannot create journal {}: {e}",
                journal_path.display()
            )
        })?
    };

    let listener = TcpListener::bind(("127.0.0.1", cfg.port))
        .map_err(|e| format!("serve: cannot bind 127.0.0.1:{}: {e}", cfg.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("serve: local_addr: {e}"))?
        .port();
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("serve: set_nonblocking: {e}"))?;

    let shared = Arc::new(Shared {
        cfg,
        stop: stop.clone(),
        journal: Mutex::new(Some(journal)),
        journal_failure: Mutex::new(None),
        cache,
        metrics: Mutex::new(metrics),
        state: Mutex::new(QueueState {
            pending: resumed.into(),
            inflight_digests: BTreeSet::new(),
            inflight: 0,
            subscribers: BTreeMap::new(),
            next_job_id,
            accepting: true,
            adjudicated: 0,
        }),
        work: Condvar::new(),
        connections: AtomicUsize::new(0),
    });
    shared.work.notify_all();

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-scheduler".to_string())
            .spawn(move || scheduler_loop(&shared))
            .map_err(|e| format!("serve: cannot spawn scheduler: {e}"))?
    };

    announce(port);

    let mut conn_threads = Vec::new();
    while !stop.is_stopped() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let active = shared.connections.load(Ordering::Relaxed);
                if active >= shared.cfg.max_connections {
                    shared.count("serve.rejected_busy", 1);
                    let mut s = stream;
                    let _ = writeln!(
                        s,
                        "{}",
                        event_rejected(0, "busy", "connection limit reached")
                    );
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                shared.count("serve.connections", 1);
                let shared = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        connection_loop(&shared, stream);
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                    }) {
                    Ok(h) => conn_threads.push(h),
                    Err(e) => eprintln!("serve: warning: cannot spawn connection thread: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("serve: warning: accept: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }

    // Drain: stop admissions, wake the scheduler, let everyone finish.
    {
        let mut st = shared.state.lock().expect("state lock");
        st.accepting = false;
    }
    shared.work.notify_all();
    drop(listener);
    let _ = scheduler.join();
    for h in conn_threads {
        let _ = h.join();
    }

    let adjudicated_now = shared.state.lock().expect("state lock").adjudicated;
    // Best-effort trailer: on a broken journal this fails (and stays
    // recorded); the summary still reports the drain so the operator gets
    // counters plus the typed journal error, not an opaque abort.
    let _ = shared.journal_append(|j| j.interrupted(preadjudicated + adjudicated_now));

    let journal_error = shared
        .journal_failure
        .lock()
        .expect("journal failure lock")
        .clone();
    Ok(ServeSummary {
        drained: true,
        port,
        counters: shared.counters(),
        adjudicated: adjudicated_now,
        journal_error,
    })
}

/// Scheduler: collect admitted jobs into waves and run each wave on the
/// supervised pool, journaling dispatches and adjudications and fanning
/// results out to subscribers.
fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let wave: Vec<PendingJob> = {
            let mut st = shared.state.lock().expect("state lock");
            loop {
                if !st.pending.is_empty() {
                    let wave: Vec<PendingJob> = st.pending.drain(..).collect();
                    st.inflight += wave.len();
                    break wave;
                }
                if shared.stop.is_stopped() {
                    return;
                }
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("state lock");
                st = guard;
            }
        };

        // Wave-local pool ids are 0..n in submission order; map them back
        // to the server's stable job ids for journaling and fan-out.
        let ids: Vec<u64> = wave.iter().map(|p| p.job_id).collect();
        let digests: Vec<u64> = wave.iter().map(|p| p.digest).collect();
        let jobs: Vec<Job<JobResult>> = wave
            .iter()
            .map(|p| {
                let scenario = p.scenario.clone();
                Job::new(format!("scenario-{:016x}", p.digest), move |_ctx| {
                    run_job(&scenario)
                })
            })
            .collect();

        let mut on_dispatch = |local: u64, attempt: u32| {
            let idx = local as usize;
            let _ = shared.journal_append(|j| j.dispatched(ids[idx], attempt));
            fan_out(
                shared,
                digests[idx],
                ConnEvent::Line(event_dispatched(digests[idx], attempt)),
            );
        };
        let mut on_adjudicated = |record: &oasis_engine::pool::JobRecord<JobResult>| {
            let idx = record.id as usize;
            let (job_id, digest) = (ids[idx], digests[idx]);
            let verdict = render_verdict(&record.outcome);
            let tag = outcome_tag(&record.outcome);
            // Journal first: the verdict is durable before anyone sees it.
            let _ = shared.journal_append(|j| {
                j.adjudicated(job_id, tag, record.attempts, verdict.as_bytes())
            });
            let entry = CachedResult {
                outcome: tag,
                attempts: record.attempts,
                verdict: verdict.clone(),
            };
            if let Err(e) = shared.cache.write(digest, &entry) {
                // RecordAndContinue: the verdict is journaled (or at
                // worst recomputable); losing the cache entry costs a
                // recompute on resubmission, never the result.
                shared.count("serve.cache_write_failed", 1);
                eprintln!("serve: warning: {e}; serving the result uncached");
            }
            shared.count(&format!("serve.jobs_{}", record.outcome.kind()), 1);
            if let JobOutcome::Completed(r) = &record.outcome {
                if let Some([ff, mig, dup, sd, ev]) = r.events {
                    fan_out(
                        shared,
                        digest,
                        ConnEvent::Line(event_progress(digest, ff, mig, dup, sd, ev)),
                    );
                }
            }
            let line = event_result(digest, tag.kind(), &verdict, false, record.attempts);
            {
                let mut st = shared.state.lock().expect("state lock");
                st.inflight -= 1;
                st.inflight_digests.remove(&digest);
                st.adjudicated += 1;
                if let Some(subs) = st.subscribers.remove(&digest) {
                    for tx in subs {
                        let _ = tx.send(ConnEvent::Result {
                            digest,
                            line: line.clone(),
                        });
                    }
                }
            }
        };

        {
            let mut st = shared.state.lock().expect("state lock");
            for d in &digests {
                st.inflight_digests.insert(*d);
            }
        }

        let control = SweepControl {
            stop: Some(shared.stop.clone()),
            on_dispatch: Some(&mut on_dispatch),
            on_adjudicated: Some(&mut on_adjudicated),
        };
        let report = run_sweep_controlled(&shared.cfg.pool, jobs, control);

        // A stop mid-wave leaves unadjudicated jobs; they stay journaled
        // as Enqueued-without-Adjudicated and a restart re-runs them. The
        // in-memory accounting still has to release them.
        if report.interrupted {
            let adjudicated_ids: BTreeSet<u64> =
                report.jobs.iter().map(|r| ids[r.id as usize]).collect();
            let mut st = shared.state.lock().expect("state lock");
            for (pos, id) in ids.iter().enumerate() {
                if !adjudicated_ids.contains(id) {
                    st.inflight -= 1;
                    st.inflight_digests.remove(&digests[pos]);
                    drain_notice(&mut st, digests[pos]);
                }
            }
            // Jobs admitted before the stop that never made a wave stay
            // journaled (a restart re-runs them); their waiters get the
            // same terminal notice so no connection hangs on the drain.
            let leftover: Vec<u64> = st.pending.drain(..).map(|p| p.digest).collect();
            for digest in leftover {
                drain_notice(&mut st, digest);
            }
            return;
        }
    }
}

/// Sends the terminal "draining" line to every waiter of a job the drain
/// abandoned, so clients resolve instead of hanging; the job itself stays
/// journaled for the restarted server.
fn drain_notice(st: &mut QueueState, digest: u64) {
    if let Some(subs) = st.subscribers.remove(&digest) {
        let line = event_rejected(
            digest,
            "draining",
            "server draining before this job finished; it stays journaled — restart the \
             server with the same --serve-state to resume",
        );
        for tx in subs {
            let _ = tx.send(ConnEvent::Result {
                digest,
                line: line.clone(),
            });
        }
    }
}

/// Sends an intermediate event to every subscriber of a digest.
fn fan_out(shared: &Shared, digest: u64, event: ConnEvent) {
    let ConnEvent::Line(line) = event else { return };
    let st = shared.state.lock().expect("state lock");
    if let Some(subs) = st.subscribers.get(&digest) {
        for tx in subs {
            let _ = tx.send(ConnEvent::Line(line.clone()));
        }
    }
}

/// Admission verdict for one submission, decided under the state lock.
enum Admission {
    /// Freshly admitted (journaled, queued) with this job id.
    Fresh(u64),
    /// Coalesced onto an already queued/in-flight identical job.
    Coalesced,
    /// Shed: (reason, detail).
    Rejected(&'static str, String),
}

/// Admits one scenario: cache check is done by the caller; this handles
/// queue-depth and durability. The connection's event sender is
/// subscribed to the digest on success.
fn admit(
    shared: &Shared,
    scenario: Scenario,
    tx: &Sender<ConnEvent>,
    conn_inflight: usize,
) -> Admission {
    let digest = scenario_digest(&scenario);
    let wire = to_json_line(&scenario);

    let mut st = shared.state.lock().expect("state lock");
    if !st.accepting || shared.stop.is_stopped() {
        return Admission::Rejected(
            "draining",
            "server is draining; resubmit after restart".into(),
        );
    }
    if shared.journal_broken() {
        // Degraded mode: admission cannot be made durable, so refusing is
        // the only answer that never corrupts state. Typed `unavailable`
        // (not `draining`): the server is up, the journal is not.
        return Admission::Rejected(
            "unavailable",
            "admission journal is broken; restart the server to recover it".into(),
        );
    }
    if conn_inflight >= shared.cfg.conn_inflight {
        return Admission::Rejected(
            "connection-inflight",
            format!("connection already has {conn_inflight} unresolved job(s)"),
        );
    }
    let already_queued =
        st.inflight_digests.contains(&digest) || st.pending.iter().any(|p| p.digest == digest);
    if already_queued {
        st.subscribers.entry(digest).or_default().push(tx.clone());
        return Admission::Coalesced;
    }
    let depth = st.pending.len() + st.inflight;
    if depth >= shared.cfg.queue_depth {
        return Admission::Rejected(
            "overloaded",
            format!("queue depth {depth} at limit {}", shared.cfg.queue_depth),
        );
    }
    let job_id = st.next_job_id;
    // Write-ahead: the admission is durable before it is visible. Holding
    // the state lock across the append serializes journal order with
    // queue order.
    if let Err(e) = {
        // journal_append takes its own lock; state lock is held — keep
        // that ordering identical everywhere (state -> journal).
        let mut guard = shared.journal.lock().expect("journal lock");
        match guard.as_mut() {
            Some(writer) => writer
                .enqueued(job_id, wire.as_bytes())
                .map_err(|e| format!("journal append failed: {e}")),
            None => Err("journal already failed".to_string()),
        }
    } {
        shared.mark_journal_broken(&e);
        return Admission::Rejected("unavailable", format!("admission journal failed: {e}"));
    }
    st.next_job_id += 1;
    st.subscribers.entry(digest).or_default().push(tx.clone());
    st.pending.push_back(PendingJob {
        job_id,
        digest,
        scenario,
    });
    drop(st);
    shared.work.notify_all();
    Admission::Fresh(job_id)
}

/// One connection: poll request lines and the event channel in turns,
/// enforce the idle timeout, answer everything with typed lines.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("serve: warning: cannot clone connection stream: {e}");
            return;
        }
    };
    let mut reader = LineReader::new(stream, shared.cfg.max_line_bytes);
    let (tx, rx): (Sender<ConnEvent>, Receiver<ConnEvent>) = mpsc::channel();
    // Digests this connection is waiting on (for the idle timeout and the
    // per-connection in-flight cap).
    let mut waiting: BTreeSet<u64> = BTreeSet::new();
    let mut last_activity = Instant::now();

    loop {
        // Outbound first: drain queued events for this connection.
        loop {
            match rx.try_recv() {
                Ok(ConnEvent::Line(line)) => {
                    if writeln!(writer, "{line}").is_err() {
                        return;
                    }
                }
                Ok(ConnEvent::Result { digest, line }) => {
                    waiting.remove(&digest);
                    last_activity = Instant::now();
                    if writeln!(writer, "{line}").is_err() {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }

        // Drain: every outstanding job resolves (the scheduler sends a
        // result or a terminal draining notice to each waiter), so once
        // `waiting` is empty the conversation is over.
        if shared.stop.is_stopped() && waiting.is_empty() {
            return;
        }

        if waiting.is_empty() && last_activity.elapsed() >= shared.cfg.idle_timeout {
            let err = ProtocolError::IdleTimeout {
                secs: shared.cfg.idle_timeout.as_secs(),
            };
            shared.count("serve.rejected_protocol", 1);
            let _ = writeln!(writer, "{}", event_error(&err));
            return;
        }

        // Inbound: at most one read per iteration keeps outbound latency
        // bounded by the read timeout.
        match reader.poll_line() {
            Ok(LinePoll::Pending) => {}
            Ok(LinePoll::Eof) => return,
            Err(err) => {
                shared.count("serve.rejected_protocol", 1);
                let _ = writeln!(writer, "{}", event_error(&err));
                return; // only framing damage is fatal, and this is it
            }
            Ok(LinePoll::Line(raw)) => {
                last_activity = Instant::now();
                match parse_request(&raw) {
                    Ok(None) => {}
                    Ok(Some(Request::Ping)) => {
                        if writeln!(writer, "{}", event_pong()).is_err() {
                            return;
                        }
                    }
                    Ok(Some(Request::Stats)) => {
                        let line = event_stats(&shared.counters());
                        if writeln!(writer, "{line}").is_err() {
                            return;
                        }
                    }
                    Ok(Some(Request::Submit(scenario))) => {
                        handle_submit(shared, *scenario, &tx, &mut waiting, &mut writer);
                    }
                    Err(err) => {
                        shared.count("serve.rejected_protocol", 1);
                        let fatal = err.fatal_to_connection();
                        if writeln!(writer, "{}", event_error(&err)).is_err() || fatal {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Handles one submission end to end: cache fast path, then admission.
fn handle_submit(
    shared: &Arc<Shared>,
    scenario: Scenario,
    tx: &Sender<ConnEvent>,
    waiting: &mut BTreeSet<u64>,
    writer: &mut impl Write,
) {
    let digest = scenario_digest(&scenario);

    // Content-addressed fast path: an identical scenario that has ever
    // been adjudicated is answered from the cache with zero recompute.
    match shared.cache.read(digest) {
        CacheRead::Hit(cached) => {
            shared.count("serve.cache_hits", 1);
            let line = event_result(
                digest,
                cached.outcome.kind(),
                &cached.verdict,
                true,
                cached.attempts,
            );
            let _ = writeln!(writer, "{line}");
            return;
        }
        CacheRead::Miss => {
            shared.count("serve.cache_misses", 1);
        }
        CacheRead::Corrupt(reason) => {
            shared.count("serve.cache_corrupt", 1);
            eprintln!(
                "serve: warning: cache entry {digest:#018x} is corrupt ({reason}); recomputing"
            );
        }
    }

    if waiting.contains(&digest) {
        // This connection already awaits this digest; acknowledge without
        // a second subscription so it gets exactly one result line.
        let _ = writeln!(writer, "{}", event_accepted(0, digest, true));
        shared.count("serve.coalesced", 1);
        return;
    }

    match admit(shared, scenario, tx, waiting.len()) {
        Admission::Fresh(job_id) => {
            shared.count("serve.accepted", 1);
            waiting.insert(digest);
            let _ = writeln!(writer, "{}", event_accepted(job_id, digest, false));
        }
        Admission::Coalesced => {
            shared.count("serve.coalesced", 1);
            waiting.insert(digest);
            let _ = writeln!(writer, "{}", event_accepted(0, digest, true));
        }
        Admission::Rejected(reason, detail) => {
            match reason {
                "overloaded" => shared.count("serve.rejected_overload", 1),
                "connection-inflight" => shared.count("serve.rejected_conn_inflight", 1),
                "unavailable" => shared.count("serve.rejected_unavailable", 1),
                _ => shared.count("serve.rejected_other", 1),
            }
            let _ = writeln!(writer, "{}", event_rejected(digest, reason, &detail));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn temp_state(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oasis-serve-state-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    struct Server {
        stop: StopHandle,
        port: u16,
        handle: Option<std::thread::JoinHandle<Result<ServeSummary, String>>>,
    }

    impl Server {
        fn start(mut cfg: ServeConfig) -> Server {
            cfg.port = 0;
            let stop = StopHandle::new();
            let (ptx, prx) = mpsc::channel();
            let stop2 = stop.clone();
            let handle = std::thread::spawn(move || {
                run_serve(cfg, stop2, move |port| {
                    let _ = ptx.send(port);
                })
            });
            let port = prx
                .recv_timeout(Duration::from_secs(30))
                .expect("server announced its port");
            Server {
                stop,
                port,
                handle: Some(handle),
            }
        }

        fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
            let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            (reader, stream)
        }

        fn shutdown(mut self) -> ServeSummary {
            self.stop.stop();
            self.handle
                .take()
                .expect("handle")
                .join()
                .expect("server thread")
                .expect("serve result")
        }
    }

    fn read_event(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read event line");
        line.trim_end().to_string()
    }

    fn small_cfg(state: PathBuf) -> ServeConfig {
        let mut cfg = ServeConfig::new(state);
        cfg.pool = PoolConfig::with_workers(2);
        cfg.idle_timeout = Duration::from_secs(120);
        cfg
    }

    #[test]
    fn ping_stats_and_garbage_share_a_connection() {
        let server = Server::start(small_cfg(temp_state("ping")));
        let (mut reader, mut stream) = server.connect();
        writeln!(stream, "ping").unwrap();
        assert_eq!(read_event(&mut reader), event_pong());
        // Garbage gets a typed error and the connection survives...
        writeln!(stream, "total garbage").unwrap();
        let err = read_event(&mut reader);
        assert!(err.contains("bad-request"), "{err}");
        // ...as proven by the next request still working.
        writeln!(stream, "stats").unwrap();
        let stats = read_event(&mut reader);
        assert!(stats.contains("\"serve\": \"stats\""), "{stats}");
        drop(stream);
        let summary = server.shutdown();
        assert!(summary.drained);
    }

    #[test]
    fn submit_computes_then_caches_and_coalesces() {
        let server = Server::start(small_cfg(temp_state("cachehit")));
        let (mut reader, mut stream) = server.connect();
        let scenario = Scenario::generate(11);
        let wire = to_json_line(&scenario);

        writeln!(stream, "{wire}").unwrap();
        let accepted = read_event(&mut reader);
        assert!(accepted.contains("\"accepted\""), "{accepted}");
        let result = loop {
            let line = read_event(&mut reader);
            if line.contains("\"result\"") {
                break line;
            }
        };
        assert!(result.contains("\"cached\": false"), "{result}");

        // Resubmitting the identical scenario is a cache hit: the result
        // line arrives immediately, marked cached, with no accept first.
        writeln!(stream, "{wire}").unwrap();
        let hit = read_event(&mut reader);
        assert!(hit.contains("\"cached\": true"), "{hit}");
        // Verdict bytes match the computed run exactly.
        let verdict = |line: &str| {
            line.split("\"verdict\": \"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(verdict(&result), verdict(&hit));

        drop(stream);
        let summary = server.shutdown();
        let hits = summary
            .counters
            .iter()
            .find(|(k, _)| k == "serve.cache_hits")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(hits, 1);
    }

    #[test]
    fn overload_is_a_typed_rejection_not_a_hang() {
        let mut cfg = small_cfg(temp_state("overload"));
        cfg.queue_depth = 1;
        cfg.pool.workers = 1;
        let server = Server::start(cfg);
        let (mut reader, mut stream) = server.connect();

        // Burst distinct scenarios; with depth 1 at least one must be
        // shed with the typed overloaded rejection.
        for seed in 0..6u64 {
            let wire = to_json_line(&Scenario::generate(seed));
            writeln!(stream, "{wire}").unwrap();
        }
        let mut rejected = 0;
        let mut results = 0;
        let mut accepted = 0;
        while results + rejected < 6 {
            let line = read_event(&mut reader);
            if line.contains("\"rejected\"") {
                assert!(line.contains("overloaded"), "{line}");
                rejected += 1;
            } else if line.contains("\"result\"") {
                results += 1;
            } else if line.contains("\"accepted\"") {
                accepted += 1;
            }
        }
        assert!(rejected >= 1, "queue depth 1 must shed a 6-job burst");
        assert_eq!(accepted, results);

        drop(stream);
        let summary = server.shutdown();
        let shed = summary
            .counters
            .iter()
            .find(|(k, _)| k == "serve.rejected_overload")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(shed >= 1);
    }

    /// A cache write that fails on every attempt must cost recomputes,
    /// never results: submissions still resolve, verdict bytes match, and
    /// the failure is counted.
    #[test]
    fn cache_write_failure_degrades_to_recompute_and_serve() {
        use oasis_engine::failpoint::{arm_process, FailPlan};
        let state = temp_state("cachefail");
        let state_tag = state.file_name().unwrap().to_string_lossy().into_owned();
        let mut plan =
            FailPlan::parse("site:serve.cache.write,kind:eio,after:0,count:*").expect("plan");
        plan.path = Some(state_tag);
        let scope = arm_process(plan);

        let server = Server::start(small_cfg(state));
        let (mut reader, mut stream) = server.connect();
        let wire = to_json_line(&Scenario::generate(41));
        writeln!(stream, "{wire}").unwrap();
        let first = loop {
            let line = read_event(&mut reader);
            if line.contains("\"result\"") {
                break line;
            }
        };
        assert!(first.contains("\"cached\": false"), "{first}");

        // Resubmit: the entry never landed, so this recomputes instead of
        // hitting the cache — and still resolves with the same verdict.
        writeln!(stream, "{wire}").unwrap();
        let second = loop {
            let line = read_event(&mut reader);
            if line.contains("\"result\"") {
                break line;
            }
        };
        assert!(second.contains("\"cached\": false"), "{second}");
        let verdict = |line: &str| {
            line.split("\"verdict\": \"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(verdict(&first), verdict(&second));

        drop(stream);
        let summary = server.shutdown();
        drop(scope);
        let failed = summary
            .counters
            .iter()
            .find(|(k, _)| k == "serve.cache_write_failed")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(failed >= 2, "both cache writes must be counted: {failed}");
        assert!(summary.journal_error.is_none());
    }

    /// A broken journal must degrade, not kill: cached results keep
    /// flowing, new admissions get the typed `unavailable` rejection, the
    /// summary carries the error, and a restart on the same state dir
    /// recovers full service.
    #[test]
    fn journal_failure_refuses_admissions_with_typed_unavailable() {
        use oasis_engine::failpoint::{arm_process, FailPlan};
        let state = temp_state("junavail");
        let state_tag = state.file_name().unwrap().to_string_lossy().into_owned();
        let a = Scenario::generate(42);
        let b = Scenario::generate(43);

        let server = Server::start(small_cfg(state.clone()));
        let (mut reader, mut stream) = server.connect();
        // Adjudicate A cleanly so it is cached before the journal breaks.
        writeln!(stream, "{}", to_json_line(&a)).unwrap();
        loop {
            if read_event(&mut reader).contains("\"result\"") {
                break;
            }
        }

        let mut plan =
            FailPlan::parse("site:journal.append.write,kind:eio,after:0,count:*").expect("plan");
        plan.path = Some(state_tag);
        let scope = arm_process(plan);

        // Cached work is still served in degraded mode...
        writeln!(stream, "{}", to_json_line(&a)).unwrap();
        let hit = read_event(&mut reader);
        assert!(hit.contains("\"cached\": true"), "{hit}");
        // ...while new work is refused with the typed rejection.
        writeln!(stream, "{}", to_json_line(&b)).unwrap();
        let rejected = read_event(&mut reader);
        assert!(rejected.contains("\"rejected\""), "{rejected}");
        assert!(rejected.contains("unavailable"), "{rejected}");

        drop(stream);
        let summary = server.shutdown();
        drop(scope);
        let err = summary.journal_error.expect("journal error surfaces");
        assert!(err.contains("journal append failed"), "{err}");
        let refused = summary
            .counters
            .iter()
            .find(|(k, _)| k == "serve.rejected_unavailable")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(refused, 1);

        // Restart on the same state dir, failpoint disarmed: B computes.
        let server = Server::start(small_cfg(state));
        let (mut reader, mut stream) = server.connect();
        writeln!(stream, "{}", to_json_line(&b)).unwrap();
        let result = loop {
            let line = read_event(&mut reader);
            if line.contains("\"result\"") {
                break line;
            }
        };
        assert!(
            result.contains(&crate::protocol::digest_hex(scenario_digest(&b))),
            "{result}"
        );
        drop(stream);
        let summary = server.shutdown();
        assert!(summary.journal_error.is_none());
    }

    #[test]
    fn drain_mid_queue_resumes_pending_jobs_after_restart() {
        let state = temp_state("resume");
        let scenario = Scenario::generate(21);
        let digest = scenario_digest(&scenario);

        // First server: admit the job, then stop before reading results
        // (the scheduler may or may not have finished it — both paths
        // must converge after restart).
        let mut cfg = small_cfg(state.clone());
        cfg.pool.workers = 1;
        let server = Server::start(cfg);
        let (mut reader, mut stream) = server.connect();
        writeln!(stream, "{}", to_json_line(&scenario)).unwrap();
        let accepted = read_event(&mut reader);
        assert!(accepted.contains("\"accepted\""), "{accepted}");
        drop(stream);
        drop(reader);
        let _ = server.shutdown();

        // Second server on the same state dir: the scenario is either in
        // the backfilled cache (if it adjudicated) or re-run from the
        // journaled queue; either way resubmission converges on the same
        // verdict and the journal is intact.
        let server = Server::start(small_cfg(state));
        let (mut reader, mut stream) = server.connect();
        writeln!(stream, "{}", to_json_line(&scenario)).unwrap();
        let result = loop {
            let line = read_event(&mut reader);
            if line.contains("\"result\"") {
                break line;
            }
        };
        assert!(
            result.contains(&crate::protocol::digest_hex(digest)),
            "{result}"
        );
        drop(stream);
        let _ = server.shutdown();
    }
}
