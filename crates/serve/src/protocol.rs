//! The sweep-server wire protocol: newline-delimited, flat-JSON, hardened.
//!
//! One TCP connection carries a sequence of *request lines* from the
//! client and *event lines* from the server, each a single `\n`-terminated
//! line. Requests are either a bare keyword (`ping`, `stats`) or a
//! scenario job payload — the exact `oasis-fuzz-scenario-v1` flat JSON
//! object the repro corpus already uses, parsed by the same
//! [`oasis_fuzz::parse_flat_object`] grammar (scalar fields only, no
//! nesting, no escapes). Server events are flat JSON objects tagged by a
//! `"serve"` field (`accepted`, `rejected`, `dispatched`, `progress`,
//! `result`, `pong`, `stats`, `error`).
//!
//! Hardening rules, enforced by [`LineReader`] and [`parse_request`]:
//!
//! * a request line is capped at [`MAX_LINE_BYTES`]; an oversized line is
//!   a typed [`ProtocolError::LineTooLong`] and the connection is closed
//!   cleanly (framing can no longer be trusted mid-line);
//! * bytes that are not UTF-8 are [`ProtocolError::NotUtf8`], garbage or
//!   truncated JSON is [`ProtocolError::BadRequest`] — both answered with
//!   a typed `error` event, and the connection *survives*;
//! * a connection with no outstanding jobs that stays silent past the
//!   server's idle timeout is closed with [`ProtocolError::IdleTimeout`]
//!   so a stalled client can never pin a server slot.
//!
//! Nothing in this module panics on wire input, whatever the bytes.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read};

use oasis_fuzz::{from_json, parse_flat_object, JsonValue, Scenario};

/// Hard cap on one request line, bytes (newline included). A scenario
/// wire line is ~300 bytes; 64 KiB leaves two orders of magnitude of
/// headroom while bounding per-connection buffer growth.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A typed wire-protocol failure. Conversion to an `error` event line is
/// [`event_error`]; [`ProtocolError::code`] is the stable machine tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A request line exceeded the server's line cap without a newline.
    /// The connection is closed (the stream can no longer be re-framed).
    LineTooLong {
        /// The cap that was exceeded, bytes.
        limit: usize,
    },
    /// A request line held bytes that are not valid UTF-8.
    NotUtf8,
    /// A request line was UTF-8 but not a request: garbage, truncated or
    /// malformed JSON, an unknown keyword, or an invalid scenario.
    BadRequest(String),
    /// The connection sat idle (no requests, no jobs in flight) past the
    /// server's idle timeout and was closed to free the slot.
    IdleTimeout {
        /// The timeout that expired, seconds.
        secs: u64,
    },
}

impl ProtocolError {
    /// Stable machine-readable tag, the `"code"` field of `error` events.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::LineTooLong { .. } => "line-too-long",
            ProtocolError::NotUtf8 => "not-utf8",
            ProtocolError::BadRequest(_) => "bad-request",
            ProtocolError::IdleTimeout { .. } => "idle-timeout",
        }
    }

    /// Whether the server must close the connection after reporting this
    /// error (true only when the stream can no longer be framed).
    pub fn fatal_to_connection(&self) -> bool {
        matches!(
            self,
            ProtocolError::LineTooLong { .. } | ProtocolError::IdleTimeout { .. }
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::LineTooLong { limit } => {
                write!(f, "request line exceeds the {limit}-byte cap")
            }
            ProtocolError::NotUtf8 => write!(f, "request line is not valid UTF-8"),
            ProtocolError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ProtocolError::IdleTimeout { secs } => {
                write!(f, "connection idle for {secs}s with no jobs in flight")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with a `pong` event.
    Ping,
    /// Counter snapshot; answered with a `stats` event.
    Stats,
    /// A scenario job in `oasis-fuzz-scenario-v1` flat JSON.
    Submit(Box<Scenario>),
}

/// Parses one request line (newline already stripped).
///
/// Returns `Ok(None)` for a blank line (tolerated, ignored).
///
/// # Errors
///
/// [`ProtocolError::NotUtf8`] for non-UTF-8 bytes and
/// [`ProtocolError::BadRequest`] for anything that is neither a keyword
/// nor a parsable scenario object. Never panics.
pub fn parse_request(raw: &[u8]) -> Result<Option<Request>, ProtocolError> {
    let text = std::str::from_utf8(raw).map_err(|_| ProtocolError::NotUtf8)?;
    let text = text.trim();
    if text.is_empty() {
        return Ok(None);
    }
    match text {
        "ping" => Ok(Some(Request::Ping)),
        "stats" => Ok(Some(Request::Stats)),
        _ if text.starts_with('{') => match from_json(text) {
            Ok((scenario, _oracle)) => Ok(Some(Request::Submit(Box::new(scenario)))),
            Err(e) => Err(ProtocolError::BadRequest(format!("scenario: {e}"))),
        },
        other => Err(ProtocolError::BadRequest(format!(
            "unknown request '{}'",
            sanitize(&other.chars().take(32).collect::<String>())
        ))),
    }
}

/// What one [`LineReader::poll_line`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum LinePoll {
    /// A complete line (without its terminator).
    Line(Vec<u8>),
    /// The peer closed the stream (any unterminated tail was already
    /// returned as a final [`LinePoll::Line`]).
    Eof,
    /// No complete line yet; try again later (read timed out).
    Pending,
}

/// Incremental, capped line framing over any [`Read`].
///
/// Reads are expected to use a short OS read-timeout so callers can
/// interleave framing with outbound event delivery; `WouldBlock`/
/// `TimedOut` surface as [`LinePoll::Pending`]. The internal buffer never
/// grows past the cap: a line that exceeds it without a newline is a
/// typed [`ProtocolError::LineTooLong`], after which the caller must drop
/// the connection.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    limit: usize,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with a `limit`-byte line cap.
    pub fn new(inner: R, limit: usize) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            limit,
            eof: false,
        }
    }

    fn take_line(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(line)
    }

    /// Advances the framer by at most one `read(2)`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::LineTooLong`] once buffered bytes exceed the cap
    /// with no newline in sight.
    pub fn poll_line(&mut self) -> Result<LinePoll, ProtocolError> {
        if let Some(line) = self.take_line() {
            return Ok(LinePoll::Line(line));
        }
        if self.eof {
            if self.buf.is_empty() {
                return Ok(LinePoll::Eof);
            }
            // A truncated final line (peer died mid-write): surface it
            // once so the caller can reject it as a typed bad request.
            let tail = std::mem::take(&mut self.buf);
            return Ok(LinePoll::Line(tail));
        }
        let mut chunk = [0u8; 4096];
        match self.inner.read(&mut chunk) {
            Ok(0) => {
                self.eof = true;
                self.poll_line()
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                if let Some(line) = self.take_line() {
                    return Ok(LinePoll::Line(line));
                }
                if self.buf.len() > self.limit {
                    return Err(ProtocolError::LineTooLong { limit: self.limit });
                }
                Ok(LinePoll::Pending)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(LinePoll::Pending)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(LinePoll::Pending),
            Err(_) => {
                // Connection-level failure (reset, broken pipe): same
                // shape as a close — the conversation is over.
                self.eof = true;
                self.poll_line()
            }
        }
    }
}

/// Clamps a string to the protocol's string-value subset: printable ASCII
/// minus the two JSON-significant characters (`"`, `\`), everything else
/// replaced by a space. The flat parser on the other end accepts no
/// escapes, so this is what keeps arbitrary violation details and error
/// messages representable on the wire without ever breaking framing.
pub fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' | '\\' => ' ',
            c if (' '..='~').contains(&c) => c,
            _ => ' ',
        })
        .collect()
}

/// Renders a digest the way every protocol line spells it (`0x%016x`).
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

// ---------------------------------------------------------------------
// Server-event builders: every line the server can write.
// ---------------------------------------------------------------------

/// `accepted`: the job was admitted (or coalesced onto an identical
/// queued job) and a `result` event will follow.
pub fn event_accepted(job: u64, digest: u64, coalesced: bool) -> String {
    format!(
        "{{\"serve\": \"accepted\", \"job\": {job}, \"digest\": \"{}\", \"coalesced\": {coalesced}}}",
        digest_hex(digest)
    )
}

/// `rejected`: admission control shed this submission; no result will
/// follow. `reason` is a stable tag (`overloaded`, `connection-inflight`,
/// `draining`, `busy`).
pub fn event_rejected(digest: u64, reason: &str, detail: &str) -> String {
    format!(
        "{{\"serve\": \"rejected\", \"digest\": \"{}\", \"reason\": \"{reason}\", \
         \"detail\": \"{}\"}}",
        digest_hex(digest),
        sanitize(detail)
    )
}

/// `dispatched`: an attempt for the job was handed to a pool worker.
pub fn event_dispatched(digest: u64, attempt: u32) -> String {
    format!(
        "{{\"serve\": \"dispatched\", \"digest\": \"{}\", \"attempt\": {attempt}}}",
        digest_hex(digest)
    )
}

/// `progress`: deterministic activity counts from the scenario's run
/// under the oasis policy, named after the engine's `TraceEvent` taxonomy
/// (far faults, migrations, duplications, shootdowns, evictions). Emitted
/// for freshly computed clean jobs only — cached results recompute
/// nothing, so they stream nothing.
pub fn event_progress(
    digest: u64,
    far_faults: u64,
    migrations: u64,
    duplications: u64,
    shootdowns: u64,
    evictions: u64,
) -> String {
    format!(
        "{{\"serve\": \"progress\", \"digest\": \"{}\", \"far_fault\": {far_faults}, \
         \"migration\": {migrations}, \"duplication\": {duplications}, \
         \"shootdown\": {shootdowns}, \"eviction\": {evictions}}}",
        digest_hex(digest)
    )
}

/// `result`: the job's final verdict. `outcome` is the journal taxonomy
/// (`completed` / `failed` / `quarantined`); `verdict` is the rendered
/// oracle verdict (`clean`, `violation <kind>: ...`, or the supervision
/// failure); `cached` marks a content-addressed cache hit (zero
/// recompute).
pub fn event_result(
    digest: u64,
    outcome: &str,
    verdict: &str,
    cached: bool,
    attempts: u32,
) -> String {
    format!(
        "{{\"serve\": \"result\", \"digest\": \"{}\", \"outcome\": \"{outcome}\", \
         \"verdict\": \"{}\", \"cached\": {cached}, \"attempts\": {attempts}}}",
        digest_hex(digest),
        sanitize(verdict)
    )
}

/// `error`: a typed protocol failure for the offending request line.
pub fn event_error(err: &ProtocolError) -> String {
    format!(
        "{{\"serve\": \"error\", \"code\": \"{}\", \"detail\": \"{}\"}}",
        err.code(),
        sanitize(&err.to_string())
    )
}

/// `pong`: the `ping` reply.
pub fn event_pong() -> String {
    "{\"serve\": \"pong\"}".to_string()
}

/// `stats`: a flat snapshot of the server's `serve.*` counters.
pub fn event_stats(counters: &[(String, u64)]) -> String {
    let mut out = String::from("{\"serve\": \"stats\"");
    for (key, value) in counters {
        out.push_str(&format!(", \"{}\": {value}", sanitize(key)));
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Client-side event parsing.
// ---------------------------------------------------------------------

/// One parsed server event, the client's view of the conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// Submission admitted; a result will follow.
    Accepted {
        /// Server-side job id.
        job: u64,
        /// Scenario content digest.
        digest: u64,
        /// Whether it coalesced onto an identical queued job.
        coalesced: bool,
    },
    /// Submission shed by admission control.
    Rejected {
        /// Scenario content digest.
        digest: u64,
        /// Stable rejection tag.
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
    /// An attempt was handed to a worker.
    Dispatched {
        /// Scenario content digest.
        digest: u64,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// Deterministic activity counts for a freshly computed job.
    Progress {
        /// Scenario content digest.
        digest: u64,
        /// `(event kind, count)` in wire order.
        counts: Vec<(String, u64)>,
    },
    /// Final verdict for a job.
    Result {
        /// Scenario content digest.
        digest: u64,
        /// `completed` / `failed` / `quarantined`.
        outcome: String,
        /// Rendered verdict string.
        verdict: String,
        /// Served from the content-addressed cache (zero recompute).
        cached: bool,
        /// Attempts consumed.
        attempts: u64,
    },
    /// `ping` reply.
    Pong,
    /// Counter snapshot.
    Stats(Vec<(String, u64)>),
    /// Typed protocol error for one of this client's lines.
    Error {
        /// Stable error code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

fn field_str(fields: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, String> {
    match fields.get(key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        other => Err(format!(
            "event field '{key}' should be a string, got {other:?}"
        )),
    }
}

fn field_num(fields: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, String> {
    match fields.get(key) {
        Some(JsonValue::Num(n)) => Ok(*n),
        other => Err(format!(
            "event field '{key}' should be a number, got {other:?}"
        )),
    }
}

fn field_bool(fields: &BTreeMap<String, JsonValue>, key: &str) -> Result<bool, String> {
    match fields.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        other => Err(format!(
            "event field '{key}' should be a boolean, got {other:?}"
        )),
    }
}

fn field_digest(fields: &BTreeMap<String, JsonValue>) -> Result<u64, String> {
    let s = field_str(fields, "digest")?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("digest '{s}' lacks its 0x prefix"))?;
    u64::from_str_radix(hex, 16).map_err(|e| format!("digest '{s}': {e}"))
}

/// Parses one server event line.
///
/// # Errors
///
/// Returns a message naming the malformed field; the client treats any
/// unparsable event as a fatal protocol breach (servers never emit them).
pub fn parse_event(line: &str) -> Result<ServerEvent, String> {
    let fields = parse_flat_object(line)?;
    let kind = field_str(&fields, "serve")?;
    Ok(match kind.as_str() {
        "accepted" => ServerEvent::Accepted {
            job: field_num(&fields, "job")?,
            digest: field_digest(&fields)?,
            coalesced: field_bool(&fields, "coalesced")?,
        },
        "rejected" => ServerEvent::Rejected {
            digest: field_digest(&fields)?,
            reason: field_str(&fields, "reason")?,
            detail: field_str(&fields, "detail")?,
        },
        "dispatched" => ServerEvent::Dispatched {
            digest: field_digest(&fields)?,
            attempt: field_num(&fields, "attempt")?,
        },
        "progress" => {
            let digest = field_digest(&fields)?;
            let counts = fields
                .iter()
                .filter(|(k, _)| k.as_str() != "serve" && k.as_str() != "digest")
                .filter_map(|(k, v)| match v {
                    JsonValue::Num(n) => Some((k.clone(), *n)),
                    _ => None,
                })
                .collect();
            ServerEvent::Progress { digest, counts }
        }
        "result" => ServerEvent::Result {
            digest: field_digest(&fields)?,
            outcome: field_str(&fields, "outcome")?,
            verdict: field_str(&fields, "verdict")?,
            cached: field_bool(&fields, "cached")?,
            attempts: field_num(&fields, "attempts")?,
        },
        "pong" => ServerEvent::Pong,
        "stats" => ServerEvent::Stats(
            fields
                .iter()
                .filter(|(k, _)| k.as_str() != "serve")
                .filter_map(|(k, v)| match v {
                    JsonValue::Num(n) => Some((k.clone(), *n)),
                    _ => None,
                })
                .collect(),
        ),
        "error" => ServerEvent::Error {
            code: field_str(&fields, "code")?,
            detail: field_str(&fields, "detail")?,
        },
        other => return Err(format!("unknown server event '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn keywords_and_scenarios_parse() {
        assert_eq!(parse_request(b"ping").unwrap(), Some(Request::Ping));
        assert_eq!(parse_request(b"  stats  ").unwrap(), Some(Request::Stats));
        assert_eq!(parse_request(b"").unwrap(), None);
        assert_eq!(parse_request(b"   ").unwrap(), None);
        let s = Scenario::generate(3);
        let line = oasis_fuzz::to_json_line(&s);
        match parse_request(line.as_bytes()).unwrap() {
            Some(Request::Submit(back)) => assert_eq!(*back, s),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    /// The satellite's garbage-bytes contract: every malformed shape is a
    /// typed error, never a panic, and only framing damage is fatal to
    /// the connection.
    #[test]
    fn garbage_bytes_produce_typed_errors_never_panics() {
        // Non-UTF-8 bytes.
        let err = parse_request(&[0xff, 0xfe, 0x80, b'{']).unwrap_err();
        assert_eq!(err.code(), "not-utf8");
        assert!(!err.fatal_to_connection());

        // Garbage, truncated JSON, wrong schema, unknown keyword.
        for bad in [
            &b"complete garbage"[..],
            b"{\"schema\": \"oasis-fuzz-scenario-v1\"",
            b"{\"schema\": \"wrong\", \"seed\": 1}",
            b"{\"nested\": {\"x\": 1}}",
            b"quit",
            b"{",
            b"[1,2,3]",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{bad:?}");
            assert!(!err.fatal_to_connection(), "{bad:?}");
            // And the error renders without leaking unsanitized bytes.
            let line = event_error(&err);
            assert!(parse_event(&line).is_ok(), "{line}");
        }

        // A pile of random-ish binary through the framer: typed results
        // only, no panic.
        let noise: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
            .collect();
        let mut reader = LineReader::new(Cursor::new(noise), MAX_LINE_BYTES);
        loop {
            match reader.poll_line() {
                Ok(LinePoll::Line(l)) => {
                    let _ = parse_request(&l); // typed Ok or Err, never panic
                }
                Ok(LinePoll::Eof) => break,
                Ok(LinePoll::Pending) => {}
                Err(e) => {
                    assert_eq!(e.code(), "line-too-long");
                    break;
                }
            }
        }
    }

    #[test]
    fn line_reader_frames_caps_and_reports_truncation() {
        // Multiple lines in one read, CRLF tolerated.
        let mut r = LineReader::new(Cursor::new(b"ping\r\nstats\nrest".to_vec()), 64);
        assert_eq!(r.poll_line().unwrap(), LinePoll::Line(b"ping".to_vec()));
        assert_eq!(r.poll_line().unwrap(), LinePoll::Line(b"stats".to_vec()));
        // The unterminated tail surfaces once at EOF, then Eof.
        assert_eq!(r.poll_line().unwrap(), LinePoll::Line(b"rest".to_vec()));
        assert_eq!(r.poll_line().unwrap(), LinePoll::Eof);

        // An oversized line trips the cap with a typed error.
        let long = vec![b'x'; 200];
        let mut r = LineReader::new(Cursor::new(long), 64);
        let err = loop {
            match r.poll_line() {
                Ok(LinePoll::Pending) => {}
                Err(e) => break e,
                other => panic!("expected the cap to trip, got {other:?}"),
            }
        };
        assert_eq!(err, ProtocolError::LineTooLong { limit: 64 });
        assert!(err.fatal_to_connection());
    }

    #[test]
    fn events_round_trip_through_the_flat_parser() {
        let cases = [
            event_accepted(7, 0xdead_beef, false),
            event_rejected(1, "overloaded", "queue depth 8 at limit 8"),
            event_dispatched(2, 1),
            event_progress(3, 10, 4, 2, 1, 0),
            event_result(4, "completed", "clean", true, 1),
            event_error(&ProtocolError::NotUtf8),
            event_pong(),
            event_stats(&[("serve.cache_hits".to_string(), 5)]),
        ];
        for line in &cases {
            let ev = parse_event(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            match (line, &ev) {
                (
                    l,
                    ServerEvent::Result {
                        verdict, cached, ..
                    },
                ) if l.contains("result") => {
                    assert_eq!(verdict, "clean");
                    assert!(*cached);
                }
                (l, ServerEvent::Stats(counters)) if l.contains("stats") => {
                    assert_eq!(counters, &[("serve.cache_hits".to_string(), 5)]);
                }
                _ => {}
            }
        }
        // Verdicts with JSON-hostile characters are sanitized, not escaped.
        let hostile = event_result(9, "completed", "violation \"abort\": a\\b\nc", false, 2);
        match parse_event(&hostile).unwrap() {
            ServerEvent::Result { verdict, .. } => {
                assert!(!verdict.contains('"') && !verdict.contains('\\'));
                assert!(verdict.contains("violation"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_timeout_is_typed_and_fatal() {
        let err = ProtocolError::IdleTimeout { secs: 30 };
        assert_eq!(err.code(), "idle-timeout");
        assert!(err.fatal_to_connection());
        assert!(err.to_string().contains("30"));
    }
}
