//! Crash-durable sweep service: a zero-dependency TCP job server for
//! scenario sweeps, with admission control, a content-addressed result
//! cache, and graceful drain.
//!
//! The server ([`run_serve`]) accepts `oasis-fuzz-scenario-v1` jobs over
//! newline-delimited flat JSON on a localhost socket, schedules them on
//! the engine's supervised worker pool (per-job deadlines, bounded
//! retries, panic quarantine), and makes every admission and verdict
//! durable through the engine's write-ahead sweep journal *before* it
//! becomes visible — a SIGKILL at any instant loses at most replies,
//! never admitted work, and a restart resumes with results byte-identical
//! to an uninterrupted run.
//!
//! The three robustness pillars, each its own module:
//!
//! * [`protocol`] — hardened wire framing: capped request lines, typed
//!   errors for garbage/truncated/non-UTF-8 input, idle timeouts; a
//!   malformed client can never panic the server or wedge a slot.
//! * [`cache`] — content-addressed results keyed by scenario digest,
//!   checksum-verified on read; duplicates are served with zero recompute
//!   and a corrupt entry costs a recompute, never correctness.
//! * [`server`] — bounded admission (queue depth, per-connection
//!   in-flight caps, connection limits) with typed overload rejections;
//!   the server sheds load, it does not grow without bound.
//!
//! [`client`] is the matching `submit` side: batch submission with
//! deterministic stdout, duplicate coalescing, and streamed progress.
//!
//! [`run_serve`]: server::run_serve

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheRead, CachedResult, ResultCache};
pub use client::{submit_batch, submit_batch_with_retry, SubmitOutcome};
pub use protocol::{
    parse_event, parse_request, LinePoll, LineReader, ProtocolError, Request, ServerEvent,
    MAX_LINE_BYTES,
};
pub use server::{queue_tag, run_serve, ServeConfig, ServeSummary, CACHE_DIR, JOURNAL_FILE};
