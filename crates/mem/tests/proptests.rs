//! Property-based tests for the memory-hierarchy building blocks.

use oasis_mem::cache::Cache;
use oasis_mem::frames::FrameAllocator;
use oasis_mem::layout::AddressSpace;
use oasis_mem::tlb::Tlb;
use oasis_mem::types::{PageSize, Va, Vpn};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// The TLB never exceeds capacity and `contains` agrees with
    /// access-hit behaviour under arbitrary fill/invalidate sequences.
    #[test]
    fn tlb_capacity_and_consistency(
        ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300)
    ) {
        let mut tlb = Tlb::new(16, 4);
        let mut shadow: HashSet<u64> = HashSet::new();
        for (op, vpn) in ops {
            match op {
                0 => {
                    let evicted = tlb.fill(Vpn(vpn));
                    shadow.insert(vpn);
                    if let Some(e) = evicted {
                        shadow.remove(&e.0);
                    }
                }
                1 => {
                    let hit = tlb.access(Vpn(vpn));
                    prop_assert_eq!(hit, shadow.contains(&vpn));
                }
                _ => {
                    tlb.invalidate(Vpn(vpn));
                    shadow.remove(&vpn);
                }
            }
            prop_assert!(tlb.len() <= tlb.capacity());
            prop_assert_eq!(tlb.len(), shadow.len());
        }
    }

    /// A full TLB set always evicts its least-recently-used entry.
    #[test]
    fn tlb_evicts_lru(extra in 0u64..1000) {
        // Fully associative 8-entry TLB.
        let mut tlb = Tlb::new(8, 8);
        for i in 0..8u64 {
            tlb.fill(Vpn(i));
        }
        // Touch everything except `victim`.
        let victim = extra % 8;
        for i in 0..8u64 {
            if i != victim {
                tlb.access(Vpn(i));
            }
        }
        let evicted = tlb.fill(Vpn(1000 + extra));
        prop_assert_eq!(evicted, Some(Vpn(victim)));
    }

    /// Frame allocator: capacity is never exceeded; eviction only happens
    /// at capacity; LRU victim is correct.
    #[test]
    fn frames_respect_capacity(
        cap in 1u64..16,
        inserts in proptest::collection::vec(0u64..64, 1..200)
    ) {
        let mut f = FrameAllocator::new(Some(cap));
        for vpn in inserts {
            let victim = f.insert(Vpn(vpn));
            prop_assert!(f.resident() <= cap);
            if let Some(v) = victim {
                prop_assert_ne!(v.0, vpn, "never evicts what it inserts");
                prop_assert!(!f.contains(v));
            }
            prop_assert!(f.contains(Vpn(vpn)));
        }
    }

    /// Cache: line residency is idempotent — a hit right after any access
    /// to the same address is guaranteed.
    #[test]
    fn cache_access_then_hit(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(16 * 1024, 4, 64);
        for a in addrs {
            c.access(Va(a));
            prop_assert!(c.access(Va(a)), "immediate re-access must hit");
        }
    }

    /// Address space: objects never overlap and reverse lookup returns the
    /// allocation that contains the address.
    #[test]
    fn address_space_objects_disjoint(sizes in proptest::collection::vec(1u64..8_000_000, 1..40)) {
        let mut space = AddressSpace::new();
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| space.alloc(format!("o{i}"), *s))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let o = space.object(*id).clone();
            // First and last byte resolve back to this object.
            prop_assert_eq!(space.object_containing(o.base).expect("base").id, *id);
            let last = Va(o.base.0 + o.size - 1);
            prop_assert_eq!(space.object_containing(last).expect("last").id, *id);
            // No overlap with the next object.
            if i + 1 < ids.len() {
                let next = space.object(ids[i + 1]);
                prop_assert!(o.base.0 + o.size <= next.base.0);
            }
            // Page counts consistent across page sizes.
            prop_assert!(o.page_count(PageSize::Small4K) >= o.page_count(PageSize::Large2M));
        }
        prop_assert_eq!(space.live_bytes(), sizes.iter().sum::<u64>());
    }

    /// VPN round-trip: va -> vpn -> base covers va's page for both sizes.
    #[test]
    fn vpn_round_trip(raw in 0u64..(1u64 << 48)) {
        for size in [PageSize::Small4K, PageSize::Large2M] {
            let va = Va(raw);
            let vpn = va.vpn(size);
            let base = vpn.base(size);
            prop_assert!(base.0 <= va.canonical().0);
            prop_assert!(va.canonical().0 - base.0 < size.bytes());
            prop_assert_eq!(base.0 % size.bytes(), 0);
        }
    }
}
